//! Fixture-tree tests for the lint engine: known-bad trees must flag
//! every lint, known-good trees must stay silent, and the allowlist
//! round-trip must suppress exactly what it justifies.

use flextract_analyze::{analyze_tree, Allowlist, LINTS};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_tree_triggers_every_lint() {
    let analysis = analyze_tree(&fixture("bad"), &Allowlist::default()).unwrap();
    let hit: BTreeSet<&str> = analysis.findings.iter().map(|f| f.lint.as_str()).collect();
    for lint in LINTS {
        assert!(
            hit.contains(lint.id),
            "lint {} never fired: {hit:?}",
            lint.id
        );
    }
    assert!(hit.contains("forbid-unsafe"), "{hit:?}");
    assert!(hit.contains("vendor-hygiene"), "{hit:?}");
}

#[test]
fn bad_tree_findings_carry_exact_positions() {
    let analysis = analyze_tree(&fixture("bad"), &Allowlist::default()).unwrap();
    let time = analysis
        .findings
        .iter()
        .find(|f| f.lint == "nondeterministic-time")
        .expect("Instant::now must flag");
    assert_eq!(time.file, "crates/frame/src/lib.rs");
    assert_eq!((time.line, time.col), (10, 19));
    assert!(time.excerpt.contains("Instant::now"), "{}", time.excerpt);

    let manifest = analysis
        .findings
        .iter()
        .find(|f| f.lint == "vendor-hygiene" && f.file.ends_with("Cargo.toml"))
        .expect("vendored build script must flag");
    assert_eq!(manifest.file, "vendor/evil/Cargo.toml");
    assert_eq!(manifest.line, 5, "the `build = \"build.rs\"` line");
}

#[test]
fn bad_tree_renders_json_with_locations() {
    let analysis = analyze_tree(&fixture("bad"), &Allowlist::default()).unwrap();
    let json = analysis.render_json();
    assert!(json.contains("\"lint\": \"unchecked-indexing\""), "{json}");
    assert!(
        json.contains("\"file\": \"crates/frame/src/lib.rs\""),
        "{json}"
    );
    assert!(json.contains("\"suppressed\": 0"), "{json}");
}

#[test]
fn good_tree_is_silent() {
    let analysis = analyze_tree(&fixture("good"), &Allowlist::default()).unwrap();
    assert!(
        analysis.is_clean(),
        "masked regions leaked findings:\n{}",
        analysis.render_text()
    );
    assert!(analysis.files_scanned >= 3, "{}", analysis.files_scanned);
}

#[test]
fn allowlist_round_trip_suppresses_and_audits() {
    let root = fixture("suppressed");
    // Without the allowlist: exactly one panic-surface finding.
    let bare = analyze_tree(&root, &Allowlist::default()).unwrap();
    assert_eq!(bare.findings.len(), 1, "{}", bare.render_text());
    assert_eq!(bare.findings[0].lint, "panic-surface");

    // With it: the unwrap is suppressed, and the allowlist's own
    // defects surface as findings.
    let allowlist = Allowlist::load(&root.join("analyze.toml")).unwrap();
    let audited = analyze_tree(&root, &allowlist).unwrap();
    assert_eq!(audited.suppressed, 1);
    let lints: Vec<&str> = audited.findings.iter().map(|f| f.lint.as_str()).collect();
    assert_eq!(
        lints,
        ["invalid-suppression", "unused-suppression"],
        "{lints:?}"
    );
    for f in &audited.findings {
        assert!(f.file.ends_with("analyze.toml"), "{}", f.file);
        assert!(f.line > 0);
    }
}
