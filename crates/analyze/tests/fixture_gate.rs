//! Fixture-tree tests for the lint engine: known-bad trees must flag
//! every lint — lexical and reachability alike — with exact positions
//! and full witness call paths; known-good trees containing the same
//! sinks in unreachable positions must stay silent; and the allowlist
//! round-trip must suppress exactly what it justifies, scoped by `via`.

use flextract_analyze::{analyze_tree, Allowlist, LINTS};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_tree_triggers_every_lint() {
    let analysis = analyze_tree(&fixture("bad"), &Allowlist::default()).unwrap();
    let hit: BTreeSet<&str> = analysis.findings.iter().map(|f| f.lint.as_str()).collect();
    for lint in LINTS {
        assert!(
            hit.contains(lint.id),
            "lint {} never fired: {hit:?}",
            lint.id
        );
    }
    for semantic in [
        "forbid-unsafe",
        "vendor-hygiene",
        "panic-reachability",
        "determinism-taint",
        "unordered-spawn",
    ] {
        assert!(hit.contains(semantic), "{semantic} never fired: {hit:?}");
    }
}

#[test]
fn bad_tree_findings_carry_exact_positions() {
    let analysis = analyze_tree(&fixture("bad"), &Allowlist::default()).unwrap();
    let fold = analysis
        .findings
        .iter()
        .find(|f| f.lint == "float-fold")
        .expect("ad-hoc float fold must flag");
    assert_eq!(fold.file, "crates/frame/src/lib.rs");
    assert_eq!((fold.line, fold.col), (10, 39));
    assert!(fold.excerpt.contains(".sum::<f64>"), "{}", fold.excerpt);

    let manifest = analysis
        .findings
        .iter()
        .find(|f| f.lint == "vendor-hygiene" && f.file.ends_with("Cargo.toml"))
        .expect("vendored build script must flag");
    assert_eq!(manifest.file, "vendor/evil/Cargo.toml");
    assert_eq!(manifest.line, 5, "the `build = \"build.rs\"` line");
}

/// The acceptance case for the semantic pass: a sink two crates away
/// from the public entry fires at its exact position and the witness
/// names every hop (entry at its definition, then each callee at the
/// call site inside its caller's file).
#[test]
fn two_crate_sink_fires_with_full_witness_path() {
    let analysis = analyze_tree(&fixture("bad"), &Allowlist::default()).unwrap();
    let reach = analysis
        .findings
        .iter()
        .find(|f| f.lint == "panic-reachability")
        .expect("the kernel indexing sink must flag");
    assert_eq!(reach.file, "crates/kernel/src/quant.rs");
    assert_eq!((reach.line, reach.col), (4, 7), "the `[` of xs[i]");
    assert!(reach.message.contains("flextract_frame::Scan::aggregates"));

    let hops: Vec<(String, String, usize)> = reach
        .path
        .iter()
        .map(|h| (h.qual.clone(), h.file.clone(), h.line))
        .collect();
    assert_eq!(
        hops,
        [
            (
                "flextract_frame::Scan::aggregates".to_string(),
                "crates/frame/src/lib.rs".to_string(),
                9,
            ),
            (
                "flextract_series::window::pick".to_string(),
                "crates/frame/src/lib.rs".to_string(),
                11,
            ),
            (
                "flextract_kernel::quant::at".to_string(),
                "crates/series/src/window.rs".to_string(),
                4,
            ),
        ],
        "witness: {}",
        flextract_analyze::render_path(&reach.path)
    );
}

#[test]
fn determinism_taint_names_the_golden_feeding_entry() {
    let analysis = analyze_tree(&fixture("bad"), &Allowlist::default()).unwrap();
    let taint = analysis
        .findings
        .iter()
        .find(|f| f.lint == "determinism-taint")
        .expect("the Instant::now behind summarize must flag");
    assert_eq!(taint.file, "crates/scenario/src/report.rs");
    assert_eq!((taint.line, taint.col), (13, 24));
    assert!(
        taint
            .message
            .contains("flextract_scenario::report::summarize"),
        "{}",
        taint.message
    );
    assert_eq!(taint.path.len(), 2, "summarize -> stamp_ms");
    assert_eq!(taint.path[1].qual, "flextract_scenario::report::stamp_ms");
}

#[test]
fn bad_tree_renders_json_with_locations_and_paths() {
    let analysis = analyze_tree(&fixture("bad"), &Allowlist::default()).unwrap();
    let json = analysis.render_json();
    assert!(json.contains("\"lint\": \"panic-reachability\""), "{json}");
    assert!(
        json.contains("\"file\": \"crates/kernel/src/quant.rs\""),
        "{json}"
    );
    assert!(
        json.contains("\"qual\": \"flextract_frame::Scan::aggregates\""),
        "{json}"
    );
    assert!(json.contains("\"suppressed\": 0"), "{json}");
}

/// The dual of the acceptance case: the good tree carries the *same*
/// `xs[i]` sink in the same kernel-crate position, but its only caller
/// is crate-private — unreachable from any entry, so the engine must
/// report nothing at all.
#[test]
fn good_tree_is_silent() {
    let analysis = analyze_tree(&fixture("good"), &Allowlist::default()).unwrap();
    assert!(
        analysis.is_clean(),
        "masked regions or unreachable sinks leaked findings:\n{}",
        analysis.render_text()
    );
    assert!(analysis.files_scanned >= 6, "{}", analysis.files_scanned);
}

#[test]
fn allowlist_round_trip_suppresses_and_audits() {
    let root = fixture("suppressed");
    // Without the allowlist: exactly one reachability finding, carrying
    // the Frame::risky witness the suppression will scope to.
    let bare = analyze_tree(&root, &Allowlist::default()).unwrap();
    assert_eq!(bare.findings.len(), 1, "{}", bare.render_text());
    assert_eq!(bare.findings[0].lint, "panic-reachability");
    assert!(!bare.findings[0].path.is_empty());

    // With it: the unwrap is suppressed via its witness path, and the
    // allowlist's own defects surface as findings.
    let allowlist = Allowlist::load(&root.join("analyze.toml")).unwrap();
    let audited = analyze_tree(&root, &allowlist).unwrap();
    assert_eq!(audited.suppressed, 1);
    let lints: Vec<&str> = audited.findings.iter().map(|f| f.lint.as_str()).collect();
    assert_eq!(
        lints,
        ["invalid-suppression", "unused-suppression"],
        "{lints:?}"
    );
    for f in &audited.findings {
        assert!(f.file.ends_with("analyze.toml"), "{}", f.file);
        assert!(f.line > 0);
    }
}
