//! Adversarial-but-legal Rust against the item parser and resolver.
//!
//! Each case pins either a *resolved edge* (the parser must see through
//! the syntax) or a *documented non-edge* (a deliberate blind spot of
//! the line-oriented scanner, asserted so a behavior change is loud).

use flextract_analyze::callgraph;
use flextract_analyze::lexer::{mask_code, mask_tests};
use flextract_analyze::parser::{parse_file, ParsedFile};
use flextract_analyze::symbols::{self, SymbolTable};

fn parse(rel: &str, src: &str) -> (String, ParsedFile) {
    let code = mask_tests(&mask_code(src));
    (rel.to_string(), parse_file(src, &code))
}

fn table(files: &[(&str, &str)]) -> SymbolTable {
    let parsed: Vec<(String, ParsedFile)> =
        files.iter().map(|(rel, src)| parse(rel, src)).collect();
    symbols::build(&parsed)
}

/// Names of the direct callees of `caller`, per the resolved graph.
fn callees(table: &SymbolTable, caller: &str) -> Vec<String> {
    let graph = callgraph::build(table);
    let from = table
        .nodes
        .iter()
        .position(|n| n.name == caller)
        .unwrap_or_else(|| panic!("no fn named {caller}"));
    graph.edges[from]
        .iter()
        .map(|e| table.nodes[e.callee].name.clone())
        .collect()
}

#[test]
fn raw_identifier_functions_resolve_as_edges() {
    // `r#fn` is a legal function name. The parser canonicalizes the
    // raw sigil away on BOTH sides — the definition indexes as `fn`
    // and the call site's keyword filter is bypassed for `r#`-headed
    // paths — so the two meet on the same key and the edge resolves.
    let t = table(&[(
        "crates/a/src/lib.rs",
        "fn r#fn() {}\npub fn caller() { r#fn(); }\n",
    )]);
    assert!(
        t.nodes.iter().any(|n| n.name == "fn"),
        "definition parsed: {:?}",
        t.nodes.iter().map(|n| &n.name).collect::<Vec<_>>()
    );
    assert_eq!(callees(&t, "caller"), ["fn"]);
}

#[test]
fn nested_generics_in_signatures_do_not_derail_the_body() {
    // The bracket-matcher must skip `<...<...>...>` in the signature
    // and still attribute the body's call correctly.
    let t = table(&[(
        "crates/a/src/lib.rs",
        "fn helper(_x: Vec<Option<u8>>) {}\n\
         pub fn transform<T: Into<Vec<Option<u8>>>>(x: T) -> Result<Vec<Vec<f64>>, String> {\n\
             helper(x.into());\n\
             Ok(Vec::new())\n\
         }\n",
    )]);
    let resolved = callees(&t, "transform");
    assert!(resolved.contains(&"helper".to_string()), "{resolved:?}");
    // Trait and std container names in the signature are not callees.
    assert!(!resolved.iter().any(|c| c == "Into" || c == "Vec"));
}

#[test]
fn lifetimes_in_paths_and_turbofish_resolve() {
    // `Holder::<'a>::get` carries a lifetime inside the turbofish; the
    // resolver must skip it and land on the typed method.
    let t = table(&[(
        "crates/a/src/lib.rs",
        "pub struct Holder<'a>(&'a str);\n\
         impl<'a> Holder<'a> {\n\
             fn get(&self) -> &'a str { self.0 }\n\
         }\n\
         pub fn read<'a>(h: &Holder<'a>) -> &'a str { Holder::<'a>::get(h) }\n\
         pub fn head<'a>(rows: &'a [f64]) -> Option<&'a f64> { select(rows) }\n\
         fn select<'r>(rows: &'r [f64]) -> Option<&'r f64> { rows.first() }\n",
    )]);
    assert_eq!(callees(&t, "read"), ["get"]);
    assert_eq!(callees(&t, "head"), ["select"]);
}

#[test]
fn functions_inside_macro_bodies_are_a_documented_non_edge() {
    // macro_rules! bodies are token soup until expansion; the parser
    // skips them wholesale, so `generated` gets no node and its call
    // creates no edge. Real items around the macro still resolve.
    let t = table(&[(
        "crates/a/src/lib.rs",
        "macro_rules! gen {\n\
             () => {\n\
                 pub fn generated() { target(); }\n\
             };\n\
         }\n\
         fn target() {}\n\
         pub fn real() { target(); }\n",
    )]);
    assert!(
        !t.nodes.iter().any(|n| n.name == "generated"),
        "macro bodies must not contribute fn nodes"
    );
    assert_eq!(callees(&t, "real"), ["target"]);
}

#[test]
fn cfg_test_shadows_neither_define_nor_call() {
    // The #[cfg(test)] module defines a same-named `helper` and calls
    // back into `entry`; mask_tests blanks the whole region, so only
    // the production node and the production edge survive.
    let t = table(&[(
        "crates/a/src/lib.rs",
        "pub fn entry() { helper(); }\n\
         fn helper() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
             fn helper() { super::entry(); }\n\
             #[test]\n\
             fn t() { helper(); }\n\
         }\n",
    )]);
    let helpers: Vec<_> = t.nodes.iter().filter(|n| n.name == "helper").collect();
    assert_eq!(helpers.len(), 1, "the shadow must be blanked");
    assert_eq!(callees(&t, "entry"), ["helper"]);
    // Nothing calls entry: the only caller lived in the test shadow.
    let graph = callgraph::build(&t);
    let entry_ix = t.nodes.iter().position(|n| n.name == "entry").unwrap();
    let callers = graph
        .edges
        .iter()
        .enumerate()
        .filter(|(_, es)| es.iter().any(|e| e.callee == entry_ix))
        .count();
    assert_eq!(callers, 0);
}

#[test]
fn closure_bodies_attribute_to_the_enclosing_fn() {
    // Closures are not items; their calls belong to the enclosing fn.
    let t = table(&[(
        "crates/a/src/lib.rs",
        "fn inner() {}\n\
         pub fn outer(xs: &[f64]) -> usize {\n\
             xs.iter().map(|_| inner()).count()\n\
         }\n",
    )]);
    assert!(callees(&t, "outer").contains(&"inner".to_string()));
}
