//! Structured lint findings and their text / JSON renderings.

/// One lint violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the analysis root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Lint identifier (kebab-case).
    pub lint: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to justify keeping it).
    pub suggestion: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl Finding {
    /// Stable ordering: by file, then line, column, lint.
    pub fn sort_key(&self) -> (String, usize, usize, String) {
        (self.file.clone(), self.line, self.col, self.lint.clone())
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.lint, self.message
        )?;
        if !self.excerpt.is_empty() {
            writeln!(f, "    | {}", self.excerpt)?;
        }
        write!(f, "    = help: {}", self.suggestion)
    }
}

/// The result of one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Unsuppressed findings, sorted by location.
    pub findings: Vec<Finding>,
    /// How many findings an `analyze.toml` entry suppressed.
    pub suppressed: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// `true` when the tree is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report (one block per finding plus a summary).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push_str("\n\n");
        }
        out.push_str(&format!(
            "flextract-analyze: {} finding(s), {} suppressed by analyze.toml, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// Machine-readable report (hand-rolled JSON: this crate is
    /// dependency-free by design).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"lint\": {}, \
                 \"message\": {}, \"suggestion\": {}, \"excerpt\": {}}}",
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.lint),
                json_str(&f.message),
                json_str(&f.suggestion),
                json_str(&f.excerpt),
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"total\": {},\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}\n",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            lint: "panic-surface".into(),
            message: "`.unwrap()` in a decode path".into(),
            suggestion: "return a typed error".into(),
            excerpt: "let v = buf.first().unwrap();".into(),
        }
    }

    #[test]
    fn display_names_file_line_col_and_lint() {
        let text = finding().to_string();
        assert!(text.contains("crates/x/src/lib.rs:3:9"), "{text}");
        assert!(text.contains("[panic-surface]"), "{text}");
        assert!(text.contains("help:"), "{text}");
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut a = Analysis {
            findings: vec![finding()],
            suppressed: 2,
            files_scanned: 10,
        };
        a.findings[0].message = "say \"no\"\n".into();
        let json = a.render_json();
        assert!(json.contains("\\\"no\\\"\\n"), "{json}");
        assert!(json.contains("\"total\": 1"), "{json}");
        assert!(json.contains("\"suppressed\": 2"), "{json}");
    }
}
