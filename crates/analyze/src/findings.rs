//! Structured lint findings and their text / JSON / SARIF renderings.

/// One hop of a witness call path: a function and where it enters the
/// path (the entry's definition site, or the call site in its caller).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathHop {
    /// Qualified function name, e.g. `flextract_dataset::ingest::clean`.
    pub qual: String,
    /// File of the hop location, relative to the analysis root.
    pub file: String,
    /// 1-based line of the hop location.
    pub line: usize,
}

impl PathHop {
    /// `qual (file:line)` — the unit the `via` suppression key matches.
    pub fn render(&self) -> String {
        format!("{} ({}:{})", self.qual, self.file, self.line)
    }
}

/// Render a witness path on one line (`hop -> hop -> hop`) — this is
/// the string `analyze.toml`'s `via` key is matched against.
pub fn render_path(path: &[PathHop]) -> String {
    path.iter()
        .map(PathHop::render)
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// One lint violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Finding {
    /// Path relative to the analysis root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Lint identifier (kebab-case).
    pub lint: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to justify keeping it).
    pub suggestion: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Witness call path for reachability lints (empty for lexical
    /// lints): entry first, each subsequent hop at its call site, the
    /// sink being this finding's own `file:line:col`.
    pub path: Vec<PathHop>,
}

impl Finding {
    /// Stable ordering: by file, then line, column, lint.
    pub fn sort_key(&self) -> (String, usize, usize, String) {
        (self.file.clone(), self.line, self.col, self.lint.clone())
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.lint, self.message
        )?;
        if !self.excerpt.is_empty() {
            writeln!(f, "    | {}", self.excerpt)?;
        }
        if !self.path.is_empty() {
            writeln!(f, "    = via: {}", render_path(&self.path))?;
        }
        write!(f, "    = help: {}", self.suggestion)
    }
}

/// The result of one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Unsuppressed findings, sorted by location.
    pub findings: Vec<Finding>,
    /// How many findings an `analyze.toml` entry suppressed.
    pub suppressed: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// How many files were actually re-read and re-parsed (differs
    /// from `files_scanned` on warm cache runs).
    pub files_reparsed: usize,
}

impl Analysis {
    /// `true` when the tree is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report (one block per finding plus a summary).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push_str("\n\n");
        }
        out.push_str(&format!(
            "flextract-analyze: {} finding(s), {} suppressed by analyze.toml, \
             {} file(s) scanned ({} re-parsed)\n",
            self.findings.len(),
            self.suppressed,
            self.files_scanned,
            self.files_reparsed
        ));
        out
    }

    /// Machine-readable report (hand-rolled JSON: this crate is
    /// dependency-free by design).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let path = f
                .path
                .iter()
                .map(|h| {
                    format!(
                        "{{\"qual\": {}, \"file\": {}, \"line\": {}}}",
                        json_str(&h.qual),
                        json_str(&h.file),
                        h.line
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"lint\": {}, \
                 \"message\": {}, \"suggestion\": {}, \"excerpt\": {}, \"path\": [{}]}}",
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.lint),
                json_str(&f.message),
                json_str(&f.suggestion),
                json_str(&f.excerpt),
                path,
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"total\": {},\n  \"suppressed\": {},\n  \"files_scanned\": {},\n  \
             \"files_reparsed\": {}\n}}\n",
            self.findings.len(),
            self.suppressed,
            self.files_scanned,
            self.files_reparsed
        ));
        out
    }

    /// SARIF 2.1.0 rendering — the minimal subset code-scanning UIs
    /// ingest: one run, one rule per distinct lint id, one result per
    /// finding with its primary location, and the witness path as
    /// related locations.
    pub fn render_sarif(&self) -> String {
        let mut rules: Vec<&str> = self.findings.iter().map(|f| f.lint.as_str()).collect();
        rules.sort_unstable();
        rules.dedup();
        let rules_json = rules
            .iter()
            .map(|id| format!("{{\"id\": {}}}", json_str(id)))
            .collect::<Vec<_>>()
            .join(", ");
        let mut results = String::new();
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            let related = f
                .path
                .iter()
                .map(|h| {
                    format!(
                        "{{\"message\": {{\"text\": {}}}, \"physicalLocation\": \
                         {{\"artifactLocation\": {{\"uri\": {}}}, \
                         \"region\": {{\"startLine\": {}}}}}}}",
                        json_str(&h.qual),
                        json_str(&h.file),
                        h.line
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            results.push_str(&format!(
                "\n      {{\"ruleId\": {}, \"level\": \"error\", \
                 \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \
                 \"startColumn\": {}}}}}}}], \"relatedLocations\": [{}]}}",
                json_str(&f.lint),
                json_str(&f.message),
                json_str(&f.file),
                f.line,
                f.col,
                related,
            ));
        }
        format!(
            "{{\n  \"$schema\": \
             \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [{{\n    \"tool\": {{\"driver\": \
             {{\"name\": \"flextract-analyze\", \"rules\": [{rules_json}]}}}},\n    \
             \"results\": [{results}\n    ]\n  }}]\n}}\n"
        )
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            lint: "panic-reachability".into(),
            message: "`.unwrap()` in a decode path".into(),
            suggestion: "return a typed error".into(),
            excerpt: "let v = buf.first().unwrap();".into(),
            path: vec![
                PathHop {
                    qual: "flextract_dataset::Dataset::materialize".into(),
                    file: "crates/dataset/src/store.rs".into(),
                    line: 221,
                },
                PathHop {
                    qual: "flextract_x::helper".into(),
                    file: "crates/dataset/src/store.rs".into(),
                    line: 240,
                },
            ],
        }
    }

    #[test]
    fn display_names_file_line_col_lint_and_path() {
        let text = finding().to_string();
        assert!(text.contains("crates/x/src/lib.rs:3:9"), "{text}");
        assert!(text.contains("[panic-reachability]"), "{text}");
        assert!(text.contains("help:"), "{text}");
        assert!(
            text.contains(
                "via: flextract_dataset::Dataset::materialize (crates/dataset/src/store.rs:221) \
                 -> flextract_x::helper (crates/dataset/src/store.rs:240)"
            ),
            "{text}"
        );
    }

    #[test]
    fn json_escapes_counts_and_path() {
        let mut a = Analysis {
            findings: vec![finding()],
            suppressed: 2,
            files_scanned: 10,
            files_reparsed: 10,
        };
        a.findings[0].message = "say \"no\"\n".into();
        let json = a.render_json();
        assert!(json.contains("\\\"no\\\"\\n"), "{json}");
        assert!(json.contains("\"total\": 1"), "{json}");
        assert!(json.contains("\"suppressed\": 2"), "{json}");
        assert!(json.contains("\"files_reparsed\": 10"), "{json}");
        assert!(json.contains("\"qual\": \"flextract_x::helper\""), "{json}");
    }

    #[test]
    fn sarif_has_schema_rules_and_locations() {
        let a = Analysis {
            findings: vec![finding()],
            suppressed: 0,
            files_scanned: 1,
            files_reparsed: 1,
        };
        let sarif = a.render_sarif();
        assert!(sarif.contains("sarif-2.1.0.json"), "{sarif}");
        assert!(
            sarif.contains("\"ruleId\": \"panic-reachability\""),
            "{sarif}"
        );
        assert!(sarif.contains("\"startLine\": 3"), "{sarif}");
        assert!(sarif.contains("\"startColumn\": 9"), "{sarif}");
        assert!(sarif.contains("relatedLocations"), "{sarif}");
        assert!(sarif.contains("flextract_x::helper"), "{sarif}");
    }

    #[test]
    fn empty_analysis_sarif_is_well_formed() {
        let sarif = Analysis::default().render_sarif();
        assert!(sarif.contains("\"results\": ["), "{sarif}");
        assert!(sarif.contains("\"rules\": []"), "{sarif}");
    }
}
