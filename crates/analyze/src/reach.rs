//! Reachability lints over the workspace call graph.
//!
//! Three lints replace PR 6's path-heuristic scans with semantic ones:
//!
//! * `determinism-taint` — forward reachability from every
//!   golden-feeding function (one that constructs or returns a
//!   `ScenarioReport`): nothing reached may read the wall clock,
//!   iterate a hash-ordered collection, or build a seedless RNG.
//! * `panic-reachability` — forward reachability from the public
//!   codec/scan/store entry APIs (inherent `pub fn`s on `Frame`,
//!   `Scan`, `Dataset`, `ShardedWriter`, plus the free
//!   `ingest::clean`): nothing reached may `unwrap`/`expect`/`panic!`
//!   or index a slice directly — wherever the helper lives.
//! * `unordered-spawn` — structural, not reachability: a detached
//!   `thread::spawn` is always a finding, and a scoped `.spawn(` is a
//!   finding unless the spawning function itself owns the
//!   `std::thread::scope` (so the joins are lexically pinned).
//!
//! Every reachability finding carries a witness call path — entry
//! definition, then one hop per call edge (`file:line` of the call
//! site), ending at the sink's exact `file:line:col`.

use crate::callgraph::CallGraph;
use crate::findings::{Finding, PathHop};
use crate::parser::SinkKind;
use crate::symbols::{FnNode, SymbolTable};
use std::collections::VecDeque;

/// Inherent-impl types whose `pub fn`s are panic-reachability entry
/// points: everything a consumer of the library can call with bytes
/// that came off disk.
const ENTRY_TYPES: &[&str] = &["Frame", "Scan", "Dataset", "ShardedWriter"];

/// Run all reachability lints. Findings are unsorted; the caller
/// sorts the combined set.
pub fn run(table: &SymbolTable, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    let det_entries: Vec<usize> = table
        .nodes
        .iter()
        .filter(|n| n.report_ctor)
        .map(|n| n.id)
        .collect();
    let panic_entries: Vec<usize> = table
        .nodes
        .iter()
        .filter(|n| is_panic_entry(n))
        .map(|n| n.id)
        .collect();
    let det_reach = bfs(graph, &det_entries);
    let panic_reach = bfs(graph, &panic_entries);
    for node in &table.nodes {
        if det_reach[node.id].is_some() {
            for sink in &node.sinks {
                let desc = match sink.kind {
                    SinkKind::WallClock => "wall-clock read",
                    SinkKind::HashOrder => "hash-ordered collection",
                    SinkKind::SeedlessRng => "seedless RNG",
                    _ => continue,
                };
                let (entry, path) = witness(table, &det_reach, node.id);
                findings.push(Finding {
                    file: node.file.clone(),
                    line: sink.line,
                    col: sink.col,
                    lint: "determinism-taint".into(),
                    message: format!(
                        "{desc} reachable from golden-feeding `{entry}` — reports must be \
                         pure functions of spec and seed"
                    ),
                    suggestion: "derive timing/order/seeds from the scenario spec (BTreeMap, \
                                 seed_from_u64); if the value provably never reaches a report, \
                                 suppress with a justification naming this witness path"
                        .into(),
                    excerpt: sink.excerpt.clone(),
                    path,
                });
            }
        }
        if panic_reach[node.id].is_some() {
            for sink in &node.sinks {
                let desc = match sink.kind {
                    SinkKind::Panic => "panicking call",
                    SinkKind::Indexing => "unchecked indexing",
                    _ => continue,
                };
                let (entry, path) = witness(table, &panic_reach, node.id);
                findings.push(Finding {
                    file: node.file.clone(),
                    line: sink.line,
                    col: sink.col,
                    lint: "panic-reachability".into(),
                    message: format!(
                        "{desc} reachable from public entry `{entry}` — hostile bytes must \
                         surface as typed errors, not process aborts"
                    ),
                    suggestion: "return a typed error naming the offset (or .get() the slice); \
                                 for internally-bounded arithmetic, suppress with a \
                                 justification naming the bound and this witness path"
                        .into(),
                    excerpt: sink.excerpt.clone(),
                    path,
                });
            }
        }
        for sink in &node.sinks {
            let finding = match sink.kind {
                SinkKind::DetachedSpawn => true,
                SinkKind::ScopedSpawn => !node.owns_thread_scope,
                _ => false,
            };
            if finding {
                findings.push(Finding {
                    file: node.file.clone(),
                    line: sink.line,
                    col: sink.col,
                    lint: "unordered-spawn".into(),
                    message: format!(
                        "thread spawn in `{}` outside the ordered fan-out discipline — \
                         spawns must happen inside the function that owns the \
                         std::thread::scope (ordered_parallel_map is the workspace idiom)",
                        node.qual()
                    ),
                    suggestion: "fan out through ordered_parallel_map, or move the spawn \
                                 into the function holding the thread::scope so the joins \
                                 are lexically pinned"
                        .into(),
                    excerpt: sink.excerpt.clone(),
                    path: vec![PathHop {
                        qual: node.qual(),
                        file: node.file.clone(),
                        line: node.line,
                    }],
                });
            }
        }
    }
    findings
}

/// Is this node a panic-reachability entry point?
fn is_panic_entry(node: &FnNode) -> bool {
    if node.vis != crate::parser::Vis::Pub {
        return false;
    }
    match &node.self_ty {
        Some(ty) => ENTRY_TYPES.contains(&ty.as_str()),
        None => node.name == "clean" && node.module.last().is_some_and(|m| m == "ingest"),
    }
}

/// Multi-source BFS. `reach[n]` is `Some(parent-edge)` when `n` is
/// reachable: `(pred id, call line, call col)`, with the sentinel
/// `(n, def line, def col)` for entry nodes themselves. Entries are
/// seeded in sorted order and edges are pre-sorted, so the witness
/// tree is deterministic.
#[allow(clippy::type_complexity)]
fn bfs(graph: &CallGraph, entries: &[usize]) -> Vec<Option<(usize, usize, usize)>> {
    let mut reach: Vec<Option<(usize, usize, usize)>> = vec![None; graph.edges.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut sorted = entries.to_vec();
    sorted.sort_unstable();
    for &e in &sorted {
        if reach[e].is_none() {
            reach[e] = Some((e, 0, 0));
            queue.push_back(e);
        }
    }
    while let Some(at) = queue.pop_front() {
        for edge in &graph.edges[at] {
            if reach[edge.callee].is_none() {
                reach[edge.callee] = Some((at, edge.line, edge.col));
                queue.push_back(edge.callee);
            }
        }
    }
    reach
}

/// Reconstruct the witness path to `node`: the entry's qualified name
/// and the hop list (entry at its definition, then each callee at its
/// call site in the caller's file).
fn witness(
    table: &SymbolTable,
    reach: &[Option<(usize, usize, usize)>],
    node: usize,
) -> (String, Vec<PathHop>) {
    let mut rev: Vec<(usize, usize)> = Vec::new(); // (node, call line)
    let mut at = node;
    loop {
        let (pred, line, _col) = reach[at].expect("witness of unreachable node");
        if pred == at {
            break; // entry sentinel
        }
        rev.push((at, line));
        at = pred;
    }
    let entry = &table.nodes[at];
    let mut hops = vec![PathHop {
        qual: entry.qual(),
        file: entry.file.clone(),
        line: entry.line,
    }];
    let mut caller = at;
    for (callee, line) in rev.into_iter().rev() {
        hops.push(PathHop {
            qual: table.nodes[callee].qual(),
            file: table.nodes[caller].file.clone(),
            line,
        });
        caller = callee;
    }
    (entry.qual(), hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{mask_code, mask_tests};
    use crate::parser::parse_file;
    use crate::{callgraph, symbols};

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<(String, crate::parser::ParsedFile)> = files
            .iter()
            .map(|(rel, src)| {
                (
                    rel.to_string(),
                    parse_file(src, &mask_tests(&mask_code(src))),
                )
            })
            .collect();
        let table = symbols::build(&parsed);
        let graph = callgraph::build(&table);
        run(&table, &graph)
    }

    #[test]
    fn two_crate_panic_reachability_with_witness() {
        let findings = analyze(&[
            (
                "crates/entry/src/lib.rs",
                "pub struct Dataset;\nimpl Dataset {\n\
                 pub fn materialize(&self) { flextract_mid::relay(); }\n}\n",
            ),
            (
                "crates/mid/src/lib.rs",
                "pub fn relay() { flextract_deep::decode(); }\n",
            ),
            (
                "crates/deep/src/lib.rs",
                "pub fn decode(b: &[u8]) -> u8 { b[0] }\n",
            ),
        ]);
        let hit = findings
            .iter()
            .find(|f| f.lint == "panic-reachability")
            .expect("must fire");
        assert_eq!(hit.file, "crates/deep/src/lib.rs");
        assert!(hit
            .message
            .contains("flextract_entry::Dataset::materialize"));
        let quals: Vec<&str> = hit.path.iter().map(|h| h.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "flextract_entry::Dataset::materialize",
                "flextract_mid::relay",
                "flextract_deep::decode"
            ]
        );
        assert_eq!(hit.path[1].file, "crates/entry/src/lib.rs");
    }

    #[test]
    fn unreachable_sink_is_silent() {
        let findings = analyze(&[
            (
                "crates/entry/src/lib.rs",
                "pub struct Dataset;\nimpl Dataset { pub fn materialize(&self) {} }\n",
            ),
            (
                "crates/deep/src/lib.rs",
                "pub fn decode(b: &[u8]) -> u8 { b[0] }\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn determinism_taint_from_report_ctor() {
        let findings = analyze(&[(
            "crates/r/src/lib.rs",
            "pub struct ScenarioReport { pub x: u64 }\n\
             pub fn build() -> ScenarioReport { ScenarioReport { x: tick() } }\n\
             fn tick() -> u64 { let t = std::time::Instant::now(); 0 }\n",
        )]);
        let hit = findings
            .iter()
            .find(|f| f.lint == "determinism-taint")
            .expect("must fire");
        assert!(hit.message.contains("wall-clock read"), "{}", hit.message);
        assert!(hit.message.contains("flextract_r::build"));
        assert_eq!(hit.path.len(), 2);
    }

    #[test]
    fn scoped_spawn_legal_only_in_scope_owner() {
        let findings = analyze(&[(
            "crates/s/src/lib.rs",
            "pub fn owner() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n\
             pub fn stray(s: &S) { s.spawn(f); }\n\
             pub fn detached() { std::thread::spawn(|| {}); }\n",
        )]);
        let spawns: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.lint == "unordered-spawn")
            .collect();
        assert_eq!(spawns.len(), 2, "{spawns:?}");
        assert!(spawns.iter().any(|f| f.message.contains("stray")));
        assert!(spawns.iter().any(|f| f.message.contains("detached")));
        assert!(!spawns.iter().any(|f| f.message.contains("owner")));
    }

    #[test]
    fn ingest_clean_is_an_entry() {
        let findings = analyze(&[(
            "crates/d/src/ingest.rs",
            "pub fn clean(v: Option<u8>) -> u8 { v.unwrap() }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "panic-reachability");
    }
}
