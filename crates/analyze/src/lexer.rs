//! Source masking: reduce a Rust source file to its *code* bytes.
//!
//! The lint patterns in this crate are lexical, so they must never
//! match inside a comment, a string literal, a raw string, a byte
//! string, or a char literal — `// no SystemTime::now here` is not a
//! violation. [`mask_code`] blanks every non-code byte with a space
//! while preserving the file's exact byte length and line structure,
//! so byte offsets into the masked text are byte offsets into the
//! original file.
//!
//! [`mask_tests`] additionally blanks `#[cfg(test)]` / `#[test]`
//! regions: test code is allowed to `unwrap()` and to iterate hash
//! maps, because nothing a test does can leak into a shipped report.

/// `true` for bytes that may appear inside a Rust identifier.
pub fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank comments and string/char literal *contents* (quotes included)
/// with spaces, preserving newlines and byte positions. Handles line
/// comments, nested block comments, string escapes, raw strings with
/// any `#` depth, byte/raw-byte strings, raw identifiers (`r#type`),
/// char literals, and lifetimes (`'a` is code, `'x'` is not).
pub fn mask_code(src: &str) -> String {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = vec![b' '; n];
    // Newlines survive masking so line/col arithmetic stays exact.
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            out[i] = b'\n';
        }
    }
    let mut i = 0;
    while i < n {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Possible raw / byte string prefix — only when not inside an
        // identifier (`attr"` is not valid Rust, but `bar` must not
        // eat a following quote).
        let at_word_start = i == 0 || !is_ident(b[i - 1]);
        if at_word_start && (c == b'r' || c == b'b') {
            let mut j = i;
            if b[j] == b'b' {
                j += 1;
            }
            let raw = j < n && b[j] == b'r';
            if raw {
                j += 1;
            }
            let mut hashes = 0;
            while raw && j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == b'"' && (raw || b[i] == b'b') {
                if raw {
                    // Raw (byte) string: ends at `"` + `hashes` hashes.
                    i = j + 1;
                    'raw: while i < n {
                        if b[i] == b'"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && b[i + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    continue;
                }
                // Byte string `b"…"`: same escape rules as a string.
                i = consume_string(b, j);
                continue;
            }
            if raw && hashes > 0 {
                // Raw identifier `r#type`: plain code.
                while i < j {
                    out[i] = b[i];
                    i += 1;
                }
                continue;
            }
            // Plain identifier starting with r/b.
            out[i] = c;
            i += 1;
            continue;
        }
        // String literal.
        if c == b'"' {
            i = consume_string(b, i);
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal.
                let mut j = i + 2;
                if j < n {
                    j += 1; // the escaped byte
                }
                while j < n && b[j] != b'\'' {
                    j += 1;
                }
                i = (j + 1).min(n);
                continue;
            }
            if i + 2 < n && is_ident(b[i + 1]) && b[i + 2] != b'\'' {
                // Lifetime: keep as code.
                out[i] = c;
                i += 1;
                continue;
            }
            if i + 2 < n && b[i + 2] == b'\'' {
                // One-byte char literal.
                i += 3;
                continue;
            }
            // Bare quote (macro token, `'static` at EOF, …): code.
            out[i] = c;
            i += 1;
            continue;
        }
        out[i] = c;
        i += 1;
    }
    // Safe: we only wrote ASCII over ASCII positions; multi-byte
    // UTF-8 sequences were blanked with spaces byte-for-byte.
    String::from_utf8(out).unwrap_or_default()
}

/// Advance past a string literal starting at the opening quote
/// `b[at] == b'"'`; returns the index one past the closing quote.
fn consume_string(b: &[u8], at: usize) -> usize {
    let n = b.len();
    let mut i = at + 1;
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Blank `#[cfg(test)]` / `#[test]` items in already-masked code:
/// from the attribute through the end of the item it gates (the
/// matching close brace of the item's block, or the terminating `;`).
/// `#[cfg_attr(…)]` and `#[cfg(not(test))]` regions stay live — they
/// compile into the shipped library.
pub fn mask_tests(code: &str) -> String {
    let mut b = code.as_bytes().to_vec();
    let n = b.len();
    let mut i = 0;
    while i < n {
        if b[i] != b'#' {
            i += 1;
            continue;
        }
        let Some((inner, after)) = read_attribute(&b, i) else {
            i += 1;
            continue;
        };
        if !attr_gates_test(&inner) {
            i = after;
            continue;
        }
        // Skip any further attributes between the test gate and the
        // item itself.
        let mut j = after;
        loop {
            while j < n && (b[j] as char).is_whitespace() {
                j += 1;
            }
            if j < n && b[j] == b'#' {
                if let Some((_, a)) = read_attribute(&b, j) {
                    j = a;
                    continue;
                }
            }
            break;
        }
        // The item ends at its block's matching close brace, or at a
        // `;` that appears before any block opens.
        let mut depth = 0usize;
        let mut end = n;
        while j < n {
            match b[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for cell in b.iter_mut().take(end).skip(i) {
            if *cell != b'\n' {
                *cell = b' ';
            }
        }
        i = end;
    }
    String::from_utf8(b).unwrap_or_default()
}

/// If an attribute `#[…]` starts at `at`, return its inner text and
/// the index one past the closing `]`.
fn read_attribute(b: &[u8], at: usize) -> Option<(String, usize)> {
    let n = b.len();
    let mut i = at + 1;
    while i < n && (b[i] as char).is_whitespace() {
        i += 1;
    }
    if i >= n || b[i] != b'[' {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    while i < n {
        match b[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let inner = String::from_utf8_lossy(&b[open + 1..i]).into_owned();
                    return Some((inner, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Does this attribute body gate test-only code?
fn attr_gates_test(inner: &str) -> bool {
    let t: String = inner.split_whitespace().collect();
    if t.starts_with("cfg_attr") {
        return false;
    }
    if t == "test" {
        return true;
    }
    if !t.starts_with("cfg(") {
        return false;
    }
    if t.contains("not(test") {
        return false;
    }
    // Word-boundary search for `test` inside the cfg expression.
    let bytes = t.as_bytes();
    let mut from = 0;
    while let Some(pos) = t[from..].find("test") {
        let s = from + pos;
        let before_ok = s == 0 || !is_ident(bytes[s - 1]);
        let after_ok = s + 4 >= bytes.len() || !is_ident(bytes[s + 4]);
        if before_ok && after_ok {
            return true;
        }
        from = s + 4;
    }
    false
}

/// Byte offset → (1-based line, 1-based column).
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let upto = &src.as_bytes()[..offset.min(src.len())];
    let line = upto.iter().filter(|&&c| c == b'\n').count() + 1;
    let col = offset - upto.iter().rposition(|&c| c == b'\n').map_or(0, |p| p + 1) + 1;
    (line, col)
}

/// The full (1-based) line of `src` containing byte `offset`, trimmed.
pub fn line_text(src: &str, offset: usize) -> &str {
    let bytes = src.as_bytes();
    let offset = offset.min(src.len());
    let start = bytes[..offset]
        .iter()
        .rposition(|&c| c == b'\n')
        .map_or(0, |p| p + 1);
    let end = bytes[offset..]
        .iter()
        .position(|&c| c == b'\n')
        .map_or(src.len(), |p| offset + p);
    src[start..end].trim()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = r##"let x = "SystemTime::now"; // SystemTime::now
/* SystemTime::now */ let y = 1;"##;
        let code = mask_code(src);
        assert!(!code.contains("SystemTime"), "{code}");
        assert!(code.contains("let x ="));
        assert!(code.contains("let y = 1;"));
        assert_eq!(code.len(), src.len());
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r####"let s = r#"unwrap() inside"#; let t = r##"x "# y"##; s.len()"####;
        let code = mask_code(src);
        assert!(!code.contains("unwrap"));
        assert!(code.contains("s.len()"));
    }

    #[test]
    fn byte_strings_and_raw_identifiers() {
        let src = "let m = b\"panic!\"; let r#type = 1; br#\"panic!\"#; type_ok()";
        let code = mask_code(src);
        assert!(!code.contains("panic!"), "{code}");
        assert!(code.contains("r#type"));
        assert!(code.contains("type_ok()"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let n = '\\n'; c }";
        let code = mask_code(src);
        assert!(code.contains("'a>"));
        assert!(code.contains("&'a str"));
        assert!(!code.contains("'x'"));
        assert!(code.contains("let c ="));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* nested unwrap() */ still comment */ live()";
        let code = mask_code(src);
        assert!(!code.contains("unwrap"));
        assert!(code.contains("live()"));
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn live() { x.unwrap_live(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}";
        let code = mask_tests(&mask_code(src));
        assert!(!code.contains(".unwrap()"), "{code}");
        assert!(code.contains("unwrap_live"));
        assert!(code.contains("also_live"));
    }

    #[test]
    fn test_attribute_fn_is_masked_but_cfg_attr_is_not() {
        let src = "#[test]\nfn t() { a.unwrap(); }\n#[cfg_attr(feature = \"x\", derive(Debug))]\nstruct Live { a: u8 }";
        let code = mask_tests(&mask_code(src));
        assert!(!code.contains("unwrap"));
        assert!(code.contains("struct Live"));
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }";
        let code = mask_tests(&mask_code(src));
        assert!(code.contains("unwrap"));
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 4), (2, 2));
        assert_eq!(line_col(src, 6), (3, 1));
        assert_eq!(line_text(src, 4), "cd");
    }
}
