//! The *lexical* lint catalogue: patterns whose mere presence in a
//! scoped file is the violation, no call-graph reasoning needed.
//!
//! | lint | invariant |
//! |------|-----------|
//! | `float-fold` | merge/aggregate paths use the canonical per-chunk-then-in-order folds |
//! | `vendor-hygiene` | vendored stand-ins stay offline: no net, no process, no build scripts |
//! | `forbid-unsafe` | every library crate root carries `#![forbid(unsafe_code)]` |
//!
//! The determinism and panic-safety invariants that used to live here
//! as path-scoped patterns (`nondeterministic-time`,
//! `unordered-iteration`, `seedless-rng`, `panic-surface`,
//! `unchecked-indexing`) are now *reachability* lints
//! (`determinism-taint`, `panic-reachability`, `unordered-spawn`) in
//! [`crate::reach`], which proves a path from an entry point to the
//! sink instead of guessing from directory names. This module keeps
//! the shared pattern machinery ([`Pat`], [`find_matches`]) those
//! sinks are detected with.
//!
//! Lints are lexical (they scan masked code — see [`crate::lexer`]),
//! which keeps the engine dependency-free and fast. The trade-off is
//! honesty about scope: a pattern spelled across lines (`SystemTime ::
//! now`) escapes; the dynamic layer (goldens, proptests) still catches
//! what the static layer misses.

use crate::lexer::is_ident;
use crate::walker::Role;

/// How a lint recognises a violation in masked code.
#[derive(Debug, Clone, Copy)]
pub enum Pat {
    /// Literal substring, with identifier-boundary checks at whichever
    /// ends of the pattern are identifier characters.
    Substr(&'static str),
    /// A direct index expression: `[` immediately following an
    /// identifier, `)`, or `]` (excluding keyword heads like `let`).
    Index,
}

/// One lint definition.
#[derive(Debug, Clone, Copy)]
pub struct LintDef {
    /// Kebab-case identifier, stable across releases.
    pub id: &'static str,
    /// Roles the lint applies to.
    pub roles: &'static [Role],
    /// Path prefixes (trailing `/`) or exact paths the lint is scoped
    /// to; empty = every file of a matching role.
    pub paths: &'static [&'static str],
    /// Violation patterns.
    pub patterns: &'static [Pat],
    /// What is wrong when a pattern matches.
    pub message: &'static str,
    /// The fix to steer towards.
    pub suggestion: &'static str,
}

impl LintDef {
    /// Does the lint apply to this file?
    pub fn applies(&self, role: Role, rel: &str) -> bool {
        if !self.roles.contains(&role) {
            return false;
        }
        if self.paths.is_empty() {
            return true;
        }
        self.paths.iter().any(|p| {
            p.strip_suffix('/')
                .map_or(rel == *p, |prefix| rel.starts_with(prefix))
        })
    }
}

const LIB: &[Role] = &[Role::Library];
const VENDOR: &[Role] = &[Role::Vendor];

/// Merge/aggregate contexts where an ad-hoc float reduction can break
/// byte-stability under parallelism: the frame scan folds, the
/// scenario runner/merge layer, and flex-offer aggregation.
const FLOAT_FOLD_PATHS: &[&str] = &[
    "crates/frame/src/",
    "crates/scenario/src/",
    "crates/agg/src/",
];

/// The shipped lexical lint catalogue.
pub const LINTS: &[LintDef] = &[
    LintDef {
        id: "float-fold",
        roles: LIB,
        paths: FLOAT_FOLD_PATHS,
        patterns: &[
            Pat::Substr(".sum::<f64>"),
            Pat::Substr(".sum::<f32>"),
            Pat::Substr(".fold(0.0"),
            Pat::Substr(".fold(0f64"),
            Pat::Substr(".product::<f64>"),
        ],
        message: "ad-hoc float reduction in a merge/aggregate context — float addition is \
                  non-associative, so fold order must be pinned explicitly",
        suggestion: "fold through the canonical helpers (ChunkStats::from_values / \
                     Aggregates::absorb: per chunk first, then across chunks in order)",
    },
    LintDef {
        id: "vendor-hygiene",
        roles: VENDOR,
        paths: &[],
        patterns: &[
            Pat::Substr("std::net"),
            Pat::Substr("std::process"),
            Pat::Substr("TcpStream"),
            Pat::Substr("UdpSocket"),
            Pat::Substr("Command::new"),
        ],
        message: "vendored stand-in reaches for the network or a subprocess — the offline \
                  supply-chain discipline forbids both",
        suggestion: "vendored crates implement exactly the API surface the workspace uses; \
                     delete the capability or move the code out of vendor/",
    },
];

/// Keywords that may directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `return [x]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "mut", "ref", "return", "else", "match", "box", "static", "move", "dyn", "break",
    "continue", "yield", "await", "as", "impl", "where", "for", "const",
];

/// Scan masked code for a pattern; returns byte offsets of matches.
pub fn find_matches(code: &str, pat: Pat) -> Vec<usize> {
    match pat {
        Pat::Substr(needle) => find_substr(code, needle),
        Pat::Index => find_index_exprs(code),
    }
}

fn find_substr(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let nb = needle.as_bytes();
    let cb = code.as_bytes();
    let head_ident = nb.first().copied().is_some_and(is_ident);
    let tail_ident = nb.last().copied().is_some_and(is_ident);
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let s = from + pos;
        let e = s + nb.len();
        let before_ok = !head_ident || s == 0 || !is_ident(cb[s - 1]);
        let after_ok = !tail_ident || e >= cb.len() || !is_ident(cb[e]);
        if before_ok && after_ok {
            out.push(s);
        }
        from = s + 1;
    }
    out
}

fn find_index_exprs(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        // Previous non-space byte decides whether this `[` indexes.
        let Some(p) = b[..i].iter().rposition(|&x| x != b' ' && x != b'\n') else {
            continue;
        };
        let prev = b[p];
        if !(is_ident(prev) || prev == b')' || prev == b']') {
            continue;
        }
        if is_ident(prev) {
            let mut s = p;
            while s > 0 && is_ident(b[s - 1]) {
                s -= 1;
            }
            // Reject lifetime heads (`&'a [f64]` is a slice type) and
            // keyword heads (`let [a, b] = …` is a pattern).
            if s > 0 && b[s - 1] == b'\'' {
                continue;
            }
            let word = &code[s..=p];
            if NON_INDEX_KEYWORDS.contains(&word) {
                continue;
            }
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substr_boundaries() {
        let hits = find_matches(
            "let m: HashMap<u8, u8>; MyHashMapLike x;",
            Pat::Substr("HashMap"),
        );
        assert_eq!(hits.len(), 1);
        let hits = find_matches("a.unwrap(); a.unwrap_or(0);", Pat::Substr(".unwrap()"));
        assert_eq!(hits.len(), 1);
        let hits = find_matches("core::panic!(\"x\")", Pat::Substr("panic!"));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn index_expressions_only() {
        let code = "let [a, b] = pair; let x = buf[at]; let t: [u8; 4] = [0; 4]; \
                    v.push(arr[0][1]); vec![1]; #[derive(Debug)] f()[2]; &mut [0.0]";
        let hits = find_matches(code, Pat::Index);
        // buf[at], arr[0], [0][1], f()[2]
        assert_eq!(hits.len(), 4, "{hits:?}");
    }

    #[test]
    fn lint_scoping_by_role_and_path() {
        let fold = LINTS.iter().find(|l| l.id == "float-fold").unwrap();
        assert!(fold.applies(Role::Library, "crates/frame/src/fxm.rs"));
        assert!(fold.applies(Role::Library, "crates/scenario/src/runner.rs"));
        assert!(!fold.applies(Role::Library, "crates/core/src/peak.rs"));
        assert!(!fold.applies(Role::TestCode, "crates/frame/src/fxm.rs"));
        let vendor = LINTS.iter().find(|l| l.id == "vendor-hygiene").unwrap();
        assert!(vendor.applies(Role::Vendor, "vendor/rand/src/lib.rs"));
        assert!(!vendor.applies(Role::Library, "crates/core/src/peak.rs"));
    }
}
