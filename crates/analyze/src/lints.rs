//! The lint catalogue: each lint encodes one invariant the golden
//! files and proptests enforce dynamically, moved up to the source
//! line.
//!
//! | lint | invariant |
//! |------|-----------|
//! | `nondeterministic-time` | reports are pure functions of spec+seed — no wall clock in library code |
//! | `unordered-iteration` | nothing ordered ever flows out of a hash table's iteration order |
//! | `seedless-rng` | every RNG is constructed from an explicit seed |
//! | `panic-surface` | codec/scan/cleaning/ingestion paths return typed errors, never panic |
//! | `unchecked-indexing` | those same paths never index slices directly |
//! | `float-fold` | merge/aggregate paths use the canonical per-chunk-then-in-order folds |
//! | `vendor-hygiene` | vendored stand-ins stay offline: no net, no process, no build scripts |
//! | `forbid-unsafe` | every library crate root carries `#![forbid(unsafe_code)]` |
//!
//! Lints are lexical (they scan masked code — see [`crate::lexer`]),
//! which keeps the engine dependency-free and fast. The trade-off is
//! honesty about scope: a pattern spelled across lines (`SystemTime ::
//! now`) escapes; the dynamic layer (goldens, proptests) still catches
//! what the static layer misses.

use crate::lexer::is_ident;
use crate::walker::Role;

/// How a lint recognises a violation in masked code.
#[derive(Debug, Clone, Copy)]
pub enum Pat {
    /// Literal substring, with identifier-boundary checks at whichever
    /// ends of the pattern are identifier characters.
    Substr(&'static str),
    /// A direct index expression: `[` immediately following an
    /// identifier, `)`, or `]` (excluding keyword heads like `let`).
    Index,
}

/// One lint definition.
#[derive(Debug, Clone, Copy)]
pub struct LintDef {
    /// Kebab-case identifier, stable across releases.
    pub id: &'static str,
    /// Roles the lint applies to.
    pub roles: &'static [Role],
    /// Path prefixes (trailing `/`) or exact paths the lint is scoped
    /// to; empty = every file of a matching role.
    pub paths: &'static [&'static str],
    /// Violation patterns.
    pub patterns: &'static [Pat],
    /// What is wrong when a pattern matches.
    pub message: &'static str,
    /// The fix to steer towards.
    pub suggestion: &'static str,
}

impl LintDef {
    /// Does the lint apply to this file?
    pub fn applies(&self, role: Role, rel: &str) -> bool {
        if !self.roles.contains(&role) {
            return false;
        }
        if self.paths.is_empty() {
            return true;
        }
        self.paths.iter().any(|p| {
            p.strip_suffix('/')
                .map_or(rel == *p, |prefix| rel.starts_with(prefix))
        })
    }
}

const LIB: &[Role] = &[Role::Library];
const LIB_BIN: &[Role] = &[Role::Library, Role::Binary];
const VENDOR: &[Role] = &[Role::Vendor];

/// Decode/cleaning/ingestion paths where panicking on input bytes is a
/// production outage, not a bug report: the frame codec and scan
/// engine, the dataset store/codecs, and the series-level cleaning
/// primitives they call.
const PANIC_SURFACE_PATHS: &[&str] = &[
    "crates/frame/src/",
    "crates/dataset/src/",
    "crates/series/src/codec.rs",
    "crates/series/src/missing.rs",
    "crates/series/src/resample.rs",
    "crates/series/src/rolling.rs",
    "crates/series/src/anomaly.rs",
];

/// Merge/aggregate contexts where an ad-hoc float reduction can break
/// byte-stability under parallelism: the frame scan folds, the
/// scenario runner/merge layer, and flex-offer aggregation.
const FLOAT_FOLD_PATHS: &[&str] = &[
    "crates/frame/src/",
    "crates/scenario/src/",
    "crates/agg/src/",
];

/// The shipped lint catalogue.
pub const LINTS: &[LintDef] = &[
    LintDef {
        id: "nondeterministic-time",
        roles: LIB_BIN,
        paths: &[],
        patterns: &[Pat::Substr("SystemTime::now"), Pat::Substr("Instant::now")],
        message: "wall-clock read in pipeline code — reports must be pure functions of \
                  spec and seed",
        suggestion: "derive timing from the scenario spec; if this measures wall time that \
                     never reaches a report, suppress it in analyze.toml with a justification",
    },
    LintDef {
        id: "unordered-iteration",
        roles: LIB_BIN,
        paths: &[],
        patterns: &[Pat::Substr("HashMap"), Pat::Substr("HashSet")],
        message: "hash-ordered collection in library code — iteration order is \
                  nondeterministic and must never reach a report or serialization",
        suggestion: "use BTreeMap/BTreeSet (or sort before iterating); if the map is only \
                     ever keyed, never iterated, suppress with a justification saying so",
    },
    LintDef {
        id: "seedless-rng",
        roles: LIB_BIN,
        paths: &[],
        patterns: &[
            Pat::Substr("from_entropy"),
            Pat::Substr("thread_rng"),
            Pat::Substr("rand::rng()"),
            Pat::Substr("rand::random()"),
            Pat::Substr("entropy_seed"),
        ],
        message: "RNG constructed without an explicit seed — identical specs would stop \
                  producing identical outputs",
        suggestion: "thread an explicit seed in (StdRng::seed_from_u64) — per-consumer-index \
                     seeding is the workspace convention",
    },
    LintDef {
        id: "panic-surface",
        roles: LIB,
        paths: PANIC_SURFACE_PATHS,
        patterns: &[
            Pat::Substr(".unwrap()"),
            Pat::Substr(".expect("),
            Pat::Substr("panic!"),
            Pat::Substr("unreachable!"),
            Pat::Substr("todo!"),
            Pat::Substr("unimplemented!"),
        ],
        message: "possible panic in a codec/scan/cleaning/ingestion path — hostile bytes \
                  must surface as typed errors, not process aborts",
        suggestion: "return a typed error (FrameError/DatasetError/SeriesError) naming the \
                     offset instead of panicking",
    },
    LintDef {
        id: "unchecked-indexing",
        roles: LIB,
        paths: PANIC_SURFACE_PATHS,
        patterns: &[Pat::Index],
        message: "direct slice indexing in a codec/scan/cleaning/ingestion path — an \
                  attacker-controlled length or offset here is a process abort",
        suggestion: "use .get()/.get_mut() and surface a typed error naming the offset; \
                     for internally-bounded window arithmetic, suppress per file with a \
                     justification naming the bound",
    },
    LintDef {
        id: "float-fold",
        roles: LIB,
        paths: FLOAT_FOLD_PATHS,
        patterns: &[
            Pat::Substr(".sum::<f64>"),
            Pat::Substr(".sum::<f32>"),
            Pat::Substr(".fold(0.0"),
            Pat::Substr(".fold(0f64"),
            Pat::Substr(".product::<f64>"),
        ],
        message: "ad-hoc float reduction in a merge/aggregate context — float addition is \
                  non-associative, so fold order must be pinned explicitly",
        suggestion: "fold through the canonical helpers (ChunkStats::from_values / \
                     Aggregates::absorb: per chunk first, then across chunks in order)",
    },
    LintDef {
        id: "vendor-hygiene",
        roles: VENDOR,
        paths: &[],
        patterns: &[
            Pat::Substr("std::net"),
            Pat::Substr("std::process"),
            Pat::Substr("TcpStream"),
            Pat::Substr("UdpSocket"),
            Pat::Substr("Command::new"),
        ],
        message: "vendored stand-in reaches for the network or a subprocess — the offline \
                  supply-chain discipline forbids both",
        suggestion: "vendored crates implement exactly the API surface the workspace uses; \
                     delete the capability or move the code out of vendor/",
    },
];

/// Keywords that may directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `return [x]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "mut", "ref", "return", "else", "match", "box", "static", "move", "dyn", "break",
    "continue", "yield", "await", "as", "impl", "where", "for", "const",
];

/// Scan masked code for a pattern; returns byte offsets of matches.
pub fn find_matches(code: &str, pat: Pat) -> Vec<usize> {
    match pat {
        Pat::Substr(needle) => find_substr(code, needle),
        Pat::Index => find_index_exprs(code),
    }
}

fn find_substr(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let nb = needle.as_bytes();
    let cb = code.as_bytes();
    let head_ident = nb.first().copied().is_some_and(is_ident);
    let tail_ident = nb.last().copied().is_some_and(is_ident);
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let s = from + pos;
        let e = s + nb.len();
        let before_ok = !head_ident || s == 0 || !is_ident(cb[s - 1]);
        let after_ok = !tail_ident || e >= cb.len() || !is_ident(cb[e]);
        if before_ok && after_ok {
            out.push(s);
        }
        from = s + 1;
    }
    out
}

fn find_index_exprs(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        // Previous non-space byte decides whether this `[` indexes.
        let Some(p) = b[..i].iter().rposition(|&x| x != b' ' && x != b'\n') else {
            continue;
        };
        let prev = b[p];
        if !(is_ident(prev) || prev == b')' || prev == b']') {
            continue;
        }
        if is_ident(prev) {
            let mut s = p;
            while s > 0 && is_ident(b[s - 1]) {
                s -= 1;
            }
            // Reject lifetime heads (`&'a [f64]` is a slice type) and
            // keyword heads (`let [a, b] = …` is a pattern).
            if s > 0 && b[s - 1] == b'\'' {
                continue;
            }
            let word = &code[s..=p];
            if NON_INDEX_KEYWORDS.contains(&word) {
                continue;
            }
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substr_boundaries() {
        let hits = find_matches(
            "let m: HashMap<u8, u8>; MyHashMapLike x;",
            Pat::Substr("HashMap"),
        );
        assert_eq!(hits.len(), 1);
        let hits = find_matches("a.unwrap(); a.unwrap_or(0);", Pat::Substr(".unwrap()"));
        assert_eq!(hits.len(), 1);
        let hits = find_matches("core::panic!(\"x\")", Pat::Substr("panic!"));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn index_expressions_only() {
        let code = "let [a, b] = pair; let x = buf[at]; let t: [u8; 4] = [0; 4]; \
                    v.push(arr[0][1]); vec![1]; #[derive(Debug)] f()[2]; &mut [0.0]";
        let hits = find_matches(code, Pat::Index);
        // buf[at], arr[0], [0][1], f()[2]
        assert_eq!(hits.len(), 4, "{hits:?}");
    }

    #[test]
    fn lint_scoping_by_role_and_path() {
        let panic = LINTS.iter().find(|l| l.id == "panic-surface").unwrap();
        assert!(panic.applies(Role::Library, "crates/frame/src/fxm.rs"));
        assert!(panic.applies(Role::Library, "crates/series/src/missing.rs"));
        assert!(!panic.applies(Role::Library, "crates/core/src/peak.rs"));
        assert!(!panic.applies(Role::TestCode, "crates/frame/src/fxm.rs"));
        let time = LINTS
            .iter()
            .find(|l| l.id == "nondeterministic-time")
            .unwrap();
        assert!(time.applies(Role::Library, "crates/core/src/peak.rs"));
        assert!(time.applies(Role::Binary, "src/bin/flextract.rs"));
        assert!(!time.applies(Role::Bench, "crates/bench/src/lib.rs"));
    }
}
