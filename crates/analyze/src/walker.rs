//! Deterministic workspace file walker with crate-role scoping.
//!
//! Every file the engine lints is classified by the *role* its path
//! implies — library code, binary front end, test code, benches,
//! examples, or vendored stand-ins — because the invariants differ by
//! role: test code may `unwrap()`, vendored stand-ins may not touch
//! the network, and only library code feeds the golden reports.

use std::path::{Path, PathBuf};

/// What kind of code a file contains, by workspace convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code under a crate's `src/` — the lint surface.
    Library,
    /// Binary front ends (`src/bin/…`).
    Binary,
    /// Integration/unit test files under `tests/`.
    TestCode,
    /// Benchmark code (`benches/`, and the `crates/bench` harness).
    Bench,
    /// Example binaries under `examples/`.
    Example,
    /// Vendored offline dependency stand-ins under `vendor/`.
    Vendor,
}

/// One file the engine will scan.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the analysis root, `/`-separated.
    pub rel: String,
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Role implied by the path.
    pub role: Role,
}

/// Directories never descended into: build output, VCS metadata, lint
/// fixtures (which contain intentional violations), and data trees
/// with no Rust sources.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    ".github",
    "fixtures",
    "golden",
    "datasets",
    "scenarios",
    "node_modules",
];

/// Classify a workspace-relative path. `None` means the file is out of
/// scope (non-Rust, or a manifest outside `vendor/`).
pub fn classify(rel: &str) -> Option<Role> {
    let comps: Vec<&str> = rel.split('/').collect();
    let name = *comps.last()?;
    let is_rust = name.ends_with(".rs");
    let vendored = comps.first() == Some(&"vendor");
    if vendored {
        // Manifests and build scripts matter for vendor hygiene.
        if is_rust || name == "Cargo.toml" {
            return Some(Role::Vendor);
        }
        return None;
    }
    if !is_rust {
        return None;
    }
    if comps.contains(&"tests") {
        return Some(Role::TestCode);
    }
    if comps.contains(&"benches") {
        return Some(Role::Bench);
    }
    if comps.contains(&"examples") {
        return Some(Role::Example);
    }
    if comps.len() >= 2 && comps[0] == "crates" && comps[1] == "bench" {
        return Some(Role::Bench);
    }
    if comps.contains(&"bin") {
        return Some(Role::Binary);
    }
    Some(Role::Library)
}

/// Walk `root` depth-first in sorted order (the walk itself must be
/// deterministic — this is the determinism linter) and classify every
/// file. IO errors name the path they occurred on.
pub fn walk(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let iter = std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("path escape under {}: {e}", root.display()))?
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        if let Some(role) = classify(&rel) {
            out.push(SourceFile { rel, path, role });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/frame/src/fxm.rs"), Some(Role::Library));
        assert_eq!(classify("src/lib.rs"), Some(Role::Library));
        assert_eq!(classify("src/bin/flextract.rs"), Some(Role::Binary));
        assert_eq!(classify("tests/cli_smoke.rs"), Some(Role::TestCode));
        assert_eq!(
            classify("crates/frame/tests/proptests.rs"),
            Some(Role::TestCode)
        );
        assert_eq!(
            classify("crates/bench/benches/bench_pipeline.rs"),
            Some(Role::Bench)
        );
        assert_eq!(
            classify("crates/bench/src/bin/fig5_peak.rs"),
            Some(Role::Bench)
        );
        assert_eq!(classify("examples/quickstart.rs"), Some(Role::Example));
        assert_eq!(classify("vendor/rand/src/lib.rs"), Some(Role::Vendor));
        assert_eq!(classify("vendor/rand/Cargo.toml"), Some(Role::Vendor));
        assert_eq!(classify("Cargo.toml"), None);
        assert_eq!(classify("README.md"), None);
    }
}
