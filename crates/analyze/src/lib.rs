//! # flextract-analyze
//!
//! A workspace lint engine that statically enforces the determinism
//! and panic-safety invariants the golden files depend on.
//!
//! Every guarantee this reproduction makes — byte-identical
//! `ScenarioReport`s at any thread count, stats-only scans
//! bit-identical to full decodes, codecs that return typed errors on
//! hostile bytes — is otherwise enforced only *dynamically*, after the
//! fact, by goldens and proptests. This crate adds the static layer:
//! an offline, dependency-free pass over the workspace's Rust sources
//! that rejects the violation at the source line before any test has
//! to fail.
//!
//! Since PR 8 the engine is *semantic*, not just lexical: it parses
//! items, resolves workspace-internal call edges, and proves
//! reachability from entry points to sinks instead of guessing from
//! directory names. The pieces:
//!
//! * [`lexer`] — comment/string/raw-string-aware masking, so patterns
//!   never fire inside comments, literals, or `#[cfg(test)]` regions;
//! * [`walker`] — a deterministic file walker that classifies every
//!   file by crate role (library, binary, test, bench, example,
//!   vendor);
//! * [`parser`] — a lightweight item parser extracting `fn`/`impl`/
//!   `mod`/`use` items, call sites, and sink sites per file;
//! * [`symbols`] / [`callgraph`] — the workspace symbol table and the
//!   cross-crate call graph resolved over it;
//! * [`reach`] — the reachability lints (`determinism-taint`,
//!   `panic-reachability`, `unordered-spawn`) with witness call paths;
//! * [`lints`] — the remaining lexical lint catalogue (see its module
//!   docs) and the shared pattern machinery;
//! * [`allowlist`] — the `analyze.toml` escape hatch, where every
//!   suppression must carry a written justification, may be scoped to
//!   a witness call path (`via`), and unused entries are themselves
//!   findings;
//! * [`cache`] — the incremental file-hash cache: warm runs re-parse
//!   only changed files and recompute just the (cheap) semantic pass;
//! * [`findings`] — structured `file:line:col` findings with witness
//!   paths and text / JSON / SARIF renderings.
//!
//! The CLI surface is `flextract analyze [--root DIR] [--json]
//! [--sarif FILE] [--no-cache]`; CI runs it as a hard gate. Findings
//! exit 1; an internal failure of the analysis itself exits 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod cache;
pub mod callgraph;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod reach;
pub mod symbols;
pub mod walker;

pub use allowlist::{Allowlist, Suppression};
pub use findings::{render_path, Analysis, Finding, PathHop};
pub use lints::{LintDef, LINTS};
pub use walker::{Role, SourceFile};

use std::path::{Path, PathBuf};

/// Name of the allowlist file at the analysis root.
pub const ALLOWLIST_FILE: &str = "analyze.toml";

/// Knobs for one analysis run.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Where to load/store the incremental cache; `None` disables
    /// caching entirely (every file is re-parsed).
    pub cache_path: Option<PathBuf>,
}

/// The conventional cache location for a workspace root (under
/// `target/`, so `cargo clean` clears it).
pub fn default_cache_path(root: &Path) -> PathBuf {
    root.join(cache::CACHE_FILE)
}

/// Run the full analysis over the workspace at `root` with the given
/// allowlist, no cache. Findings come back sorted by
/// `(file, line, col, lint)`.
pub fn analyze_tree(root: &Path, allowlist: &Allowlist) -> Result<Analysis, String> {
    analyze_tree_with(root, allowlist, &AnalyzeOptions::default())
}

/// [`analyze_tree`] with explicit options. Cached and cold runs are
/// byte-identical in output — the cache can only change timing.
pub fn analyze_tree_with(
    root: &Path,
    allowlist: &Allowlist,
    opts: &AnalyzeOptions,
) -> Result<Analysis, String> {
    let files = walker::walk(root)?;
    let old_cache = match &opts.cache_path {
        Some(path) => cache::Cache::load(path),
        None => cache::Cache::default(),
    };
    let mut new_cache = cache::Cache::default();
    let mut findings = Vec::new();
    let mut parsed_files: Vec<(String, parser::ParsedFile)> = Vec::new();
    let mut scanned = 0usize;
    let mut reparsed = 0usize;
    for file in &files {
        scanned += 1;
        let bytes = std::fs::read(&file.path)
            .map_err(|e| format!("cannot read {}: {e}", file.path.display()))?;
        let hash = cache::fnv1a(&bytes);
        if let Some(entry) = old_cache.entries.get(&file.rel) {
            if entry.hash == hash {
                findings.extend(entry.lexical.iter().cloned());
                if let Some(parsed) = &entry.parsed {
                    parsed_files.push((file.rel.clone(), parsed.clone()));
                }
                new_cache.entries.insert(file.rel.clone(), entry.clone());
                continue;
            }
        }
        reparsed += 1;
        let src = String::from_utf8(bytes)
            .map_err(|_| format!("{} is not valid UTF-8", file.path.display()))?;
        let mut lexical = Vec::new();
        let parsed = scan_file(file, &src, &mut lexical);
        findings.extend(lexical.iter().cloned());
        if let Some(parsed) = &parsed {
            parsed_files.push((file.rel.clone(), parsed.clone()));
        }
        new_cache.entries.insert(
            file.rel.clone(),
            cache::FileEntry {
                hash,
                parsed,
                lexical,
            },
        );
    }
    // The semantic pass is cross-file and cheap next to parsing, so it
    // runs fresh every time — cache hits feed it identical inputs.
    let table = symbols::build(&parsed_files);
    let graph = callgraph::build(&table);
    findings.extend(reach::run(&table, &graph));
    if let Some(path) = &opts.cache_path {
        // Best-effort: a failed save costs warm-start time, nothing
        // else, and must not fail the gate.
        let _ = new_cache.save(path);
    }
    let (mut kept, suppressed) = allowlist.apply(findings);
    kept.sort_by_key(|f| f.sort_key());
    Ok(Analysis {
        findings: kept,
        suppressed,
        files_scanned: scanned,
        files_reparsed: reparsed,
    })
}

/// Load the allowlist that belongs to `root` (missing file = empty).
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    Allowlist::load(&root.join(ALLOWLIST_FILE))
}

/// Does this file feed the call graph? Library and binary Rust code
/// does; tests, benches, examples, and vendor stand-ins do not (their
/// calls are not edges the invariants run through).
fn wants_graph(file: &SourceFile) -> bool {
    matches!(file.role, Role::Library | Role::Binary) && file.rel.ends_with(".rs")
}

/// Scan one file: append its lexical findings, and return its parsed
/// item structure when the file feeds the call graph.
fn scan_file(
    file: &SourceFile,
    src: &str,
    findings: &mut Vec<Finding>,
) -> Option<parser::ParsedFile> {
    let name = file.rel.rsplit('/').next().unwrap_or(&file.rel);
    if name == "Cargo.toml" {
        scan_vendor_manifest(file, src, findings);
        return None;
    }
    if file.role == Role::Vendor && name == "build.rs" {
        findings.push(Finding {
            file: file.rel.clone(),
            line: 1,
            col: 1,
            lint: "vendor-hygiene".into(),
            message: "vendored stand-in carries a build script — build-time code execution \
                      is outside the offline supply-chain discipline"
                .into(),
            suggestion: "vendored crates must build from plain sources; inline whatever the \
                         script generated"
                .into(),
            ..Finding::default()
        });
        // The script body is still scanned for net/process below.
    }
    let code = lexer::mask_tests(&lexer::mask_code(src));
    for lint in LINTS {
        if !lint.applies(file.role, &file.rel) {
            continue;
        }
        for &pat in lint.patterns {
            for offset in lints::find_matches(&code, pat) {
                let (line, col) = lexer::line_col(src, offset);
                findings.push(Finding {
                    file: file.rel.clone(),
                    line,
                    col,
                    lint: lint.id.into(),
                    message: lint.message.into(),
                    suggestion: lint.suggestion.into(),
                    excerpt: lexer::line_text(src, offset).to_string(),
                    ..Finding::default()
                });
            }
        }
    }
    forbid_unsafe_check(file, &code, findings);
    wants_graph(file).then(|| parser::parse_file(src, &code))
}

/// `forbid-unsafe`: every library crate root must carry
/// `#![forbid(unsafe_code)]`, making the tree's unsafe-free state a
/// compile-time guarantee rather than a habit.
fn forbid_unsafe_check(file: &SourceFile, code: &str, findings: &mut Vec<Finding>) {
    let is_crate_root = file.role == Role::Library
        && (file.rel == "src/lib.rs"
            || (file.rel.starts_with("crates/") && file.rel.ends_with("/src/lib.rs")));
    if !is_crate_root {
        return;
    }
    let normalized: String = code.split_whitespace().collect();
    if !normalized.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            file: file.rel.clone(),
            line: 1,
            col: 1,
            lint: "forbid-unsafe".into(),
            message: "library crate root does not forbid unsafe code".into(),
            suggestion: "add `#![forbid(unsafe_code)]` to the crate root".into(),
            ..Finding::default()
        });
    }
}

/// `vendor-hygiene` for manifests: a vendored crate must not declare a
/// build script or build-dependencies.
fn scan_vendor_manifest(file: &SourceFile, src: &str, findings: &mut Vec<Finding>) {
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let build_script = line
            .split_once('=')
            .is_some_and(|(k, _)| k.trim() == "build");
        if build_script || line == "[build-dependencies]" {
            findings.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                col: 1,
                lint: "vendor-hygiene".into(),
                message: "vendored manifest declares a build script or build-dependencies".into(),
                suggestion: "vendored crates must build from plain sources with no \
                             build-time code execution"
                    .into(),
                excerpt: raw.trim().to_string(),
                ..Finding::default()
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walker::{Role, SourceFile};

    fn file(rel: &str, role: Role) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            path: std::path::PathBuf::from(rel),
            role,
        }
    }

    #[test]
    fn scan_flags_and_locates() {
        let src = "fn f(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>()\n}\n";
        let mut findings = Vec::new();
        scan_file(
            &file("crates/frame/src/scan.rs", Role::Library),
            src,
            &mut findings,
        );
        let hit = findings
            .iter()
            .find(|f| f.lint == "float-fold")
            .expect("must flag");
        assert_eq!(hit.line, 2);
        assert!(hit.excerpt.contains("sum::<f64>"));
    }

    #[test]
    fn test_role_is_exempt_from_lexical_lints_and_graph() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        let mut findings = Vec::new();
        let parsed = scan_file(
            &file("crates/frame/tests/x.rs", Role::TestCode),
            src,
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert!(parsed.is_none(), "test code must not feed the call graph");
    }

    #[test]
    fn library_files_feed_the_graph() {
        let src = "pub fn f() { g(); }\nfn g() {}\n";
        let mut findings = Vec::new();
        let parsed = scan_file(
            &file("crates/core/src/peak.rs", Role::Library),
            src,
            &mut findings,
        );
        let parsed = parsed.expect("library code feeds the graph");
        assert_eq!(parsed.fns.len(), 2);
    }

    #[test]
    fn vendor_manifest_build_script_flagged() {
        let src =
            "[package]\nname = \"x\"\nbuild = \"build.rs\"\n\n[build-dependencies]\ncc = \"1\"\n";
        let mut findings = Vec::new();
        scan_file(
            &file("vendor/x/Cargo.toml", Role::Vendor),
            src,
            &mut findings,
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.lint == "vendor-hygiene"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn missing_forbid_unsafe_flagged_on_crate_roots_only() {
        let mut findings = Vec::new();
        scan_file(
            &file("crates/x/src/lib.rs", Role::Library),
            "pub fn f() {}\n",
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "forbid-unsafe");

        let mut findings = Vec::new();
        scan_file(
            &file("crates/x/src/lib.rs", Role::Library),
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");

        let mut findings = Vec::new();
        scan_file(
            &file("crates/x/src/other.rs", Role::Library),
            "pub fn f() {}\n",
            &mut findings,
        );
        assert!(findings.is_empty());
    }
}
