//! # flextract-analyze
//!
//! A workspace lint engine that statically enforces the determinism
//! and panic-safety invariants the golden files depend on.
//!
//! Every guarantee this reproduction makes — byte-identical
//! `ScenarioReport`s at any thread count, stats-only scans
//! bit-identical to full decodes, codecs that return typed errors on
//! hostile bytes — is otherwise enforced only *dynamically*, after the
//! fact, by goldens and proptests. This crate adds the static layer:
//! an offline, dependency-free pass over the workspace's Rust sources
//! that rejects the violation at the source line before any test has
//! to fail.
//!
//! The pieces:
//!
//! * [`lexer`] — comment/string/raw-string-aware masking, so lexical
//!   patterns never fire inside comments, literals, or `#[cfg(test)]`
//!   regions;
//! * [`walker`] — a deterministic file walker that classifies every
//!   file by crate role (library, binary, test, bench, example,
//!   vendor);
//! * [`lints`] — the lint catalogue (see its module docs for the
//!   invariant each lint encodes);
//! * [`allowlist`] — the `analyze.toml` escape hatch, where every
//!   suppression must carry a written justification and unused
//!   entries are themselves findings;
//! * [`findings`] — structured `file:line:col` findings with text and
//!   JSON renderings.
//!
//! The CLI surface is `flextract analyze [--root DIR] [--json]`; CI
//! runs it as a hard gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod walker;

pub use allowlist::{Allowlist, Suppression};
pub use findings::{Analysis, Finding};
pub use lints::{LintDef, LINTS};
pub use walker::{Role, SourceFile};

use std::path::Path;

/// Name of the allowlist file at the analysis root.
pub const ALLOWLIST_FILE: &str = "analyze.toml";

/// Run the full analysis over the workspace at `root` with the given
/// allowlist. Findings come back sorted by `(file, line, col, lint)`.
pub fn analyze_tree(root: &Path, allowlist: &Allowlist) -> Result<Analysis, String> {
    let files = walker::walk(root)?;
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        scanned += 1;
        let src = std::fs::read_to_string(&file.path)
            .map_err(|e| format!("cannot read {}: {e}", file.path.display()))?;
        scan_file(file, &src, &mut findings);
    }
    let (mut kept, suppressed) = allowlist.apply(findings);
    kept.sort_by_key(|f| f.sort_key());
    Ok(Analysis {
        findings: kept,
        suppressed,
        files_scanned: scanned,
    })
}

/// Load the allowlist that belongs to `root` (missing file = empty).
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    Allowlist::load(&root.join(ALLOWLIST_FILE))
}

/// Scan one file's source text, appending findings.
fn scan_file(file: &SourceFile, src: &str, findings: &mut Vec<Finding>) {
    let name = file.rel.rsplit('/').next().unwrap_or(&file.rel);
    if name == "Cargo.toml" {
        scan_vendor_manifest(file, src, findings);
        return;
    }
    if file.role == Role::Vendor && name == "build.rs" {
        findings.push(Finding {
            file: file.rel.clone(),
            line: 1,
            col: 1,
            lint: "vendor-hygiene".into(),
            message: "vendored stand-in carries a build script — build-time code execution \
                      is outside the offline supply-chain discipline"
                .into(),
            suggestion: "vendored crates must build from plain sources; inline whatever the \
                         script generated"
                .into(),
            excerpt: String::new(),
        });
        // The script body is still scanned for net/process below.
    }
    let code = lexer::mask_tests(&lexer::mask_code(src));
    for lint in LINTS {
        if !lint.applies(file.role, &file.rel) {
            continue;
        }
        for &pat in lint.patterns {
            for offset in lints::find_matches(&code, pat) {
                let (line, col) = lexer::line_col(src, offset);
                findings.push(Finding {
                    file: file.rel.clone(),
                    line,
                    col,
                    lint: lint.id.into(),
                    message: lint.message.into(),
                    suggestion: lint.suggestion.into(),
                    excerpt: lexer::line_text(src, offset).to_string(),
                });
            }
        }
    }
    forbid_unsafe_check(file, &code, findings);
}

/// `forbid-unsafe`: every library crate root must carry
/// `#![forbid(unsafe_code)]`, making the tree's unsafe-free state a
/// compile-time guarantee rather than a habit.
fn forbid_unsafe_check(file: &SourceFile, code: &str, findings: &mut Vec<Finding>) {
    let is_crate_root = file.role == Role::Library
        && (file.rel == "src/lib.rs"
            || (file.rel.starts_with("crates/") && file.rel.ends_with("/src/lib.rs")));
    if !is_crate_root {
        return;
    }
    let normalized: String = code.split_whitespace().collect();
    if !normalized.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            file: file.rel.clone(),
            line: 1,
            col: 1,
            lint: "forbid-unsafe".into(),
            message: "library crate root does not forbid unsafe code".into(),
            suggestion: "add `#![forbid(unsafe_code)]` to the crate root".into(),
            excerpt: String::new(),
        });
    }
}

/// `vendor-hygiene` for manifests: a vendored crate must not declare a
/// build script or build-dependencies.
fn scan_vendor_manifest(file: &SourceFile, src: &str, findings: &mut Vec<Finding>) {
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let build_script = line
            .split_once('=')
            .is_some_and(|(k, _)| k.trim() == "build");
        if build_script || line == "[build-dependencies]" {
            findings.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                col: 1,
                lint: "vendor-hygiene".into(),
                message: "vendored manifest declares a build script or build-dependencies".into(),
                suggestion: "vendored crates must build from plain sources with no \
                             build-time code execution"
                    .into(),
                excerpt: raw.trim().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walker::{Role, SourceFile};

    fn file(rel: &str, role: Role) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            path: std::path::PathBuf::from(rel),
            role,
        }
    }

    #[test]
    fn scan_flags_and_locates() {
        let src = "fn f() {\n    let t = std::time::SystemTime::now();\n}\n";
        let mut findings = Vec::new();
        scan_file(
            &file("crates/core/src/peak.rs", Role::Library),
            src,
            &mut findings,
        );
        let hit = findings
            .iter()
            .find(|f| f.lint == "nondeterministic-time")
            .expect("must flag");
        assert_eq!((hit.line, hit.col), (2, 24));
        assert!(hit.excerpt.contains("SystemTime::now"));
    }

    #[test]
    fn test_role_is_exempt() {
        let src = "fn f() { let t = SystemTime::now(); x.unwrap(); }\n";
        let mut findings = Vec::new();
        scan_file(
            &file("crates/frame/tests/x.rs", Role::TestCode),
            src,
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn vendor_manifest_build_script_flagged() {
        let src =
            "[package]\nname = \"x\"\nbuild = \"build.rs\"\n\n[build-dependencies]\ncc = \"1\"\n";
        let mut findings = Vec::new();
        scan_file(
            &file("vendor/x/Cargo.toml", Role::Vendor),
            src,
            &mut findings,
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.lint == "vendor-hygiene"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn missing_forbid_unsafe_flagged_on_crate_roots_only() {
        let mut findings = Vec::new();
        scan_file(
            &file("crates/x/src/lib.rs", Role::Library),
            "pub fn f() {}\n",
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "forbid-unsafe");

        let mut findings = Vec::new();
        scan_file(
            &file("crates/x/src/lib.rs", Role::Library),
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");

        let mut findings = Vec::new();
        scan_file(
            &file("crates/x/src/other.rs", Role::Library),
            "pub fn f() {}\n",
            &mut findings,
        );
        assert!(findings.is_empty());
    }
}
