//! Incremental analysis cache: warm runs only re-parse changed files.
//!
//! The cache stores, per file, an FNV-1a 64 hash of the raw bytes plus
//! everything the engine derived from the file: the lexical findings
//! (with line/col/excerpt already materialized, so the source is never
//! needed again) and the parsed item structure the call graph is built
//! from. The *semantic* pass — symbol table, call graph, reachability —
//! is recomputed on every run: it is cross-file by nature and cheap
//! next to parsing, and recomputing it keeps cached and cold runs
//! byte-identical.
//!
//! The on-disk format is a versioned, tab-separated text file under
//! `target/` (so `cargo clean` clears it). The version line embeds an
//! engine fingerprint that gets bumped whenever lint or parser
//! semantics change; any mismatch — or any malformed record — makes
//! the whole cache load as empty. A cache can only ever make a run
//! faster, never change its output.

use crate::findings::Finding;
use crate::parser::{CallSite, FnItem, ParsedFile, SinkKind, SinkSite, Vis};
use std::collections::BTreeMap;
use std::path::Path;

/// Bump on any change to lints, parser semantics, or this format.
const ENGINE_FINGERPRINT: &str = "flextract-analyze-cache v1 semantic-pass-1";

/// Cache file name under the analysis root's `target/` directory.
pub const CACHE_FILE: &str = "target/flextract-analyze-cache";

/// Everything cached for one file.
#[derive(Debug, Clone, Default)]
pub struct FileEntry {
    /// FNV-1a 64 hash of the file's raw bytes.
    pub hash: u64,
    /// Parsed structure (only for library/binary Rust files).
    pub parsed: Option<ParsedFile>,
    /// Lexical findings (float-fold, vendor-hygiene, forbid-unsafe).
    pub lexical: Vec<Finding>,
}

/// The cache: relative path → entry.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Entries keyed by workspace-relative path.
    pub entries: BTreeMap<String, FileEntry>,
}

/// FNV-1a 64 — tiny, deterministic, and plenty for change detection
/// (a collision would need an adversarial edit to the workspace's own
/// source, which the gate's threat model does not include).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Cache {
    /// Load from disk. Any problem — missing file, version mismatch,
    /// malformed record — yields an empty cache: cold is always safe.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::default();
        };
        parse(&text).unwrap_or_default()
    }

    /// Persist to disk (best-effort: the caller may ignore errors,
    /// losing only warm-start time).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, render(self))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

fn sink_kind_str(kind: SinkKind) -> &'static str {
    match kind {
        SinkKind::WallClock => "wall-clock",
        SinkKind::HashOrder => "hash-order",
        SinkKind::SeedlessRng => "seedless-rng",
        SinkKind::Panic => "panic",
        SinkKind::Indexing => "indexing",
        SinkKind::DetachedSpawn => "detached-spawn",
        SinkKind::ScopedSpawn => "scoped-spawn",
    }
}

fn sink_kind_parse(s: &str) -> Option<SinkKind> {
    Some(match s {
        "wall-clock" => SinkKind::WallClock,
        "hash-order" => SinkKind::HashOrder,
        "seedless-rng" => SinkKind::SeedlessRng,
        "panic" => SinkKind::Panic,
        "indexing" => SinkKind::Indexing,
        "detached-spawn" => SinkKind::DetachedSpawn,
        "scoped-spawn" => SinkKind::ScopedSpawn,
        _ => return None,
    })
}

fn segs_str(segs: &[String]) -> String {
    if segs.is_empty() {
        "-".to_string()
    } else {
        segs.join("::")
    }
}

fn segs_parse(s: &str) -> Vec<String> {
    if s == "-" {
        Vec::new()
    } else {
        s.split("::").map(str::to_string).collect()
    }
}

fn render(cache: &Cache) -> String {
    let mut out = String::from(ENGINE_FINGERPRINT);
    out.push('\n');
    for (rel, entry) in &cache.entries {
        out.push_str(&format!(
            "F\t{}\t{:016x}\t{}\n",
            esc(rel),
            entry.hash,
            u8::from(entry.parsed.is_some())
        ));
        if let Some(parsed) = &entry.parsed {
            for (alias, path) in &parsed.uses {
                out.push_str(&format!("U\t{}\t{}\n", esc(alias), segs_str(path)));
            }
            for glob in &parsed.globs {
                out.push_str(&format!("G\t{}\n", segs_str(glob)));
            }
            for f in &parsed.fns {
                let mut flags = String::new();
                if f.report_ctor {
                    flags.push('r');
                }
                if f.owns_thread_scope {
                    flags.push('s');
                }
                if flags.is_empty() {
                    flags.push('-');
                }
                out.push_str(&format!(
                    "N\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                    esc(&f.name),
                    f.self_ty.as_deref().map_or("-".to_string(), esc),
                    segs_str(&f.module),
                    if f.vis == Vis::Pub { "P" } else { "p" },
                    f.line,
                    f.col,
                    flags
                ));
                for c in &f.calls {
                    out.push_str(&format!(
                        "C\t{}\t{}\t{}\t{}\t{}\n",
                        c.line,
                        c.col,
                        u8::from(c.method),
                        u8::from(c.recv_self),
                        segs_str(&c.segments)
                    ));
                }
                for s in &f.sinks {
                    out.push_str(&format!(
                        "S\t{}\t{}\t{}\t{}\n",
                        sink_kind_str(s.kind),
                        s.line,
                        s.col,
                        esc(&s.excerpt)
                    ));
                }
            }
        }
        for f in &entry.lexical {
            out.push_str(&format!(
                "L\t{}\t{}\t{}\t{}\t{}\t{}\n",
                f.line,
                f.col,
                esc(&f.lint),
                esc(&f.message),
                esc(&f.suggestion),
                esc(&f.excerpt)
            ));
        }
    }
    out
}

fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    if lines.next()? != ENGINE_FINGERPRINT {
        return None;
    }
    let mut cache = Cache::default();
    let mut current: Option<(String, FileEntry)> = None;
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied()? {
            "F" => {
                if let Some((rel, entry)) = current.take() {
                    cache.entries.insert(rel, entry);
                }
                if fields.len() != 4 {
                    return None;
                }
                let rel = unesc(fields[1])?;
                let hash = u64::from_str_radix(fields[2], 16).ok()?;
                let parsed = match fields[3] {
                    "1" => Some(ParsedFile::default()),
                    "0" => None,
                    _ => return None,
                };
                current = Some((
                    rel,
                    FileEntry {
                        hash,
                        parsed,
                        lexical: Vec::new(),
                    },
                ));
            }
            "U" => {
                let parsed = current.as_mut()?.1.parsed.as_mut()?;
                if fields.len() != 3 {
                    return None;
                }
                parsed.uses.push((unesc(fields[1])?, segs_parse(fields[2])));
            }
            "G" => {
                let parsed = current.as_mut()?.1.parsed.as_mut()?;
                if fields.len() != 2 {
                    return None;
                }
                parsed.globs.push(segs_parse(fields[1]));
            }
            "N" => {
                let parsed = current.as_mut()?.1.parsed.as_mut()?;
                if fields.len() != 8 {
                    return None;
                }
                let flags = fields[7];
                parsed.fns.push(FnItem {
                    name: unesc(fields[1])?,
                    self_ty: if fields[2] == "-" {
                        None
                    } else {
                        Some(unesc(fields[2])?)
                    },
                    module: segs_parse(fields[3]),
                    vis: match fields[4] {
                        "P" => Vis::Pub,
                        "p" => Vis::Private,
                        _ => return None,
                    },
                    line: fields[5].parse().ok()?,
                    col: fields[6].parse().ok()?,
                    body: None,
                    calls: Vec::new(),
                    sinks: Vec::new(),
                    report_ctor: flags.contains('r'),
                    owns_thread_scope: flags.contains('s'),
                });
            }
            "C" => {
                let parsed = current.as_mut()?.1.parsed.as_mut()?;
                let f = parsed.fns.last_mut()?;
                if fields.len() != 6 {
                    return None;
                }
                f.calls.push(CallSite {
                    line: fields[1].parse().ok()?,
                    col: fields[2].parse().ok()?,
                    method: fields[3] == "1",
                    recv_self: fields[4] == "1",
                    segments: segs_parse(fields[5]),
                });
            }
            "S" => {
                let parsed = current.as_mut()?.1.parsed.as_mut()?;
                let f = parsed.fns.last_mut()?;
                if fields.len() != 5 {
                    return None;
                }
                f.sinks.push(SinkSite {
                    kind: sink_kind_parse(fields[1])?,
                    line: fields[2].parse().ok()?,
                    col: fields[3].parse().ok()?,
                    excerpt: unesc(fields[4])?,
                });
            }
            "L" => {
                let (rel, entry) = current.as_mut()?;
                if fields.len() != 7 {
                    return None;
                }
                entry.lexical.push(Finding {
                    file: rel.clone(),
                    line: fields[1].parse().ok()?,
                    col: fields[2].parse().ok()?,
                    lint: unesc(fields[3])?,
                    message: unesc(fields[4])?,
                    suggestion: unesc(fields[5])?,
                    excerpt: unesc(fields[6])?,
                    path: Vec::new(),
                });
            }
            _ => return None,
        }
    }
    if let Some((rel, entry)) = current.take() {
        cache.entries.insert(rel, entry);
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{mask_code, mask_tests};
    use crate::parser::parse_file;

    #[test]
    fn round_trips_parse_and_findings() {
        let src = "use a::b;\nuse c::*;\npub struct Frame;\nimpl Frame {\n\
                   pub fn open(b: &[u8]) -> u8 { helper(); b[0] }\n}\n";
        let parsed = parse_file(src, &mask_tests(&mask_code(src)));
        let mut cache = Cache::default();
        cache.entries.insert(
            "crates/x/src/lib.rs".to_string(),
            FileEntry {
                hash: fnv1a(src.as_bytes()),
                parsed: Some(parsed.clone()),
                lexical: vec![Finding {
                    file: "crates/x/src/lib.rs".into(),
                    line: 1,
                    col: 1,
                    lint: "forbid-unsafe".into(),
                    message: "library crate root does not forbid unsafe code".into(),
                    suggestion: "add it".into(),
                    excerpt: "has\ttab and \\ slash".into(),
                    path: Vec::new(),
                }],
            },
        );
        let reloaded = parse(&render(&cache)).expect("round trip");
        let entry = &reloaded.entries["crates/x/src/lib.rs"];
        assert_eq!(entry.hash, fnv1a(src.as_bytes()));
        let rp = entry.parsed.as_ref().expect("parsed");
        assert_eq!(rp.uses, parsed.uses);
        assert_eq!(rp.globs, parsed.globs);
        assert_eq!(rp.fns.len(), parsed.fns.len());
        let (a, b) = (&rp.fns[0], &parsed.fns[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.self_ty, b.self_ty);
        assert_eq!(a.vis, b.vis);
        assert_eq!((a.line, a.col), (b.line, b.col));
        assert_eq!(a.calls, b.calls);
        assert_eq!(a.sinks, b.sinks);
        assert_eq!(entry.lexical[0].excerpt, "has\ttab and \\ slash");
    }

    #[test]
    fn version_mismatch_and_garbage_load_empty() {
        assert!(parse("some other header\nF\tx\t0\t0\n").is_none());
        assert!(parse(&format!("{ENGINE_FINGERPRINT}\nZ\tgarbage\n")).is_none());
        assert!(parse(&format!("{ENGINE_FINGERPRINT}\nF\tonly-two-fields\n")).is_none());
        // Cache::load turns both into empty caches.
        let c = Cache::load(Path::new("/nonexistent/cache"));
        assert!(c.entries.is_empty());
    }

    #[test]
    fn hash_differs_on_edit() {
        assert_ne!(fnv1a(b"fn a() {}"), fnv1a(b"fn a() { }"));
    }
}
