//! The `analyze.toml` suppression allowlist.
//!
//! Static analysis without an escape hatch rots: the first
//! false-positive either gets the gate turned off or the lint deleted.
//! The escape hatch here is deliberate and audited — every suppression
//! is an `[[suppress]]` entry that must name the lint, the path, and a
//! written `justification`. Entries without a justification do not
//! suppress anything (they become `invalid-suppression` findings), and
//! entries that match nothing become `unused-suppression` findings so
//! the allowlist cannot silently outlive the code it excused.
//!
//! The format is a deliberately minimal TOML subset (this crate is
//! dependency-free): `[[suppress]]` tables with string-valued keys
//! `lint`, `path`, `contains` (optional), `via` (optional) and
//! `justification`.
//!
//! `via` scopes a suppression to a *call path*: it is matched as a
//! substring of the finding's rendered witness path (`qual (file:line)
//! -> …`), so an entry can excuse a sink reached through one specific
//! entry point while the same sink reached any other way keeps firing.

use crate::findings::{render_path, Finding};

/// One audited suppression entry.
#[derive(Debug, Clone, Default)]
pub struct Suppression {
    /// Lint id the entry suppresses.
    pub lint: String,
    /// File path the entry applies to — exact, or a prefix when it
    /// ends with `/`.
    pub path: String,
    /// Optional substring the offending source line must contain
    /// (narrows the suppression to specific expressions).
    pub contains: Option<String>,
    /// Optional substring the finding's rendered witness call path
    /// must contain (narrows the suppression to sinks reached through
    /// a specific entry point or hop). A finding with no witness path
    /// never matches an entry that sets `via`.
    pub via: Option<String>,
    /// Why the violation is acceptable. Required.
    pub justification: String,
    /// Line of the `[[suppress]]` header in `analyze.toml`.
    pub line: usize,
}

impl Suppression {
    fn matches(&self, finding: &Finding) -> bool {
        if self.lint != finding.lint {
            return false;
        }
        let path_ok = if let Some(prefix) = self.path.strip_suffix('/') {
            finding.file.starts_with(prefix)
        } else {
            finding.file == self.path
        };
        if !path_ok {
            return false;
        }
        if let Some(needle) = &self.contains {
            if !finding.excerpt.contains(needle.as_str()) {
                return false;
            }
        }
        match &self.via {
            Some(needle) => {
                !finding.path.is_empty() && render_path(&finding.path).contains(needle.as_str())
            }
            None => true,
        }
    }
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// The entries, in file order.
    pub entries: Vec<Suppression>,
    /// Where the allowlist was loaded from (for findings it emits).
    pub source: String,
}

impl Allowlist {
    /// Parse allowlist text. Errors name the line; an empty or
    /// comment-only file is a valid empty allowlist.
    pub fn parse(text: &str, source: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<Suppression> = Vec::new();
        let mut in_entry = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[suppress]]" {
                entries.push(Suppression {
                    line: lineno,
                    ..Suppression::default()
                });
                in_entry = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "{source}:{lineno}: unknown table {line:?} (only [[suppress]] is supported)"
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("{source}:{lineno}: expected `key = \"value\"`"));
            };
            if !in_entry {
                return Err(format!(
                    "{source}:{lineno}: key outside a [[suppress]] entry"
                ));
            }
            let value = parse_string(value.trim())
                .ok_or_else(|| format!("{source}:{lineno}: value must be a quoted string"))?;
            let entry = entries
                .last_mut()
                .expect("in_entry implies at least one entry");
            match key.trim() {
                "lint" => entry.lint = value,
                "path" => entry.path = value,
                "contains" => entry.contains = Some(value),
                "via" => entry.via = Some(value),
                "justification" => entry.justification = value,
                other => {
                    return Err(format!(
                        "{source}:{lineno}: unknown key {other:?} \
                         (lint|path|contains|via|justification)"
                    ));
                }
            }
        }
        Ok(Allowlist {
            entries,
            source: source.to_string(),
        })
    }

    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &std::path::Path) -> Result<Allowlist, String> {
        let source = path.display().to_string();
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text, &source),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("cannot read {source}: {e}")),
        }
    }

    /// Partition findings into (kept, suppressed-count) and append the
    /// allowlist's own meta findings: entries missing a justification
    /// (which never suppress) and entries that matched nothing.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for finding in findings {
            let hit = self
                .entries
                .iter()
                .enumerate()
                .find(|(_, e)| !e.justification.trim().is_empty() && e.matches(&finding));
            match hit {
                Some((i, _)) => {
                    used[i] = true;
                    suppressed += 1;
                }
                None => kept.push(finding),
            }
        }
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.justification.trim().is_empty() {
                kept.push(Finding {
                    file: self.source.clone(),
                    line: entry.line,
                    col: 1,
                    lint: "invalid-suppression".into(),
                    message: format!(
                        "suppression for lint `{}` on `{}` has no justification; it \
                         suppresses nothing until one is written",
                        entry.lint, entry.path
                    ),
                    suggestion: "add `justification = \"…\"` explaining why this \
                                 violation is sound"
                        .into(),
                    ..Finding::default()
                });
            } else if !used[i] {
                kept.push(Finding {
                    file: self.source.clone(),
                    line: entry.line,
                    col: 1,
                    lint: "unused-suppression".into(),
                    message: format!(
                        "suppression for lint `{}` on `{}` matched no finding",
                        entry.lint, entry.path
                    ),
                    suggestion: "the violation it excused is gone — delete the entry".into(),
                    ..Finding::default()
                });
            }
        }
        (kept, suppressed)
    }
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_str => escaped = true,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a double-quoted TOML string with minimal escapes.
fn parse_string(raw: &str) -> Option<String> {
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &str, file: &str, excerpt: &str) -> Finding {
        Finding {
            file: file.into(),
            line: 1,
            col: 1,
            lint: lint.into(),
            excerpt: excerpt.into(),
            ..Finding::default()
        }
    }

    const GOOD: &str = r#"
# comment
[[suppress]]
lint = "nondeterministic-time"
path = "crates/scenario/src/runner.rs"
contains = "Instant::now"
justification = "wall time feeds the outcome, not the report"
"#;

    #[test]
    fn suppresses_matching_finding_and_counts() {
        let al = Allowlist::parse(GOOD, "analyze.toml").unwrap();
        let f = finding(
            "nondeterministic-time",
            "crates/scenario/src/runner.rs",
            "let started = Instant::now();",
        );
        let (kept, suppressed) = al.apply(vec![f]);
        assert_eq!(suppressed, 1);
        assert!(kept.is_empty(), "{kept:?}");
    }

    #[test]
    fn unused_entry_is_flagged() {
        let al = Allowlist::parse(GOOD, "analyze.toml").unwrap();
        let (kept, suppressed) = al.apply(vec![]);
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint, "unused-suppression");
        assert_eq!(kept[0].line, 3);
    }

    #[test]
    fn missing_justification_never_suppresses() {
        let text = "[[suppress]]\nlint = \"panic-surface\"\npath = \"a.rs\"\n";
        let al = Allowlist::parse(text, "analyze.toml").unwrap();
        let (kept, suppressed) = al.apply(vec![finding("panic-surface", "a.rs", "x.unwrap()")]);
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 2, "{kept:?}");
        assert!(kept.iter().any(|f| f.lint == "invalid-suppression"));
    }

    #[test]
    fn prefix_paths_and_contains_narrowing() {
        let text = "[[suppress]]\nlint = \"l\"\npath = \"crates/x/\"\ncontains = \"ok()\"\njustification = \"j\"\n";
        let al = Allowlist::parse(text, "t").unwrap();
        let (kept, s) = al.apply(vec![
            finding("l", "crates/x/src/a.rs", "ok()"),
            finding("l", "crates/x/src/a.rs", "nope()"),
            finding("l", "crates/y/src/a.rs", "ok()"),
        ]);
        assert_eq!(s, 1);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn via_scopes_to_the_witness_path() {
        use crate::findings::PathHop;
        let text = "[[suppress]]\nlint = \"panic-reachability\"\npath = \"crates/x/src/a.rs\"\n\
                    via = \"Dataset::materialize\"\njustification = \"bounded by header check\"\n";
        let al = Allowlist::parse(text, "t").unwrap();
        let mut through_dataset = finding("panic-reachability", "crates/x/src/a.rs", "b[0]");
        through_dataset.path = vec![PathHop {
            qual: "flextract_dataset::Dataset::materialize".into(),
            file: "crates/dataset/src/store.rs".into(),
            line: 221,
        }];
        let mut through_frame = through_dataset.clone();
        through_frame.path[0].qual = "flextract_frame::Frame::open".into();
        let pathless = finding("panic-reachability", "crates/x/src/a.rs", "b[0]");
        let (kept, s) = al.apply(vec![through_dataset, through_frame, pathless]);
        assert_eq!(s, 1, "{kept:?}");
        // The Frame-reached and pathless findings survive.
        assert_eq!(kept.len(), 2, "{kept:?}");
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = Allowlist::parse("[[suppress]]\nlint = bare\n", "t").unwrap_err();
        assert!(err.contains("t:2"), "{err}");
        let err = Allowlist::parse("lint = \"x\"\n", "t").unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }
}
