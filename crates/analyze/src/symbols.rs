//! Workspace symbol table: every parsed `fn` becomes a node with a
//! crate, module path, and optional `impl` type, plus the lookup
//! indices the call-graph resolver needs.
//!
//! Crates and modules are derived from file paths, mirroring cargo's
//! conventions for this workspace: `crates/<dir>/src/…` is crate
//! `flextract_<dir>`, the root `src/` is crate `flextract`, and
//! `src/bin/<name>.rs` is the binary crate `<name>_cli`. Inline
//! `mod` blocks extend the file-level module path.

use crate::parser::{CallSite, ParsedFile, SinkSite, Vis};
use std::collections::BTreeMap;

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Node id — index into [`SymbolTable::nodes`].
    pub id: usize,
    /// Owning crate (underscore form, e.g. `flextract_frame`).
    pub krate: String,
    /// Module path inside the crate (file-level plus inline `mod`s).
    pub module: Vec<String>,
    /// Function name.
    pub name: String,
    /// `impl`/`trait` type the fn is defined on, if any.
    pub self_ty: Option<String>,
    /// Visibility.
    pub vis: Vis,
    /// File path relative to the analysis root.
    pub file: String,
    /// 1-based definition line (the `fn` keyword).
    pub line: usize,
    /// 1-based definition column.
    pub col: usize,
    /// Call sites in this fn's body.
    pub calls: Vec<CallSite>,
    /// Sink sites in this fn's body.
    pub sinks: Vec<SinkSite>,
    /// Constructs/returns a `ScenarioReport`.
    pub report_ctor: bool,
    /// Body owns a `thread::scope` (scoped spawns join before return).
    pub owns_thread_scope: bool,
}

impl FnNode {
    /// Fully qualified display name,
    /// e.g. `flextract_frame::scan::Scan::run`.
    pub fn qual(&self) -> String {
        let mut parts = vec![self.krate.clone()];
        parts.extend(self.module.iter().cloned());
        if let Some(ty) = &self.self_ty {
            parts.push(ty.clone());
        }
        parts.push(self.name.clone());
        parts.join("::")
    }
}

/// The symbol table with resolver indices. All maps are `BTreeMap` so
/// iteration — and therefore resolution and findings — is
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Every fn node, in (file, source-order) order.
    pub nodes: Vec<FnNode>,
    /// Free fns by `(crate, module path joined with ::, name)`.
    pub free_by_scope: BTreeMap<(String, String, String), Vec<usize>>,
    /// Free fns by bare name.
    pub free_by_name: BTreeMap<String, Vec<usize>>,
    /// Assoc fns/methods by `(self type, name)`.
    pub typed: BTreeMap<(String, String), Vec<usize>>,
    /// Assoc fns/methods by bare name.
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Per file: (`use` aliases, glob-import paths).
    #[allow(clippy::type_complexity)]
    pub uses_by_file: BTreeMap<String, (Vec<(String, Vec<String>)>, Vec<Vec<String>>)>,
}

/// Crate label for a workspace-relative path.
pub fn crate_of(rel: &str) -> String {
    let comps: Vec<&str> = rel.split('/').collect();
    if comps.first() == Some(&"crates") && comps.len() > 1 {
        return format!("flextract_{}", comps[1].replace('-', "_"));
    }
    if comps.first() == Some(&"src") && comps.get(1) == Some(&"bin") {
        let stem = comps
            .last()
            .and_then(|n| n.strip_suffix(".rs"))
            .unwrap_or("bin");
        return format!("{}_cli", stem.replace('-', "_"));
    }
    "flextract".to_string()
}

/// File-level module path for a workspace-relative path.
pub fn module_of(rel: &str) -> Vec<String> {
    let comps: Vec<&str> = rel.split('/').collect();
    // Drop the crate prefix (`crates/<dir>/src` or `src` or `src/bin`).
    let tail: &[&str] = if comps.first() == Some(&"crates") && comps.len() > 3 {
        &comps[3..]
    } else if comps.first() == Some(&"src") && comps.get(1) == Some(&"bin") {
        return Vec::new();
    } else if comps.first() == Some(&"src") {
        &comps[1..]
    } else {
        &comps[..]
    };
    let mut out: Vec<String> = Vec::new();
    for (i, comp) in tail.iter().enumerate() {
        if i + 1 == tail.len() {
            // File name: lib.rs / main.rs / mod.rs add no segment.
            let stem = comp.strip_suffix(".rs").unwrap_or(comp);
            if stem != "lib" && stem != "main" && stem != "mod" {
                out.push(stem.to_string());
            }
        } else {
            out.push((*comp).to_string());
        }
    }
    out
}

/// Normalize a path segment for crate matching: `flextract_frame`,
/// `flextract-frame` and `frame` all name the same crate.
pub fn norm_crate_seg(seg: &str) -> String {
    let seg = seg.replace('-', "_");
    seg.strip_prefix("flextract_").unwrap_or(&seg).to_string()
}

/// Build the symbol table from parsed files
/// (`(rel path, parsed contents)` pairs).
pub fn build(files: &[(String, ParsedFile)]) -> SymbolTable {
    let mut table = SymbolTable::default();
    for (rel, parsed) in files {
        let krate = crate_of(rel);
        let file_module = module_of(rel);
        for item in &parsed.fns {
            let mut module = file_module.clone();
            module.extend(item.module.iter().cloned());
            let id = table.nodes.len();
            let node = FnNode {
                id,
                krate: krate.clone(),
                module,
                name: item.name.clone(),
                self_ty: item.self_ty.clone(),
                vis: item.vis,
                file: rel.clone(),
                line: item.line,
                col: item.col,
                calls: item.calls.clone(),
                sinks: item.sinks.clone(),
                report_ctor: item.report_ctor,
                owns_thread_scope: item.owns_thread_scope,
            };
            match &node.self_ty {
                Some(ty) => {
                    table
                        .typed
                        .entry((ty.clone(), node.name.clone()))
                        .or_default()
                        .push(id);
                    table
                        .methods_by_name
                        .entry(node.name.clone())
                        .or_default()
                        .push(id);
                }
                None => {
                    table
                        .free_by_scope
                        .entry((
                            node.krate.clone(),
                            node.module.join("::"),
                            node.name.clone(),
                        ))
                        .or_default()
                        .push(id);
                    table
                        .free_by_name
                        .entry(node.name.clone())
                        .or_default()
                        .push(id);
                }
            }
            table.nodes.push(node);
        }
        table
            .uses_by_file
            .insert(rel.clone(), (parsed.uses.clone(), parsed.globs.clone()));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{mask_code, mask_tests};
    use crate::parser::parse_file;

    fn parsed(src: &str) -> ParsedFile {
        parse_file(src, &mask_tests(&mask_code(src)))
    }

    #[test]
    fn crate_and_module_derivation() {
        assert_eq!(crate_of("crates/frame/src/fxm.rs"), "flextract_frame");
        assert_eq!(crate_of("src/lib.rs"), "flextract");
        assert_eq!(crate_of("src/bin/flextract.rs"), "flextract_cli");
        assert_eq!(module_of("crates/frame/src/lib.rs"), Vec::<String>::new());
        assert_eq!(module_of("crates/frame/src/fxm.rs"), ["fxm"]);
        assert_eq!(module_of("crates/x/src/a/mod.rs"), ["a"]);
        assert_eq!(module_of("crates/x/src/a/b.rs"), ["a", "b"]);
        assert_eq!(module_of("src/bin/flextract.rs"), Vec::<String>::new());
        assert_eq!(norm_crate_seg("flextract_frame"), "frame");
        assert_eq!(norm_crate_seg("frame"), "frame");
    }

    #[test]
    fn builds_indices_and_quals() {
        let files = vec![
            (
                "crates/frame/src/fxm.rs".to_string(),
                parsed(
                    "pub struct Frame;\nimpl Frame {\n    pub fn open() {}\n}\nfn helper() {}\n",
                ),
            ),
            (
                "crates/dataset/src/ingest.rs".to_string(),
                parsed("pub fn clean() {}\n"),
            ),
        ];
        let t = build(&files);
        assert_eq!(t.nodes.len(), 3);
        let open = &t.nodes[t.typed[&("Frame".into(), "open".into())][0]];
        assert_eq!(open.qual(), "flextract_frame::fxm::Frame::open");
        let clean = &t.nodes
            [t.free_by_scope[&("flextract_dataset".into(), "ingest".into(), "clean".into())][0]];
        assert_eq!(clean.qual(), "flextract_dataset::ingest::clean");
        assert!(t.free_by_name.contains_key("helper"));
        assert!(t.methods_by_name.contains_key("open"));
    }
}
