//! A lightweight Rust *item* parser on top of the masking lexer.
//!
//! [`parse_file`] runs over masked code (comments, strings and
//! `#[cfg(test)]` regions already blanked — see [`crate::lexer`]) and
//! extracts the structure the call-graph needs: `fn` items with their
//! body spans and enclosing `mod`/`impl`/`trait` context, `use`
//! declarations, call sites inside each body, and sink sites (the
//! nondeterminism / panic patterns the reachability lints trace to).
//!
//! This is **not** a Rust parser — it is a bracket-matching item
//! scanner tuned to the subset of Rust this workspace writes, honest
//! about its blind spots, each of which is deliberate and pinned by a
//! test in `tests/parser_semantics.rs`:
//!
//! * `macro_rules!` bodies are skipped entirely: a function defined by
//!   a macro is a documented non-node (the workspace defines none).
//! * `#[cfg(test)]` shadows never produce items or edges — the lexer
//!   blanks them before this module runs.
//! * Closure bodies belong to the function that wrote them: a call
//!   inside a closure is an edge from the enclosing `fn`, which
//!   over-approximates reachability (sound for "must not reach" lints).
//! * Nested `fn` items get their own node; their bodies are excluded
//!   from the enclosing function's call/sink attribution.

use crate::lexer::{self, is_ident};

/// Visibility of a parsed `fn` item, as far as entry-point detection
/// needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub fn` (including `pub(crate)` and friends — anything that
    /// makes the item callable from outside its module).
    Pub,
    /// No visibility qualifier.
    Private,
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the call's first path segment.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Path segments, e.g. `["fxm", "decode_stats"]` for
    /// `fxm::decode_stats(…)`, or `["helper"]` for `helper(…)` /
    /// `.helper(…)`.
    pub segments: Vec<String>,
    /// `true` for `receiver.method(…)` calls.
    pub method: bool,
    /// `true` when the receiver of a method call is literally `self`.
    pub recv_self: bool,
}

/// Which reachability lint a sink site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// `Instant::now` / `SystemTime::now`.
    WallClock,
    /// `HashMap` / `HashSet` (hash-ordered collections).
    HashOrder,
    /// Seedless RNG construction (`thread_rng`, `from_entropy`, …).
    SeedlessRng,
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!`.
    Panic,
    /// Direct slice/vec indexing `x[i]`.
    Indexing,
    /// Detached `thread::spawn` (never joined by a scope).
    DetachedSpawn,
    /// `.spawn(` method call (scoped spawns — legal only inside a
    /// function that owns the `thread::scope`).
    ScopedSpawn,
}

/// One sink occurrence inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkSite {
    /// Sink category.
    pub kind: SinkKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The offending source line, trimmed (from the *unmasked* file).
    pub excerpt: String,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (raw-identifier prefix `r#` stripped).
    pub name: String,
    /// Enclosing `impl`/`trait` type head (`Frame` for
    /// `impl Frame`, `Dataset` for `impl Ord for Dataset`), if any.
    pub self_ty: Option<String>,
    /// Inline `mod` path within the file (file-level module path is
    /// the symbol table's business).
    pub module: Vec<String>,
    /// Visibility.
    pub vis: Vis,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based column of the `fn` keyword.
    pub col: usize,
    /// Body span (byte offsets into the file, `{`..`}` inclusive);
    /// `None` for bodyless declarations (trait required methods).
    pub body: Option<(usize, usize)>,
    /// Calls made from this function's own body (nested fns excluded).
    pub calls: Vec<CallSite>,
    /// Sink sites in this function's own body.
    pub sinks: Vec<SinkSite>,
    /// Body constructs or returns a `ScenarioReport` — the function is
    /// a golden-feeding root for determinism tainting.
    pub report_ctor: bool,
    /// Body contains `thread::scope` — scoped spawns inside it are
    /// structurally joined before the function returns.
    pub owns_thread_scope: bool,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// `use` declarations: local alias → full path segments.
    pub uses: Vec<(String, Vec<String>)>,
    /// Glob imports (`use a::b::*`): the path segments before `*`.
    pub globs: Vec<Vec<String>>,
}

/// Keywords that can never head a call path.
const NON_PATH_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "break", "continue", "let", "else", "in",
    "as", "move", "ref", "mut", "pub", "fn", "impl", "use", "mod", "struct", "enum", "union",
    "trait", "where", "unsafe", "dyn", "box", "static", "const", "extern", "type", "await",
    "yield", "true", "false",
];

/// Parse one file. `code` must be the masked text (same byte length as
/// `src`); `src` is the original, used only for excerpts.
pub fn parse_file(src: &str, code: &str) -> ParsedFile {
    let mut p = Parser {
        b: code.as_bytes(),
        src,
        code,
        out: ParsedFile::default(),
        stack: Vec::new(),
    };
    p.run();
    let spans: Vec<Option<(usize, usize)>> = p.out.fns.iter().map(|f| f.body).collect();
    let calls = scan_calls(code);
    for c in calls {
        if let Some(i) = innermost(&spans, c.0) {
            let (line, col) = lexer::line_col(src, c.0);
            p.out.fns[i].calls.push(CallSite {
                line,
                col,
                segments: c.1,
                method: c.2,
                recv_self: c.3,
            });
        }
    }
    for (kind, offset) in scan_sinks(code) {
        if let Some(i) = innermost(&spans, offset) {
            let (line, col) = lexer::line_col(src, offset);
            p.out.fns[i].sinks.push(SinkSite {
                kind,
                line,
                col,
                excerpt: lexer::line_text(src, offset).to_string(),
            });
        }
    }
    for (i, f) in p.out.fns.iter_mut().enumerate() {
        let Some((s, e)) = spans[i] else { continue };
        let body = &code[s..e.min(code.len())];
        f.report_ctor = has_report_ctor(body);
        f.owns_thread_scope = find_word_seq(body, &["thread", "scope"]).is_some();
    }
    p.out
}

/// Innermost fn whose body span contains `offset`.
fn innermost(spans: &[Option<(usize, usize)>], offset: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (span length, idx)
    for (i, span) in spans.iter().enumerate() {
        let Some((s, e)) = span else { continue };
        if offset >= *s && offset < *e {
            let len = e - s;
            if best.is_none_or(|(blen, _)| len < blen) {
                best = Some((len, i));
            }
        }
    }
    best.map(|(_, i)| i)
}

/// Does a body construct or return a `ScenarioReport`? Matches the
/// identifier followed by `{` (struct literal / return-position body
/// brace) or `::` (associated construction) — a parameter of that type
/// (`r: ScenarioReport,`) does not count.
fn has_report_ctor(body: &str) -> bool {
    let b = body.as_bytes();
    let mut from = 0;
    while let Some(pos) = body[from..].find("ScenarioReport") {
        let s = from + pos;
        let e = s + "ScenarioReport".len();
        let boundary_ok = (s == 0 || !is_ident(b[s - 1])) && (e >= b.len() || !is_ident(b[e]));
        if boundary_ok {
            let mut j = e;
            while j < b.len() && (b[j] == b' ' || b[j] == b'\n') {
                j += 1;
            }
            if j < b.len() && (b[j] == b'{' || (b[j] == b':' && b.get(j + 1) == Some(&b':'))) {
                return true;
            }
        }
        from = e;
    }
    false
}

/// Find `words[0] :: words[1]` allowing whitespace around the `::`.
fn find_word_seq(code: &str, words: &[&str; 2]) -> Option<usize> {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(words[0]) {
        let s = from + pos;
        let e = s + words[0].len();
        from = e;
        if s > 0 && is_ident(b[s - 1]) {
            continue;
        }
        let mut j = e;
        while j < b.len() && (b[j] == b' ' || b[j] == b'\n') {
            j += 1;
        }
        if !code[j..].starts_with("::") {
            continue;
        }
        j += 2;
        while j < b.len() && (b[j] == b' ' || b[j] == b'\n') {
            j += 1;
        }
        if code[j..].starts_with(words[1]) && !is_ident(*b.get(j + words[1].len()).unwrap_or(&b' '))
        {
            return Some(s);
        }
    }
    None
}

/// Block context while scanning items.
#[derive(Debug, Clone)]
enum Ctx {
    Mod(String),
    Impl(String),
    Trait(String),
    Fn,
    Other,
}

struct Parser<'a> {
    b: &'a [u8],
    src: &'a str,
    code: &'a str,
    out: ParsedFile,
    stack: Vec<Ctx>,
}

impl Parser<'_> {
    fn run(&mut self) {
        let n = self.b.len();
        let mut i = 0;
        while i < n {
            let c = self.b[i];
            if c == b'{' {
                self.stack.push(Ctx::Other);
                i += 1;
                continue;
            }
            if c == b'}' {
                self.stack.pop();
                i += 1;
                continue;
            }
            if !is_ident(c) || c.is_ascii_digit() {
                i += 1;
                continue;
            }
            // Word start?  (`r#fn` must not read as the `fn` keyword:
            // its word starts at `r`, and `#`-preceded words are raw.)
            if i > 0 && (is_ident(self.b[i - 1]) || self.b[i - 1] == b'#') {
                i += 1;
                while i < n && is_ident(self.b[i]) {
                    i += 1;
                }
                continue;
            }
            let start = i;
            while i < n && is_ident(self.b[i]) {
                i += 1;
            }
            let word = &self.code[start..i];
            match word {
                "fn" => i = self.item_fn(start, i),
                "mod" => i = self.item_mod(i),
                "impl" => i = self.item_impl(i),
                "trait" => i = self.item_trait(i),
                "use" => i = self.item_use(i),
                "macro_rules" => i = self.skip_macro_rules(i),
                _ => {}
            }
        }
    }

    fn skip_ws(&self, mut i: usize) -> usize {
        while i < self.b.len() && (self.b[i] as char).is_whitespace() {
            i += 1;
        }
        i
    }

    fn read_word(&self, i: usize) -> (usize, usize) {
        let mut s = self.skip_ws(i);
        // Raw identifier prefix.
        if self.code[s..].starts_with("r#") {
            s += 2;
        }
        let mut e = s;
        while e < self.b.len() && is_ident(self.b[e]) {
            e += 1;
        }
        (s, e)
    }

    /// `fn` keyword seen at `kw_start..kw_end`. Returns resume offset.
    fn item_fn(&mut self, kw_start: usize, kw_end: usize) -> usize {
        let n = self.b.len();
        let (ns, ne) = self.read_word(kw_end);
        if ns == ne {
            // `fn(` — a function-pointer type, not an item.
            return kw_end;
        }
        let name = self.code[ns..ne].to_string();
        // Visibility: the nearest preceding word on the same logical
        // item head. Look back for `pub` within a short window that
        // contains no `;`, `{`, or `}` (so a previous item's `pub`
        // cannot leak in).
        let vis = self.leading_pub(kw_start);
        // Scan the signature to the body `{` or a terminating `;`,
        // balancing (), [], <> (with `->` arrows excluded).
        let mut i = ne;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut angle = 0i32;
        let mut body: Option<(usize, usize)> = None;
        while i < n {
            match self.b[i] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'[' => bracket += 1,
                b']' => bracket -= 1,
                b'<' if paren >= 0 => {
                    // `<` after an identifier, `:`, `,`, `<` or `(` is a
                    // generic opener; after a space it still is inside
                    // signatures (no less-than expressions live here).
                    angle += 1;
                }
                b'>' => {
                    if i > 0 && self.b[i - 1] == b'-' {
                        // `->` return arrow.
                    } else if angle > 0 {
                        angle -= 1;
                    }
                }
                b'{' if paren == 0 && bracket == 0 && angle <= 0 => {
                    let close = self.matching_brace(i);
                    body = Some((i, close));
                    break;
                }
                b';' if paren == 0 && bracket == 0 && angle <= 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let (line, col) = lexer::line_col(self.src, kw_start);
        let (self_ty, module) = self.context();
        self.out.fns.push(FnItem {
            name,
            self_ty,
            module,
            vis,
            line,
            col,
            body,
            calls: Vec::new(),
            sinks: Vec::new(),
            report_ctor: false,
            owns_thread_scope: false,
        });
        match body {
            // Resume *inside* the body so nested items are discovered;
            // push the Fn context for the brace we are stepping over.
            Some((open, _)) => {
                self.stack.push(Ctx::Fn);
                open + 1
            }
            None => i,
        }
    }

    /// Is the item headed by `pub` (scanning back over attributes and
    /// modifiers like `const` / `unsafe` / `extern "C"`)?
    fn leading_pub(&self, kw_start: usize) -> Vis {
        let window = &self.b[..kw_start];
        let mut i = window.len();
        let mut words_back = 0;
        while i > 0 && words_back < 6 {
            // Skip whitespace and a possible `(…)` visibility scope.
            while i > 0 && (window[i - 1] as char).is_whitespace() {
                i -= 1;
            }
            if i == 0 {
                break;
            }
            match window[i - 1] {
                b';' | b'{' | b'}' => break,
                b')' => {
                    // `pub(crate)` scope — skip to the matching `(`.
                    let mut depth = 1;
                    i -= 1;
                    while i > 0 && depth > 0 {
                        i -= 1;
                        match window[i] {
                            b')' => depth += 1,
                            b'(' => depth -= 1,
                            _ => {}
                        }
                    }
                    continue;
                }
                b']' => break, // attribute — item head ends here
                _ => {}
            }
            if !is_ident(window[i - 1]) {
                break;
            }
            let mut s = i;
            while s > 0 && is_ident(window[s - 1]) {
                s -= 1;
            }
            let word = &self.code[s..i];
            match word {
                "pub" => return Vis::Pub,
                "const" | "unsafe" | "extern" | "async" | "default" => {
                    i = s;
                    words_back += 1;
                }
                _ => break,
            }
        }
        Vis::Private
    }

    fn item_mod(&mut self, kw_end: usize) -> usize {
        let (ns, ne) = self.read_word(kw_end);
        if ns == ne {
            return kw_end;
        }
        let name = self.code[ns..ne].to_string();
        let mut i = self.skip_ws(ne);
        if i < self.b.len() && self.b[i] == b'{' {
            self.stack.push(Ctx::Mod(name));
            i += 1;
        }
        // `mod name;` — out-of-line module, nothing to push.
        i
    }

    fn item_impl(&mut self, kw_end: usize) -> usize {
        let n = self.b.len();
        let mut i = self.skip_ws(kw_end);
        // Generics directly after `impl`.
        if i < n && self.b[i] == b'<' {
            i = self.skip_angles(i);
        }
        // Read the header up to `{`, remembering the last identifier
        // path before `{`/`where`, preferring the path after `for`.
        let mut last_ident = String::new();
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while i < n {
            let c = self.b[i];
            if c == b'{' {
                let ty = after_for.unwrap_or(last_ident);
                self.stack.push(Ctx::Impl(ty));
                return i + 1;
            }
            if c == b';' {
                return i + 1;
            }
            if c == b'<' {
                i = self.skip_angles(i);
                continue;
            }
            if is_ident(c) && !c.is_ascii_digit() && (i == 0 || !is_ident(self.b[i - 1])) {
                let (s, e) = self.read_word(i);
                let word = self.code[s..e].to_string();
                match word.as_str() {
                    "for" => saw_for = true,
                    "where" => {
                        // Type head is already read; scan on to `{`.
                        let mut j = e;
                        while j < n && self.b[j] != b'{' {
                            if self.b[j] == b'<' {
                                j = self.skip_angles(j);
                                continue;
                            }
                            j += 1;
                        }
                        i = j;
                        continue;
                    }
                    _ => {
                        if saw_for {
                            after_for = Some(word.clone());
                        }
                        last_ident = word;
                    }
                }
                i = e;
                continue;
            }
            i += 1;
        }
        i
    }

    fn item_trait(&mut self, kw_end: usize) -> usize {
        let (ns, ne) = self.read_word(kw_end);
        if ns == ne {
            return kw_end;
        }
        let name = self.code[ns..ne].to_string();
        let mut i = ne;
        let n = self.b.len();
        while i < n {
            match self.b[i] {
                b'{' => {
                    self.stack.push(Ctx::Trait(name));
                    return i + 1;
                }
                b';' => return i + 1,
                b'<' => {
                    i = self.skip_angles(i);
                }
                _ => i += 1,
            }
        }
        i
    }

    fn item_use(&mut self, kw_end: usize) -> usize {
        // Collect the whole `use …;` text and expand group imports.
        let n = self.b.len();
        let mut end = kw_end;
        let mut depth = 0i32;
        while end < n {
            match self.b[end] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                b';' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let text = &self.code[kw_end..end.min(n)];
        expand_use(text, &mut Vec::new(), &mut self.out);
        end.min(n) + 1
    }

    fn skip_macro_rules(&mut self, kw_end: usize) -> usize {
        let n = self.b.len();
        let mut i = kw_end;
        while i < n && self.b[i] != b'{' {
            i += 1;
        }
        if i == n {
            return n;
        }
        self.matching_brace(i)
    }

    fn matching_brace(&self, open: usize) -> usize {
        let n = self.b.len();
        let mut depth = 0usize;
        let mut i = open;
        while i < n {
            match self.b[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        n
    }

    fn skip_angles(&self, open: usize) -> usize {
        let n = self.b.len();
        let mut depth = 0i32;
        let mut i = open;
        while i < n {
            match self.b[i] {
                b'<' => depth += 1,
                b'>' => {
                    if i > 0 && self.b[i - 1] == b'-' {
                        // `->` inside e.g. `Fn(u8) -> u8` bounds.
                    } else {
                        depth -= 1;
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        n
    }

    /// Current (impl/trait type, inline module path) from the stack.
    fn context(&self) -> (Option<String>, Vec<String>) {
        let mut ty = None;
        let mut module = Vec::new();
        for ctx in &self.stack {
            match ctx {
                Ctx::Mod(m) => module.push(m.clone()),
                Ctx::Impl(t) | Ctx::Trait(t) => ty = Some(t.clone()),
                _ => {}
            }
        }
        (ty, module)
    }
}

/// Expand a `use` tree (`a::b::{c, d as e, f::*}`) into aliases.
fn expand_use(text: &str, prefix: &mut Vec<String>, out: &mut ParsedFile) {
    let text = text.trim();
    let b = text.as_bytes();
    let mut i = 0;
    let n = b.len();
    let base_len = prefix.len();
    let mut last_alias: Option<String> = None;
    while i < n {
        let c = b[i];
        if is_ident(c) && !c.is_ascii_digit() && (i == 0 || !is_ident(b[i - 1])) {
            let mut s = i;
            if text[i..].starts_with("r#") {
                s += 2;
            }
            let mut e = s;
            while e < n && is_ident(b[e]) {
                e += 1;
            }
            let word = text[s..e].to_string();
            if word == "as" {
                // Next word renames the last segment.
                let mut s2 = e;
                while s2 < n && (b[s2] as char).is_whitespace() {
                    s2 += 1;
                }
                if text[s2..].starts_with("r#") {
                    s2 += 2;
                }
                let mut e2 = s2;
                while e2 < n && is_ident(b[e2]) {
                    e2 += 1;
                }
                last_alias = Some(text[s2..e2].to_string());
                i = e2;
                continue;
            }
            prefix.push(word);
            i = e;
            continue;
        }
        match c {
            b'{' => {
                // Group: recurse per comma-separated element.
                let close = matching(b, i, b'{', b'}');
                let inner = &text[i + 1..close.saturating_sub(1).max(i + 1)];
                for part in split_top_level(inner) {
                    expand_use(part, prefix, out);
                }
                prefix.truncate(base_len);
                return;
            }
            b'*' => {
                out.globs.push(prefix.clone());
                prefix.truncate(base_len);
                return;
            }
            b',' | b';' => break,
            _ => i += 1,
        }
    }
    // Plain path `a::b::c [as d]`.
    if prefix.len() > base_len {
        let alias = last_alias.unwrap_or_else(|| prefix.last().cloned().unwrap_or_default());
        // `use a::b::self;` names the module b itself.
        let mut path = prefix.clone();
        if path.last().map(String::as_str) == Some("self") {
            path.pop();
        }
        let alias = if alias == "self" {
            path.last().cloned().unwrap_or(alias)
        } else {
            alias
        };
        if !alias.is_empty() && !path.is_empty() {
            out.uses.push((alias, path));
        }
    }
    prefix.truncate(base_len);
}

fn matching(b: &[u8], open: usize, oc: u8, cc: u8) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        if b[i] == oc {
            depth += 1;
        } else if b[i] == cc {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    b.len()
}

/// Split `a, b::{c, d}, e` on top-level commas.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Scan masked code for call expressions:
/// `(offset, segments, is_method, recv_is_self)`.
fn scan_calls(code: &str) -> Vec<(usize, Vec<String>, bool, bool)> {
    let b = code.as_bytes();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let c = b[i];
        if !is_ident(c) || c.is_ascii_digit() || (i > 0 && is_ident(b[i - 1])) {
            i += 1;
            continue;
        }
        // Raw-identifier head: the `r` of `r#name` starts the word but
        // the name begins after `#`.
        let path_start = i;
        let mut j = i;
        let raw_head = code[j..].starts_with("r#");
        if raw_head {
            j += 2;
        }
        let seg_start = j;
        while j < n && is_ident(b[j]) {
            j += 1;
        }
        let first_word = &code[seg_start..j];
        i = j; // resume after the first word no matter what
        if !raw_head && NON_PATH_KEYWORDS.contains(&first_word) {
            continue;
        }
        // A name directly after a declaration keyword is a definition
        // (`fn nested(`, `struct Point(`), not a call.
        if preceded_by_decl_keyword(code, path_start) {
            continue;
        }
        // Method call? The byte before the path (skipping back over
        // whitespace) is `.` — but not `..` (range) and not a float.
        let mut back = path_start;
        while back > 0 && (b[back - 1] as char).is_whitespace() {
            back -= 1;
        }
        let method = back > 0 && b[back - 1] == b'.' && !(back > 1 && b[back - 2] == b'.');
        let recv_self = method
            && back >= 5
            && &code[back - 5..back - 1] == "self"
            && (back < 6 || !is_ident(b[back - 6]));
        let mut segments = vec![first_word.to_string()];
        loop {
            let mut k = j;
            while k < n && (b[k] as char).is_whitespace() {
                k += 1;
            }
            if k < n && b[k] == b'(' {
                // A call — record it (methods never have multi-segment
                // paths in practice; `a.b::c(` is not valid Rust).
                out.push((path_start, segments, method, recv_self));
                break;
            }
            if k < n && b[k] == b'!' {
                break; // macro invocation, not a call edge
            }
            if code[k..].starts_with("::") {
                let mut m = k + 2;
                while m < n && (b[m] as char).is_whitespace() {
                    m += 1;
                }
                if m < n && b[m] == b'<' {
                    // Turbofish / qualified generics: skip and look
                    // for a further `::seg` or `(`.
                    let after = skip_angles_at(b, m);
                    let mut p = after;
                    while p < n && (b[p] as char).is_whitespace() {
                        p += 1;
                    }
                    if code[p..].starts_with("::") {
                        // `::<T>::seg` — read the segment after the
                        // turbofish and keep walking the path.
                        let mut q = p + 2;
                        while q < n && (b[q] as char).is_whitespace() {
                            q += 1;
                        }
                        if q < n && is_ident(b[q]) && !b[q].is_ascii_digit() {
                            let mut s2 = q;
                            if code[q..].starts_with("r#") {
                                s2 = q + 2;
                            }
                            let mut e2 = s2;
                            while e2 < n && is_ident(b[e2]) {
                                e2 += 1;
                            }
                            segments.push(code[s2..e2].to_string());
                            j = e2;
                            continue;
                        }
                        break;
                    }
                    if p < n && b[p] == b'(' {
                        out.push((path_start, segments, method, recv_self));
                    }
                    break;
                }
                if m < n && is_ident(b[m]) && !b[m].is_ascii_digit() {
                    let mut s2 = m;
                    if code[m..].starts_with("r#") {
                        s2 = m + 2;
                    }
                    let mut e2 = s2;
                    while e2 < n && is_ident(b[e2]) {
                        e2 += 1;
                    }
                    let word = &code[s2..e2];
                    if NON_PATH_KEYWORDS.contains(&word) {
                        break;
                    }
                    segments.push(word.to_string());
                    j = e2;
                    continue;
                }
                break;
            }
            break;
        }
    }
    out
}

/// Is the word starting at `at` directly preceded by a declaration
/// keyword (so it names an item, not a call)?
fn preceded_by_decl_keyword(code: &str, at: usize) -> bool {
    const DECL: &[&str] = &["fn", "struct", "enum", "union", "trait", "mod", "macro"];
    let b = code.as_bytes();
    let mut e = at;
    while e > 0 && (b[e - 1] as char).is_whitespace() {
        e -= 1;
    }
    if e == 0 || !is_ident(b[e - 1]) {
        return false;
    }
    let mut s = e;
    while s > 0 && is_ident(b[s - 1]) {
        s -= 1;
    }
    if s > 0 && b[s - 1] == b'#' {
        return false; // `r#fn name` is not the keyword
    }
    DECL.contains(&&code[s..e])
}

fn skip_angles_at(b: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'<' => depth += 1,
            b'>' => {
                if i > 0 && b[i - 1] == b'-' {
                } else {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Sink patterns per kind, scanned over the whole masked file.
fn scan_sinks(code: &str) -> Vec<(SinkKind, usize)> {
    use crate::lints::{find_matches, Pat};
    let mut out = Vec::new();
    let substr_sinks: &[(SinkKind, &str)] = &[
        (SinkKind::WallClock, "SystemTime::now"),
        (SinkKind::WallClock, "Instant::now"),
        (SinkKind::HashOrder, "HashMap"),
        (SinkKind::HashOrder, "HashSet"),
        (SinkKind::SeedlessRng, "from_entropy"),
        (SinkKind::SeedlessRng, "thread_rng"),
        (SinkKind::SeedlessRng, "rand::rng()"),
        (SinkKind::SeedlessRng, "rand::random()"),
        (SinkKind::SeedlessRng, "entropy_seed"),
        (SinkKind::Panic, ".unwrap()"),
        (SinkKind::Panic, ".expect("),
        (SinkKind::Panic, "panic!"),
        (SinkKind::Panic, "unreachable!"),
        (SinkKind::Panic, "todo!"),
        (SinkKind::Panic, "unimplemented!"),
        (SinkKind::DetachedSpawn, "thread::spawn"),
        (SinkKind::ScopedSpawn, ".spawn("),
    ];
    for &(kind, pat) in substr_sinks {
        for offset in find_matches(code, Pat::Substr(pat)) {
            out.push((kind, offset));
        }
    }
    for offset in find_matches(code, Pat::Index) {
        out.push((SinkKind::Indexing, offset));
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{mask_code, mask_tests};

    fn parse(src: &str) -> ParsedFile {
        parse_file(src, &mask_tests(&mask_code(src)))
    }

    #[test]
    fn extracts_fns_with_impl_and_mod_context() {
        let src = "pub struct Frame;\n\
                   impl Frame {\n    pub fn open(path: &str) -> Frame { helper(path) }\n}\n\
                   mod inner {\n    fn helper(p: &str) {}\n}\n\
                   fn free() {}\n";
        let p = parse(src);
        let names: Vec<(&str, Option<&str>, &[String])> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref(), f.module.as_slice()))
            .collect();
        assert_eq!(names.len(), 3, "{names:?}");
        assert_eq!(names[0].0, "open");
        assert_eq!(names[0].1, Some("Frame"));
        assert_eq!(names[1].0, "helper");
        assert_eq!(names[1].2, &["inner".to_string()][..]);
        assert_eq!(names[2], ("free", None, &[][..]));
        assert_eq!(p.fns[0].vis, Vis::Pub);
        assert_eq!(p.fns[1].vis, Vis::Private);
    }

    #[test]
    fn trait_impl_takes_the_type_after_for() {
        let src = "impl std::fmt::Display for Dataset {\n    fn fmt(&self) { inner() }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Dataset"));
        assert_eq!(p.fns[0].vis, Vis::Private, "trait-impl methods are not pub");
    }

    #[test]
    fn calls_are_attributed_to_the_innermost_fn() {
        let src = "fn outer() {\n    a();\n    fn nested() { b(); }\n    c();\n}\n";
        let p = parse(src);
        let outer = &p.fns[0];
        let nested = &p.fns[1];
        let oc: Vec<&str> = outer.calls.iter().map(|c| c.segments[0].as_str()).collect();
        let nc: Vec<&str> = nested
            .calls
            .iter()
            .map(|c| c.segments[0].as_str())
            .collect();
        assert_eq!(oc, ["a", "c"], "{oc:?}");
        assert_eq!(nc, ["b"]);
    }

    #[test]
    fn paths_methods_and_turbofish() {
        let src = "fn f(x: &X) {\n    fxm::decode_stats(x);\n    x.materialize();\n    \
                   self.step();\n    Vec::<u8>::with_capacity(4);\n    \
                   iter.collect::<Vec<_>>();\n    Frame::open(p);\n}\n";
        let p = parse(src);
        let calls: Vec<(Vec<String>, bool, bool)> = p.fns[0]
            .calls
            .iter()
            .map(|c| (c.segments.clone(), c.method, c.recv_self))
            .collect();
        assert!(calls.contains(&(vec!["fxm".into(), "decode_stats".into()], false, false)));
        assert!(calls.contains(&(vec!["materialize".into()], true, false)));
        assert!(calls.contains(&(vec!["step".into()], true, true)));
        assert!(calls.contains(&(vec!["Vec".into(), "with_capacity".into()], false, false)));
        assert!(calls.contains(&(vec!["collect".into()], true, false)));
        assert!(calls.contains(&(vec!["Frame".into(), "open".into()], false, false)));
    }

    #[test]
    fn sinks_attributed_with_positions() {
        let src = "fn f(b: &[u8]) -> u8 {\n    let x = b[0];\n    x\n}\n\
                   fn g(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let p = parse(src);
        assert_eq!(p.fns[0].sinks.len(), 1);
        assert_eq!(p.fns[0].sinks[0].kind, SinkKind::Indexing);
        assert_eq!(p.fns[0].sinks[0].line, 2);
        assert_eq!(p.fns[1].sinks[0].kind, SinkKind::Panic);
    }

    #[test]
    fn use_trees_expand_with_renames_and_globs() {
        let src = "use a::b::{c, d as e, f::*};\nuse x::Y;\nuse m::n::self;\n";
        let p = parse(src);
        assert!(p
            .uses
            .contains(&("c".into(), vec!["a".into(), "b".into(), "c".into()])));
        assert!(p
            .uses
            .contains(&("e".into(), vec!["a".into(), "b".into(), "d".into()])));
        assert!(p.uses.contains(&("Y".into(), vec!["x".into(), "Y".into()])));
        assert!(p.uses.contains(&("n".into(), vec!["m".into(), "n".into()])));
        assert!(p.globs.contains(&vec!["a".into(), "b".into(), "f".into()]));
    }

    #[test]
    fn report_ctor_and_thread_scope_detection() {
        let src = "fn build() -> ScenarioReport {\n    ScenarioReport { x: 1 }\n}\n\
                   fn takes(r: ScenarioReport) {}\n\
                   fn fan() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        let p = parse(src);
        assert!(p.fns[0].report_ctor);
        assert!(!p.fns[1].report_ctor, "a parameter is not a constructor");
        assert!(p.fns[2].owns_thread_scope);
        assert!(p.fns[2]
            .sinks
            .iter()
            .any(|s| s.kind == SinkKind::ScopedSpawn));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn f(cb: fn(u8) -> u8) -> u8 { cb(1) }\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "f");
    }
}
