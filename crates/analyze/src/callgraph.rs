//! Workspace-internal call-edge resolution.
//!
//! Only workspace functions are nodes, so calls into `std` or the
//! vendored stand-ins simply resolve to nothing — the graph is the
//! *internal* call structure the reachability lints walk. Resolution
//! is name-based and deliberately asymmetric in its precision:
//!
//! * **Free calls** (`helper(…)`, `fxm::decode(…)`) resolve precisely:
//!   same-module first, then `use`-import aliases, then glob imports,
//!   then path-qualified candidates whose crate/module segments are
//!   compatible with the written path. A bare name that matches none
//!   of these is a std/closure call and produces no edge.
//! * **Type-qualified calls** (`Frame::open(…)`, `Self::step(…)`)
//!   resolve through the `(type, name)` index.
//! * **Bare method calls** (`x.materialize(…)`) carry no receiver
//!   type, so they over-approximate: an edge to *every* workspace
//!   method of that name (unless the receiver is literally `self` and
//!   the current `impl` defines the method — then exactly that one).
//!   Over-approximation is the sound direction for "must not reach"
//!   lints: it can create a false witness, never hide a true one.

use crate::symbols::{norm_crate_seg, SymbolTable};
use std::collections::BTreeSet;

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee node id.
    pub callee: usize,
    /// 1-based call-site line in the caller's file.
    pub line: usize,
    /// 1-based call-site column.
    pub col: usize,
}

/// Adjacency list indexed by caller node id.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// `edges[caller]` — sorted, deduplicated by callee.
    pub edges: Vec<Vec<Edge>>,
}

/// Path qualifiers that scope but never *name* a workspace crate or
/// module (`crate::x::f` can only mean the caller's own crate).
const TRANSPARENT_SEGS: &[&str] = &["crate", "super", "self"];

/// External roots: a path starting here can never be a workspace fn.
const EXTERNAL_ROOTS: &[&str] = &["std", "core", "alloc"];

/// Method names std defines on ubiquitous types (str, slices, Option,
/// Result, iterators, maps, floats). A bare `receiver.parse(…)` is
/// overwhelmingly a std call, and resolving it to every workspace
/// method of the same name floods the graph with fabricated
/// cross-crate edges — so the *name-only fallback* skips these.
/// Precise resolutions are unaffected: `self.parse(…)` inside the
/// defining impl and `Allowlist::parse(…)` still produce edges. The
/// trade-off (a genuine workspace `.len(…)` call on a non-self
/// receiver goes unseen) is documented in the README's lint catalogue.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "display",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "extend",
    "extension",
    "file_name",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fold",
    "fract",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "is_dir",
    "is_empty",
    "is_file",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_err",
    "is_sign_negative",
    "is_sign_positive",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "lock",
    "map",
    "map_err",
    "map_or",
    "map_while",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "ne",
    "next",
    "next_back",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "peekable",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "range",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv",
    "remove",
    "repeat",
    "replace",
    "replacen",
    "resize",
    "retain",
    "rev",
    "reverse",
    "round",
    "rsplit",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "seek",
    "send",
    "set_extension",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_at",
    "split_first",
    "split_last",
    "split_off",
    "split_whitespace",
    "splitn",
    "sqrt",
    "starts_with",
    "step_by",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "take",
    "take_while",
    "then",
    "then_some",
    "to_lowercase",
    "to_owned",
    "to_string",
    "to_uppercase",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "unzip",
    "values",
    "values_mut",
    "wait",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "write",
    "write_all",
    "write_fmt",
    "zip",
];

/// Build the call graph over a symbol table.
pub fn build(table: &SymbolTable) -> CallGraph {
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); table.nodes.len()];
    for node in &table.nodes {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for call in &node.calls {
            for callee in resolve(table, node.id, call) {
                if callee != node.id && seen.insert(callee) {
                    edges[node.id].push(Edge {
                        callee,
                        line: call.line,
                        col: call.col,
                    });
                }
            }
        }
        edges[node.id].sort_by_key(|e| (e.callee, e.line, e.col));
    }
    CallGraph { edges }
}

/// Resolve one call site to candidate callee node ids.
fn resolve(table: &SymbolTable, caller: usize, call: &crate::parser::CallSite) -> Vec<usize> {
    let node = &table.nodes[caller];
    let Some(name) = call.segments.last() else {
        return Vec::new();
    };
    if call.method {
        if call.recv_self {
            if let Some(ty) = &node.self_ty {
                if let Some(ids) = table.typed.get(&(ty.clone(), name.clone())) {
                    return ids.clone();
                }
            }
        }
        if STD_METHODS.contains(&name.as_str()) {
            return Vec::new();
        }
        return table.methods_by_name.get(name).cloned().unwrap_or_default();
    }
    if call.segments.len() == 1 {
        // Bare free call: same module wins.
        let scope = (node.krate.clone(), node.module.join("::"), name.clone());
        if let Some(ids) = table.free_by_scope.get(&scope) {
            return ids.clone();
        }
        if let Some((uses, globs)) = table.uses_by_file.get(&node.file) {
            for (alias, path) in uses {
                if alias == name {
                    return resolve_qualified(table, node, path);
                }
            }
            for glob in globs {
                let mut path = glob.clone();
                path.push(name.clone());
                let ids = resolve_qualified(table, node, &path);
                if !ids.is_empty() {
                    return ids;
                }
            }
        }
        return Vec::new();
    }
    // Qualified path: expand a leading use-alias, then resolve.
    let mut segments = call.segments.clone();
    if let Some((uses, _)) = table.uses_by_file.get(&node.file) {
        if let Some((_, path)) = uses.iter().find(|(alias, _)| alias == &segments[0]) {
            let mut expanded = path.clone();
            expanded.extend(segments[1..].iter().cloned());
            segments = expanded;
        }
    }
    resolve_qualified(table, node, &segments)
}

/// Resolve a full path (`[…qualifiers, name]`) from `node`'s position.
fn resolve_qualified(
    table: &SymbolTable,
    node: &crate::symbols::FnNode,
    segments: &[String],
) -> Vec<usize> {
    let Some((name, quals)) = segments.split_last() else {
        return Vec::new();
    };
    if quals.is_empty() {
        return table.free_by_name.get(name).cloned().unwrap_or_default();
    }
    if quals
        .first()
        .is_some_and(|q| EXTERNAL_ROOTS.contains(&q.as_str()))
    {
        return Vec::new();
    }
    let last = quals.last().expect("non-empty quals");
    // `Self::name` and `Type::name`.
    if last == "Self" {
        if let Some(ty) = &node.self_ty {
            return table
                .typed
                .get(&(ty.clone(), name.clone()))
                .cloned()
                .unwrap_or_default();
        }
        return Vec::new();
    }
    if let Some(ids) = table.typed.get(&(last.clone(), name.clone())) {
        return ids.clone();
    }
    // Module-qualified free fn: every remaining qualifier must be
    // compatible with the candidate (its crate, or one of its module
    // segments).
    let Some(candidates) = table.free_by_name.get(name) else {
        return Vec::new();
    };
    candidates
        .iter()
        .copied()
        .filter(|&id| {
            let cand = &table.nodes[id];
            quals.iter().all(|q| {
                if TRANSPARENT_SEGS.contains(&q.as_str()) {
                    return true;
                }
                let qn = norm_crate_seg(q);
                norm_crate_seg(&cand.krate) == qn || cand.module.iter().any(|m| m == q)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{mask_code, mask_tests};
    use crate::parser::parse_file;
    use crate::symbols;

    fn graph(files: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let parsed: Vec<(String, crate::parser::ParsedFile)> = files
            .iter()
            .map(|(rel, src)| {
                (
                    rel.to_string(),
                    parse_file(src, &mask_tests(&mask_code(src))),
                )
            })
            .collect();
        let table = symbols::build(&parsed);
        let g = build(&table);
        (table, g)
    }

    fn edge_names(table: &SymbolTable, g: &CallGraph, caller_qual: &str) -> Vec<String> {
        let caller = table
            .nodes
            .iter()
            .find(|n| n.qual() == caller_qual)
            .unwrap_or_else(|| panic!("no node {caller_qual}"));
        g.edges[caller.id]
            .iter()
            .map(|e| table.nodes[e.callee].qual())
            .collect()
    }

    #[test]
    fn same_module_and_use_import_resolution() {
        let (t, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "use flextract_b::deep::helper;\n\
                 pub fn top() { local(); helper(); }\nfn local() {}\n",
            ),
            ("crates/b/src/deep.rs", "pub fn helper() {}\n"),
        ]);
        let names = edge_names(&t, &g, "flextract_a::top");
        assert!(
            names.contains(&"flextract_a::local".to_string()),
            "{names:?}"
        );
        assert!(
            names.contains(&"flextract_b::deep::helper".to_string()),
            "{names:?}"
        );
    }

    #[test]
    fn qualified_paths_filter_by_crate_and_module() {
        let (t, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "pub fn top() { flextract_b::deep::helper(); other::helper(); }\n",
            ),
            ("crates/b/src/deep.rs", "pub fn helper() {}\n"),
            ("crates/c/src/other.rs", "pub fn helper() {}\n"),
        ]);
        let names = edge_names(&t, &g, "flextract_a::top");
        assert_eq!(
            names,
            vec![
                "flextract_b::deep::helper".to_string(),
                "flextract_c::other::helper".to_string()
            ]
        );
    }

    #[test]
    fn typed_and_self_calls() {
        let (t, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub struct Frame;\nimpl Frame {\n\
             pub fn open() { Self::check(); }\n\
             fn check(&self) { self.step(); }\n\
             fn step(&self) {}\n}\n\
             pub fn free() { Frame::open(); }\n",
        )]);
        assert_eq!(
            edge_names(&t, &g, "flextract_a::Frame::open"),
            vec!["flextract_a::Frame::check"]
        );
        assert_eq!(
            edge_names(&t, &g, "flextract_a::Frame::check"),
            vec!["flextract_a::Frame::step"]
        );
        assert_eq!(
            edge_names(&t, &g, "flextract_a::free"),
            vec!["flextract_a::Frame::open"]
        );
    }

    #[test]
    fn bare_method_calls_over_approximate() {
        let (t, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "pub fn top(x: &X) { x.materialize(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct X;\nimpl X { pub fn materialize(&self) {} }\n",
            ),
        ]);
        assert_eq!(
            edge_names(&t, &g, "flextract_a::top"),
            vec!["flextract_b::X::materialize"]
        );
    }

    #[test]
    fn std_calls_and_unknown_names_produce_no_edges() {
        let (t, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn top() { std::mem::drop(1); nothing_here(); vec.sort(); }\n",
        )]);
        assert!(edge_names(&t, &g, "flextract_a::top").is_empty());
    }

    #[test]
    fn glob_imports_resolve() {
        let (t, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "use flextract_b::deep::*;\npub fn top() { helper(); }\n",
            ),
            ("crates/b/src/deep.rs", "pub fn helper() {}\n"),
        ]);
        assert_eq!(
            edge_names(&t, &g, "flextract_a::top"),
            vec!["flextract_b::deep::helper"]
        );
    }
}
