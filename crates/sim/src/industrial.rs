//! Industrial-consumer simulation — the paper's §6 research direction:
//! "Further research directions include flexibility extraction from
//! industrial consumers."
//!
//! Industrial load differs from households in structure, not kind: a
//! large shift-driven base load (production lines, HVAC, lighting)
//! plus a handful of **batch processes** (cold storage pre-cooling,
//! electrolysis runs, compressor banks) that are genuinely deferrable
//! within operating windows. The same extraction approaches apply
//! unchanged to the resulting series; this module provides the
//! simulated substrate and its ground truth.

use crate::activation::Activation;
use crate::randomness::{clamped_normal, normal, ou_step};
use flextract_series::TimeSeries;
use flextract_time::{CivilTime, Duration, Resolution, TimeRange, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Working-time structure of the plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShiftPattern {
    /// 06:00–18:00 on workdays, skeleton load otherwise.
    SingleShift,
    /// 06:00–22:00 on workdays.
    TwoShift,
    /// Around the clock, every day (process industry).
    Continuous,
}

impl ShiftPattern {
    /// Base-load multiplier at instant `t` (1.0 = full operation).
    pub fn load_factor(self, t: Timestamp) -> f64 {
        let weekend = t.day_of_week().is_weekend();
        let m = t.minute_of_day();
        let working = match self {
            ShiftPattern::SingleShift => !weekend && (360..1080).contains(&m),
            ShiftPattern::TwoShift => !weekend && (360..1320).contains(&m),
            ShiftPattern::Continuous => true,
        };
        if working {
            1.0
        } else {
            0.25 // skeleton crew / standby systems
        }
    }
}

/// One deferrable batch process of the plant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchProcess {
    /// Process name (appears in the ground-truth log).
    pub name: String,
    /// Power band while running (kW).
    pub power_kw: (f64, f64),
    /// Run length.
    pub duration: Duration,
    /// Operating window in which a run may start.
    pub window: (CivilTime, CivilTime),
    /// Mean runs per day.
    pub runs_per_day: f64,
    /// How far a run can be deferred past its natural start.
    pub max_delay: Duration,
}

/// Configuration of one simulated industrial site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndustrialConfig {
    /// Site identifier.
    pub id: u64,
    /// Shift structure.
    pub pattern: ShiftPattern,
    /// Full-operation base load (kW).
    pub base_load_kw: f64,
    /// The deferrable processes.
    pub processes: Vec<BatchProcess>,
    /// RNG seed.
    pub seed: u64,
}

impl IndustrialConfig {
    /// A representative mid-size plant: 120 kW two-shift base load
    /// with a cold-storage pre-cool and a compressed-air top-up as
    /// deferrable batches.
    pub fn medium_plant(id: u64) -> Self {
        IndustrialConfig {
            id,
            pattern: ShiftPattern::TwoShift,
            base_load_kw: 120.0,
            processes: vec![
                BatchProcess {
                    name: "Cold-storage pre-cool".into(),
                    power_kw: (40.0, 60.0),
                    duration: Duration::hours(2),
                    window: (
                        CivilTime::new(4, 0).expect("static"),
                        CivilTime::new(10, 0).expect("static"),
                    ),
                    runs_per_day: 1.0,
                    max_delay: Duration::hours(6),
                },
                BatchProcess {
                    name: "Compressed-air top-up".into(),
                    power_kw: (25.0, 35.0),
                    duration: Duration::hours(1),
                    window: (
                        CivilTime::new(11, 0).expect("static"),
                        CivilTime::new(20, 0).expect("static"),
                    ),
                    runs_per_day: 2.0,
                    max_delay: Duration::hours(3),
                },
            ],
            seed: id.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(11),
        }
    }
}

/// The result of simulating one industrial site.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedIndustrial {
    /// The configuration used.
    pub config: IndustrialConfig,
    /// Total site consumption at 15-min resolution (kWh/interval) —
    /// industrial metering is typically interval metering, not 1-min.
    pub series: TimeSeries,
    /// Ground-truth batch runs.
    pub activations: Vec<Activation>,
    /// Ground-truth deferrable consumption only.
    pub flexible_series: TimeSeries,
}

impl SimulatedIndustrial {
    /// Ground-truth flexible share of total energy.
    pub fn true_flexible_share(&self) -> f64 {
        let total = self.series.total_energy();
        if total <= 0.0 {
            0.0
        } else {
            self.flexible_series.total_energy() / total
        }
    }
}

/// Simulate an industrial site over `range` (widened to whole days).
pub fn simulate_industrial(config: &IndustrialConfig, range: TimeRange) -> SimulatedIndustrial {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let days = range.align_outward(Resolution::DAY);
    let res = Resolution::MIN_15;
    let hours = res.hours_f64();
    let mut series = TimeSeries::zeros_over(days, res).expect("aligned day range");
    let mut flexible = TimeSeries::zeros_over(days, res).expect("aligned day range");
    let mut log = Vec::new();

    // Shift-driven base load with slow OU wander and metering noise.
    let mut level = config.base_load_kw;
    for i in 0..series.len() {
        let t = series.timestamp_of(i);
        level = ou_step(
            &mut rng,
            level,
            config.base_load_kw,
            0.05,
            config.base_load_kw * 0.02,
        )
        .max(0.0);
        let kw = level * config.pattern.load_factor(t)
            + normal(&mut rng, 0.0, config.base_load_kw * 0.01);
        series.values_mut()[i] += kw.max(0.0) * hours;
    }

    // Batch processes.
    for day in days.split_days() {
        for proc in &config.processes {
            let runs = {
                // Industrial batches are scheduled, not Poisson: run
                // count is the integer part plus a Bernoulli remainder.
                let whole = proc.runs_per_day.floor() as usize;
                let frac = proc.runs_per_day.fract();
                whole + usize::from(rng.gen::<f64>() < frac)
            };
            for _ in 0..runs {
                let w_from = proc.window.0.minute_of_day() as i64;
                let mut w_to = proc.window.1.minute_of_day() as i64;
                if w_to <= w_from {
                    w_to += 24 * 60;
                }
                // Starts snap to the 15-min grid like real plant
                // schedules do.
                let minute = rng.gen_range(w_from..=w_to) / 15 * 15;
                let start = day.start() + Duration::minutes(minute);
                let intensity = clamped_normal(&mut rng, 0.5, 0.2, 0.0, 1.0);
                let kw = proc.power_kw.0 + (proc.power_kw.1 - proc.power_kw.0) * intensity;
                let intervals = (proc.duration.as_minutes() / res.minutes()).max(1);
                let run_series = TimeSeries::new(start, res, vec![kw * hours; intervals as usize])
                    .expect("grid-snapped starts are aligned");
                let placed = run_series.slice(days);
                if placed.is_empty() {
                    continue;
                }
                series
                    .add_overlapping(&placed)
                    .expect("site grids share the 15-min resolution");
                flexible
                    .add_overlapping(&placed)
                    .expect("site grids share the 15-min resolution");
                log.push(Activation {
                    appliance: proc.name.clone(),
                    start,
                    duration: proc.duration,
                    intensity,
                    energy_kwh: placed.total_energy(),
                    shiftable: true,
                    shifted_from: None,
                });
            }
        }
    }
    log.sort_by_key(|a| a.start);
    SimulatedIndustrial {
        config: config.clone(),
        series,
        activations: log,
        flexible_series: flexible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn week() -> TimeRange {
        TimeRange::starting_at("2013-03-18".parse().unwrap(), Duration::weeks(1)).unwrap()
    }

    #[test]
    fn deterministic_and_shaped() {
        let cfg = IndustrialConfig::medium_plant(1);
        let a = simulate_industrial(&cfg, week());
        let b = simulate_industrial(&cfg, week());
        assert_eq!(a.series, b.series);
        assert_eq!(a.series.resolution(), Resolution::MIN_15);
        assert_eq!(a.series.len(), 7 * 96);
        assert!(a.series.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn shift_pattern_shapes_the_load() {
        let cfg = IndustrialConfig::medium_plant(2);
        let sim = simulate_industrial(&cfg, week());
        // Tuesday 10:00 (working) vs Tuesday 02:00 (skeleton).
        let working = sim
            .series
            .value_at("2013-03-19 10:00".parse().unwrap())
            .unwrap();
        let night = sim
            .series
            .value_at("2013-03-19 02:00".parse().unwrap())
            .unwrap();
        assert!(
            working > night * 2.0,
            "working {working} should dwarf skeleton {night}"
        );
        // Weekend runs at skeleton load for a two-shift plant.
        let saturday = sim
            .series
            .value_at("2013-03-23 12:00".parse().unwrap())
            .unwrap();
        assert!(saturday < working * 0.6, "saturday {saturday} vs {working}");
    }

    #[test]
    fn continuous_plants_do_not_dip() {
        let cfg = IndustrialConfig {
            pattern: ShiftPattern::Continuous,
            processes: vec![],
            ..IndustrialConfig::medium_plant(3)
        };
        let sim = simulate_industrial(&cfg, week());
        let night = sim
            .series
            .value_at("2013-03-19 02:00".parse().unwrap())
            .unwrap();
        let noon = sim
            .series
            .value_at("2013-03-19 12:00".parse().unwrap())
            .unwrap();
        assert!((night / noon) > 0.7, "night {night} vs noon {noon}");
    }

    #[test]
    fn batch_runs_are_logged_inside_their_windows() {
        let cfg = IndustrialConfig::medium_plant(4);
        let sim = simulate_industrial(&cfg, week());
        assert!(!sim.activations.is_empty());
        for a in &sim.activations {
            assert!(a.shiftable);
            let proc = cfg
                .processes
                .iter()
                .find(|p| p.name == a.appliance)
                .expect("logged process exists");
            let m = a.start.minute_of_day() as i64;
            let from = proc.window.0.minute_of_day() as i64;
            let to = proc.window.1.minute_of_day() as i64;
            assert!(
                m >= from && m <= to,
                "{} started {} outside its window",
                a.appliance,
                a.start
            );
            assert!(a.start.is_aligned(Resolution::MIN_15));
        }
    }

    #[test]
    fn flexible_share_is_plausible_for_industry() {
        let cfg = IndustrialConfig::medium_plant(5);
        let sim = simulate_industrial(&cfg, week());
        let share = sim.true_flexible_share();
        // Batches against a 120 kW base: a few percent, like the
        // MIRACLE 0.1-6.5 % range.
        assert!(share > 0.005 && share < 0.2, "share {share}");
        assert!(
            (sim.flexible_series.total_energy()
                - sim.activations.iter().map(|a| a.energy_kwh).sum::<f64>())
            .abs()
                < 1e-6
        );
    }

    #[test]
    fn household_extractors_run_unchanged_on_industrial_series() {
        // The §6 point: the flex-offer machinery is consumer-agnostic.
        use flextract_series::peaks::{detect_peaks, PeakThreshold};
        let cfg = IndustrialConfig::medium_plant(6);
        let sim = simulate_industrial(&cfg, week());
        let (_, peaks) = detect_peaks(&sim.series, PeakThreshold::Mean).unwrap();
        assert!(!peaks.is_empty(), "industrial days have detectable peaks");
    }
}
