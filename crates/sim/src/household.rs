//! Household archetypes and configuration.
//!
//! The paper's related work laments the lack of generators that encode
//! "the typical electricity consumption of the two resident household or
//! a family living in a suburb" (§5). Archetypes provide exactly that
//! domain knowledge: which appliances a household owns, how large its
//! base load is, and how intensely it uses its appliances.

use crate::tariff::TariffResponse;
use flextract_appliance::Catalog;
use serde::{Deserialize, Serialize};

/// Coarse household type, determining appliance ownership and load
/// scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HouseholdArchetype {
    /// One resident, minimal appliance park, no EV.
    SingleResident,
    /// Two residents ("the two resident household" of §5).
    Couple,
    /// Family with children: full appliance park, high usage rates.
    FamilyWithChildren,
    /// Suburban household with an EV and electric heating.
    SuburbanWithEv,
}

impl HouseholdArchetype {
    /// All archetypes.
    pub const ALL: [HouseholdArchetype; 4] = [
        HouseholdArchetype::SingleResident,
        HouseholdArchetype::Couple,
        HouseholdArchetype::FamilyWithChildren,
        HouseholdArchetype::SuburbanWithEv,
    ];

    /// Names of the extended-catalog appliances this archetype owns.
    pub fn owned_appliances(self) -> &'static [&'static str] {
        match self {
            HouseholdArchetype::SingleResident => &[
                "Refrigerator A+",
                "Kettle",
                "Television & Electronics",
                "Lighting Circuit",
                "Washing Machine from Manufacturer Y",
            ],
            HouseholdArchetype::Couple => &[
                "Refrigerator A+",
                "Kettle",
                "Television & Electronics",
                "Lighting Circuit",
                "Electric Oven",
                "Washing Machine from Manufacturer Y",
                "Dishwasher from Manufacturer Z",
            ],
            HouseholdArchetype::FamilyWithChildren => &[
                "Refrigerator A+",
                "Kettle",
                "Television & Electronics",
                "Lighting Circuit",
                "Electric Oven",
                "Washing Machine from Manufacturer Y",
                "Dishwasher from Manufacturer Z",
                "Tumble Dryer",
                "Vacuum Cleaning Robot from Manufacturer X",
                "Water Heater",
            ],
            HouseholdArchetype::SuburbanWithEv => &[
                "Refrigerator A+",
                "Kettle",
                "Television & Electronics",
                "Lighting Circuit",
                "Electric Oven",
                "Washing Machine from Manufacturer Y",
                "Dishwasher from Manufacturer Z",
                "Tumble Dryer",
                "Vacuum Cleaning Robot from Manufacturer X",
                "Water Heater",
                "Heat Pump",
                "Small Electric Vehicle",
            ],
        }
    }

    /// Mean standby/base power in kW (routers, standby electronics,
    /// circulation pumps) on top of explicit appliances.
    pub fn base_load_kw(self) -> f64 {
        match self {
            HouseholdArchetype::SingleResident => 0.06,
            HouseholdArchetype::Couple => 0.09,
            HouseholdArchetype::FamilyWithChildren => 0.13,
            HouseholdArchetype::SuburbanWithEv => 0.16,
        }
    }

    /// Multiplier applied to every appliance's usage rate.
    pub fn activity_factor(self) -> f64 {
        match self {
            HouseholdArchetype::SingleResident => 0.6,
            HouseholdArchetype::Couple => 0.9,
            HouseholdArchetype::FamilyWithChildren => 1.3,
            HouseholdArchetype::SuburbanWithEv => 1.1,
        }
    }
}

impl std::fmt::Display for HouseholdArchetype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            HouseholdArchetype::SingleResident => "single resident",
            HouseholdArchetype::Couple => "couple",
            HouseholdArchetype::FamilyWithChildren => "family with children",
            HouseholdArchetype::SuburbanWithEv => "suburban with EV",
        };
        f.write_str(name)
    }
}

/// Full configuration of one simulated household.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HouseholdConfig {
    /// Stable identifier (used for fleet bookkeeping and seeding).
    pub id: u64,
    /// The household type.
    pub archetype: HouseholdArchetype,
    /// RNG seed; derive distinct seeds per household for fleets.
    pub seed: u64,
    /// Gaussian measurement-noise standard deviation, as a fraction of
    /// the base load.
    pub noise_level: f64,
    /// Optional tariff-response behaviour (enables §3.3 simulations).
    pub tariff_response: Option<TariffResponse>,
}

impl HouseholdConfig {
    /// A household with defaults: seed derived from `id`, 10 % noise,
    /// no tariff response.
    pub fn new(id: u64, archetype: HouseholdArchetype) -> Self {
        HouseholdConfig {
            id,
            archetype,
            seed: id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            noise_level: 0.1,
            tariff_response: None,
        }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach tariff-response behaviour.
    pub fn with_tariff_response(mut self, response: TariffResponse) -> Self {
        self.tariff_response = Some(response);
        self
    }

    /// Override the noise level.
    pub fn with_noise(mut self, noise_level: f64) -> Self {
        self.noise_level = noise_level.max(0.0);
        self
    }

    /// Resolve the owned appliance specs against a catalog; unknown
    /// names are skipped (callers pair archetypes with
    /// [`Catalog::extended`], where all names resolve).
    pub fn resolve_appliances<'c>(
        &self,
        catalog: &'c Catalog,
    ) -> Vec<&'c flextract_appliance::ApplianceSpec> {
        self.archetype
            .owned_appliances()
            .iter()
            .filter_map(|name| catalog.find_by_name(name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_archetype_resolves_fully_in_extended_catalog() {
        let catalog = Catalog::extended();
        for arch in HouseholdArchetype::ALL {
            let cfg = HouseholdConfig::new(1, arch);
            let specs = cfg.resolve_appliances(&catalog);
            assert_eq!(
                specs.len(),
                arch.owned_appliances().len(),
                "{arch}: some owned appliances missing from the extended catalog"
            );
        }
    }

    #[test]
    fn archetypes_scale_sensibly() {
        assert!(
            HouseholdArchetype::SingleResident.base_load_kw()
                < HouseholdArchetype::FamilyWithChildren.base_load_kw()
        );
        assert!(
            HouseholdArchetype::SingleResident.activity_factor()
                < HouseholdArchetype::FamilyWithChildren.activity_factor()
        );
        // Only the suburban archetype owns an EV.
        for arch in HouseholdArchetype::ALL {
            let has_ev = arch
                .owned_appliances()
                .iter()
                .any(|n| n.contains("Vehicle"));
            assert_eq!(has_ev, arch == HouseholdArchetype::SuburbanWithEv, "{arch}");
        }
    }

    #[test]
    fn config_defaults_and_builders() {
        let a = HouseholdConfig::new(1, HouseholdArchetype::Couple);
        let b = HouseholdConfig::new(2, HouseholdArchetype::Couple);
        assert_ne!(a.seed, b.seed, "distinct ids must derive distinct seeds");
        assert!(a.tariff_response.is_none());
        let c = a.clone().with_seed(99).with_noise(-0.5);
        assert_eq!(c.seed, 99);
        assert_eq!(c.noise_level, 0.0); // clamped
    }

    #[test]
    fn missing_names_are_skipped_not_fatal() {
        let empty = Catalog::new();
        let cfg = HouseholdConfig::new(1, HouseholdArchetype::SingleResident);
        assert!(cfg.resolve_appliances(&empty).is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            HouseholdArchetype::SuburbanWithEv.to_string(),
            "suburban with EV"
        );
    }
}
