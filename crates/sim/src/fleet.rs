//! Multi-household fleet simulation.
//!
//! MIRABEL aggregates flex-offers "from thousands consumers" (§6); the
//! evaluation experiments therefore need fleets, not single households.
//! Fleet simulation is embarrassingly parallel per household, so the
//! work is fanned out over `std::thread` scoped threads with results
//! collected behind a `parking_lot` mutex.

use crate::household::{HouseholdArchetype, HouseholdConfig};
use crate::randomness::weighted_index;
use crate::simulate::{simulate_household_with_catalog, SimulatedHousehold};
use crate::tariff::TariffResponse;
use flextract_appliance::Catalog;
use flextract_series::{resample, TimeSeries};
use flextract_time::{Resolution, TimeRange};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Why a [`FleetConfig`] cannot be materialised into households.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConfigError {
    /// `households` is zero.
    NoHouseholds,
    /// `archetype_mix` is empty, so no archetype can be sampled.
    EmptyArchetypeMix,
    /// Every `archetype_mix` weight is zero, negative, or non-finite,
    /// so weighted sampling has no mass to draw from.
    ZeroWeightArchetypeMix,
}

impl std::fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetConfigError::NoHouseholds => {
                write!(f, "a fleet needs at least one household")
            }
            FleetConfigError::EmptyArchetypeMix => {
                write!(
                    f,
                    "archetype_mix is empty: a fleet needs at least one archetype"
                )
            }
            FleetConfigError::ZeroWeightArchetypeMix => {
                write!(
                    f,
                    "archetype_mix has no positive finite weight to sample from"
                )
            }
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// Configuration for a simulated fleet of households.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of households.
    pub households: usize,
    /// Base seed; household `i` derives seed `base_seed + i`.
    pub base_seed: u64,
    /// Archetype mix as `(archetype, weight)`; sampled proportionally.
    pub archetype_mix: Vec<(HouseholdArchetype, f64)>,
    /// Optional shared tariff response (applies to every household).
    pub tariff_response: Option<TariffResponse>,
    /// Worker threads (1 = serial; capped at the household count).
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            households: 30,
            base_seed: 1000,
            archetype_mix: vec![
                (HouseholdArchetype::SingleResident, 0.25),
                (HouseholdArchetype::Couple, 0.35),
                (HouseholdArchetype::FamilyWithChildren, 0.25),
                (HouseholdArchetype::SuburbanWithEv, 0.15),
            ],
            tariff_response: None,
            threads: 4,
        }
    }
}

impl FleetConfig {
    /// Check that the fleet can actually be sampled.
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.households == 0 {
            return Err(FleetConfigError::NoHouseholds);
        }
        if self.archetype_mix.is_empty() {
            return Err(FleetConfigError::EmptyArchetypeMix);
        }
        if !self
            .archetype_mix
            .iter()
            .any(|(_, w)| w.is_finite() && *w > 0.0)
        {
            return Err(FleetConfigError::ZeroWeightArchetypeMix);
        }
        Ok(())
    }

    /// Materialise the per-household configurations (deterministic for
    /// a fixed `base_seed`), or explain why the mix cannot be sampled.
    pub fn try_household_configs(&self) -> Result<Vec<HouseholdConfig>, FleetConfigError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.base_seed);
        let weights: Vec<f64> = self.archetype_mix.iter().map(|(_, w)| *w).collect();
        Ok((0..self.households)
            .map(|i| {
                // `validate` guarantees positive mass, so the draw
                // always succeeds; the fallback is unreachable.
                let idx = weighted_index(&mut rng, &weights).unwrap_or(0);
                let arch = self.archetype_mix[idx].0;
                let mut cfg =
                    HouseholdConfig::new(i as u64, arch).with_seed(self.base_seed + i as u64);
                cfg.tariff_response = self.tariff_response.clone();
                cfg
            })
            .collect())
    }

    /// Materialise the per-household configurations, panicking on an
    /// unsampleable config (see [`FleetConfig::try_household_configs`]).
    pub fn household_configs(&self) -> Vec<HouseholdConfig> {
        self.try_household_configs()
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The result of simulating a fleet.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Every household's simulation, in id order.
    pub households: Vec<SimulatedHousehold>,
    /// The fleet-total consumption at 15-min market granularity.
    pub total: TimeSeries,
}

impl FleetResult {
    /// Fleet-total *flexible* ground-truth series at 15-min granularity.
    pub fn total_flexible(&self) -> TimeSeries {
        let mut acc: Option<TimeSeries> = None;
        for h in &self.households {
            let f = h.flexible_series_at(Resolution::MIN_15);
            acc = Some(match acc {
                None => f,
                Some(a) => a.add(&f).expect("fleet members share the grid"),
            });
        }
        acc.expect("fleets are non-empty")
    }

    /// Ground-truth flexible share of the whole fleet.
    pub fn true_flexible_share(&self) -> f64 {
        let total = self.total.total_energy();
        if total <= 0.0 {
            0.0
        } else {
            self.total_flexible().total_energy() / total
        }
    }
}

/// Simulate a fleet over `range`, parallelised across
/// `config.threads` scoped threads. Panics on an unsampleable config;
/// use [`try_simulate_fleet`] to get a typed error instead.
pub fn simulate_fleet(config: &FleetConfig, range: TimeRange) -> FleetResult {
    try_simulate_fleet(config, range).unwrap_or_else(|e| panic!("{e}"))
}

/// Simulate a fleet over `range`, parallelised across
/// `config.threads` scoped threads. Returns a typed error when the
/// config has no households or an empty/zero-weight archetype mix.
pub fn try_simulate_fleet(
    config: &FleetConfig,
    range: TimeRange,
) -> Result<FleetResult, FleetConfigError> {
    let catalog = Catalog::extended();
    let configs = config.try_household_configs()?;
    let results: Mutex<Vec<(usize, SimulatedHousehold)>> =
        Mutex::new(Vec::with_capacity(configs.len()));

    let threads = config.threads.clamp(1, configs.len());
    let chunk = configs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, batch) in configs.chunks(chunk).enumerate() {
            let results = &results;
            let catalog = &catalog;
            scope.spawn(move || {
                for (j, cfg) in batch.iter().enumerate() {
                    let sim = simulate_household_with_catalog(cfg, range, catalog);
                    results.lock().push((t * chunk + j, sim));
                }
            });
        }
    });

    let mut indexed = results.into_inner();
    indexed.sort_by_key(|(i, _)| *i);
    let households: Vec<SimulatedHousehold> = indexed.into_iter().map(|(_, sim)| sim).collect();

    let mut total: Option<TimeSeries> = None;
    for h in &households {
        let market = resample::to_resolution(&h.series, Resolution::MIN_15)
            .expect("day-aligned simulation grids resample to 15 min");
        total = Some(match total {
            None => market,
            Some(t) => t.add(&market).expect("fleet members share the grid"),
        });
    }
    Ok(FleetResult {
        total: total.expect("households > 0 checked above"),
        households,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Duration;

    fn days(n: i64) -> TimeRange {
        TimeRange::starting_at("2013-03-18".parse().unwrap(), Duration::days(n)).unwrap()
    }

    fn small_fleet(threads: usize) -> FleetConfig {
        FleetConfig {
            households: 6,
            threads,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_is_deterministic_and_thread_count_invariant() {
        let serial = simulate_fleet(&small_fleet(1), days(2));
        let parallel = simulate_fleet(&small_fleet(3), days(2));
        assert_eq!(serial.households.len(), 6);
        assert_eq!(serial.total, parallel.total);
        for (a, b) in serial.households.iter().zip(&parallel.households) {
            assert_eq!(a.config.id, b.config.id);
            assert_eq!(a.series, b.series);
        }
    }

    #[test]
    fn total_is_sum_of_members() {
        let fleet = simulate_fleet(&small_fleet(2), days(2));
        let sum: f64 = fleet
            .households
            .iter()
            .map(|h| h.series.total_energy())
            .sum();
        assert!((fleet.total.total_energy() - sum).abs() < 1e-6);
        assert_eq!(fleet.total.resolution(), Resolution::MIN_15);
        assert_eq!(fleet.total.len(), 2 * 96);
    }

    #[test]
    fn archetype_mix_is_respected() {
        let cfg = FleetConfig {
            households: 40,
            archetype_mix: vec![(HouseholdArchetype::SingleResident, 1.0)],
            ..FleetConfig::default()
        };
        for h in cfg.household_configs() {
            assert_eq!(h.archetype, HouseholdArchetype::SingleResident);
        }
    }

    #[test]
    fn flexible_share_is_sane() {
        let fleet = simulate_fleet(&small_fleet(2), days(3));
        let share = fleet.true_flexible_share();
        assert!(share > 0.0 && share < 0.9, "share {share}");
        let flex = fleet.total_flexible();
        assert!(flex.total_energy() <= fleet.total.total_energy());
    }

    #[test]
    fn distinct_households_have_distinct_series() {
        let fleet = simulate_fleet(&small_fleet(2), days(2));
        let first = &fleet.households[0].series;
        assert!(fleet.households.iter().skip(1).any(|h| &h.series != first));
    }

    #[test]
    fn shared_tariff_response_propagates() {
        let cfg = FleetConfig {
            households: 4,
            tariff_response: Some(TariffResponse::overnight(1.0)),
            ..FleetConfig::default()
        };
        let fleet = simulate_fleet(&cfg, days(3));
        let any_shifted = fleet
            .households
            .iter()
            .flat_map(|h| &h.activations)
            .any(|a| a.was_shifted());
        assert!(any_shifted);
    }

    #[test]
    #[should_panic(expected = "at least one household")]
    fn empty_fleet_panics() {
        let cfg = FleetConfig {
            households: 0,
            ..FleetConfig::default()
        };
        simulate_fleet(&cfg, days(1));
    }

    #[test]
    fn unsampleable_mixes_yield_typed_errors() {
        let empty = FleetConfig {
            archetype_mix: vec![],
            ..FleetConfig::default()
        };
        assert_eq!(
            empty.try_household_configs().unwrap_err(),
            FleetConfigError::EmptyArchetypeMix
        );
        assert_eq!(
            try_simulate_fleet(&empty, days(1)).unwrap_err(),
            FleetConfigError::EmptyArchetypeMix
        );

        let zero = FleetConfig {
            archetype_mix: vec![
                (HouseholdArchetype::Couple, 0.0),
                (HouseholdArchetype::SingleResident, -1.0),
                (HouseholdArchetype::FamilyWithChildren, f64::NAN),
            ],
            ..FleetConfig::default()
        };
        assert_eq!(
            zero.validate().unwrap_err(),
            FleetConfigError::ZeroWeightArchetypeMix
        );

        let none = FleetConfig {
            households: 0,
            ..FleetConfig::default()
        };
        assert_eq!(none.validate().unwrap_err(), FleetConfigError::NoHouseholds);

        // The error messages are user-facing; keep them descriptive.
        assert!(FleetConfigError::EmptyArchetypeMix
            .to_string()
            .contains("archetype_mix"));
        assert!(FleetConfigError::ZeroWeightArchetypeMix
            .to_string()
            .contains("weight"));
    }

    #[test]
    #[should_panic(expected = "archetype_mix is empty")]
    fn empty_mix_panics_in_the_infallible_api() {
        let cfg = FleetConfig {
            archetype_mix: vec![],
            ..FleetConfig::default()
        };
        cfg.household_configs();
    }

    #[test]
    fn try_simulate_matches_simulate_for_valid_configs() {
        let cfg = small_fleet(2);
        let a = try_simulate_fleet(&cfg, days(1)).unwrap();
        let b = simulate_fleet(&cfg, days(1));
        assert_eq!(a.total, b.total);
    }
}
