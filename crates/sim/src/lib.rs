//! # flextract-sim
//!
//! Synthetic household-consumption and RES-production simulator — the
//! workspace's stand-in for the real metering data the paper's authors
//! used (MIRABEL/MIRACLE trial series, which are not redistributable)
//! and for the multi-tariff series they *wished* they had ("we do not
//! have the required time series for this approach", §3.3).
//!
//! The simulator is appliance-level and bottom-up: a household owns a
//! set of catalog appliances ([`flextract_appliance::Catalog`]); each
//! simulated day draws activations per appliance from its usage model
//! (frequency, preferred start windows, weekend multiplier), realises
//! the cycle's 1-minute load profile at a random intensity, and sums
//! everything with a smooth stochastic base load. Because the generator
//! knows which cycles it placed, every simulation carries a
//! **ground-truth [`Activation`] log** — so extraction quality can be
//! *measured*, where the paper could only argue ("there exist no real
//! flex-offers in the world, thus the statistics … cannot be
//! evaluated", §3.1).
//!
//! Tariff response (§3.3's behavioural assumption) is first-class: under
//! a time-of-use [`TariffScheme`], shiftable activations are delayed
//! into low-tariff windows with a configurable sensitivity, and the
//! shift is recorded in the ground truth (`shifted_from`).
//!
//! ```
//! use flextract_sim::{HouseholdArchetype, HouseholdConfig, simulate_household};
//! use flextract_time::{TimeRange, Timestamp, Duration};
//!
//! let cfg = HouseholdConfig::new(1, HouseholdArchetype::FamilyWithChildren).with_seed(42);
//! let week = TimeRange::starting_at("2013-03-18".parse().unwrap(), Duration::weeks(1)).unwrap();
//! let sim = simulate_household(&cfg, week);
//! assert_eq!(sim.series.resolution(), flextract_time::Resolution::MIN_1);
//! assert!(sim.series.total_energy() > 0.0);
//! assert!(!sim.activations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod fleet;
mod household;
mod industrial;
pub mod randomness;
mod res;
mod simulate;
mod tariff;

pub use activation::Activation;
pub use fleet::{simulate_fleet, try_simulate_fleet, FleetConfig, FleetConfigError, FleetResult};
pub use household::{HouseholdArchetype, HouseholdConfig};
pub use industrial::{
    simulate_industrial, BatchProcess, IndustrialConfig, ShiftPattern, SimulatedIndustrial,
};
pub use res::{simulate_wind_production, WindFarmConfig};
pub use simulate::{
    simulate_household, simulate_household_with_catalog, simulate_tariff_pair, SimulatedHousehold,
};
pub use tariff::{TariffResponse, TariffScheme};
