//! Renewable (wind) production simulation.
//!
//! MIRABEL schedules flexible demand against *surplus RES production*
//! ("the washing machine can be turned on when the wind blows", §1).
//! The downstream scheduling experiments need a production series; this
//! module generates one with the canonical pipeline: an
//! Ornstein–Uhlenbeck wind-speed process pushed through a turbine power
//! curve.

use crate::randomness::ou_step;
use flextract_series::TimeSeries;
use flextract_time::{Resolution, TimeRange};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a simulated wind farm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindFarmConfig {
    /// Rated (maximum) electrical output in kW.
    pub capacity_kw: f64,
    /// Long-run mean wind speed (m/s) the OU process reverts to.
    pub mean_wind_ms: f64,
    /// Cut-in wind speed: below this the turbines produce nothing.
    pub cut_in_ms: f64,
    /// Rated wind speed: at and above this (until cut-out) the farm
    /// produces `capacity_kw`.
    pub rated_ms: f64,
    /// Cut-out wind speed: above this turbines shut down for safety.
    pub cut_out_ms: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WindFarmConfig {
    fn default() -> Self {
        WindFarmConfig {
            capacity_kw: 2000.0,
            mean_wind_ms: 7.5,
            cut_in_ms: 3.0,
            rated_ms: 12.0,
            cut_out_ms: 25.0,
            seed: 0xA1B2,
        }
    }
}

impl WindFarmConfig {
    /// Electrical power (kW) at wind speed `v` (m/s): zero below
    /// cut-in and above cut-out, cubic ramp between cut-in and rated,
    /// flat at capacity between rated and cut-out.
    pub fn power_at(&self, v: f64) -> f64 {
        if v < self.cut_in_ms || v >= self.cut_out_ms {
            0.0
        } else if v >= self.rated_ms {
            self.capacity_kw
        } else {
            let x = (v.powi(3) - self.cut_in_ms.powi(3))
                / (self.rated_ms.powi(3) - self.cut_in_ms.powi(3));
            self.capacity_kw * x
        }
    }
}

/// Simulate farm production over `range` at `resolution` (kWh per
/// interval). Deterministic for a fixed seed.
pub fn simulate_wind_production(
    config: &WindFarmConfig,
    range: TimeRange,
    resolution: Resolution,
) -> TimeSeries {
    let aligned = range.align_outward(resolution);
    let n = aligned.interval_count(resolution);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let hours = resolution.hours_f64();
    // OU parameters tuned so wind decorrelates over ~6 h regardless of
    // the sampling resolution.
    let theta = (hours / 6.0).min(1.0);
    let sigma = 1.2 * theta.sqrt();
    let mut v = config.mean_wind_ms;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        v = ou_step(&mut rng, v, config.mean_wind_ms, theta, sigma).max(0.0);
        values.push(config.power_at(v) * hours);
    }
    TimeSeries::new(aligned.start(), resolution, values)
        .expect("aligned range starts on the resolution grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Duration;

    fn week() -> TimeRange {
        TimeRange::starting_at("2013-03-18".parse().unwrap(), Duration::weeks(1)).unwrap()
    }

    #[test]
    fn power_curve_regions() {
        let cfg = WindFarmConfig::default();
        assert_eq!(cfg.power_at(0.0), 0.0);
        assert_eq!(cfg.power_at(2.9), 0.0); // below cut-in
        assert_eq!(cfg.power_at(12.0), 2000.0); // rated
        assert_eq!(cfg.power_at(20.0), 2000.0); // between rated and cut-out
        assert_eq!(cfg.power_at(25.0), 0.0); // cut-out
        assert_eq!(cfg.power_at(30.0), 0.0);
        // Cubic ramp is monotone between cut-in and rated.
        let p5 = cfg.power_at(5.0);
        let p8 = cfg.power_at(8.0);
        let p11 = cfg.power_at(11.0);
        assert!(0.0 < p5 && p5 < p8 && p8 < p11 && p11 < 2000.0);
    }

    #[test]
    fn production_series_shape() {
        let cfg = WindFarmConfig::default();
        let s = simulate_wind_production(&cfg, week(), Resolution::MIN_15);
        assert_eq!(s.len(), 7 * 96);
        assert!(s.values().iter().all(|&v| v >= 0.0));
        // Max per-interval energy is capacity × 0.25 h.
        assert!(s.values().iter().all(|&v| v <= 2000.0 * 0.25 + 1e-9));
        assert!(s.total_energy() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WindFarmConfig::default();
        let a = simulate_wind_production(&cfg, week(), Resolution::MIN_15);
        let b = simulate_wind_production(&cfg, week(), Resolution::MIN_15);
        assert_eq!(a, b);
        let other = WindFarmConfig {
            seed: 9,
            ..WindFarmConfig::default()
        };
        assert_ne!(
            simulate_wind_production(&other, week(), Resolution::MIN_15),
            a
        );
    }

    #[test]
    fn capacity_factor_is_plausible() {
        // Wind farms run at roughly 20-60 % capacity factor; our OU at
        // mean 7.5 m/s should land inside that band.
        let cfg = WindFarmConfig::default();
        let s = simulate_wind_production(&cfg, week(), Resolution::MIN_15);
        let cf = s.total_energy() / (2000.0 * 24.0 * 7.0);
        assert!((0.1..0.8).contains(&cf), "capacity factor {cf}");
    }

    #[test]
    fn resolution_independence_of_totals() {
        // Same seed at different resolutions gives different paths but
        // similar weekly totals (the OU tuning compensates step size).
        let cfg = WindFarmConfig::default();
        let fine = simulate_wind_production(&cfg, week(), Resolution::MIN_15);
        let coarse = simulate_wind_production(&cfg, week(), Resolution::HOUR_1);
        let ratio = fine.total_energy() / coarse.total_energy();
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
