//! Distribution helpers built on `rand`'s uniform primitives.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so
//! the handful of non-uniform draws the simulator needs are implemented
//! here: Gaussian (Box–Muller), Poisson counts (Knuth's product method,
//! adequate for the small rates appliance usage produces), and weighted
//! index selection (the paper's size-proportional peak choice uses the
//! same primitive).

use rand::Rng;

/// A standard-normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open unit interval away from 0.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal draw with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// A normal draw clamped into `[lo, hi]`.
pub fn clamped_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    normal(rng, mean, std_dev).clamp(lo, hi)
}

/// A Poisson count with rate `lambda` (Knuth's product method).
///
/// Appliance daily rates are ≲ 3, where this O(λ) method is both exact
/// and fast. Rates ≤ 0 yield 0.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
        // Defensive cap: λ in this workspace is ≤ ~10, so 1000 events
        // would indicate a broken caller rather than a legitimate draw.
        if k >= 1000 {
            return k;
        }
    }
}

/// Pick an index with probability proportional to `weights[i]`.
///
/// Returns `None` when the weights are empty or sum to a non-positive
/// value. This is exactly the selection rule of the paper's peak-based
/// approach ("the single peak is randomly chosen depending on these
/// probabilities", §3.2).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            target -= w;
            if target <= 0.0 {
                return Some(i);
            }
        }
    }
    // Float rounding can leave a sliver; return the last positive index.
    weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
}

/// A Bernoulli trial with probability `p` (clamped into `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// One step of a mean-reverting Ornstein–Uhlenbeck process — the
/// simulator's engine for smooth stochastic curves (base load, wind
/// speed).
///
/// `theta` is the mean-reversion rate per step, `sigma` the noise scale.
pub fn ou_step<R: Rng + ?Sized>(
    rng: &mut R,
    current: f64,
    mean: f64,
    theta: f64,
    sigma: f64,
) -> f64 {
    current + theta * (mean - current) + sigma * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xF1E57)
    }

    #[test]
    fn normal_matches_moments() {
        let mut r = rng();
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = clamped_normal(&mut r, 0.5, 10.0, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn poisson_matches_mean() {
        let mut r = rng();
        let n = 20_000;
        let lambda = 1.7;
        let total: u64 = (0..n).map(|_| poisson(&mut r, lambda) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn weighted_index_matches_proportions() {
        let mut r = rng();
        let weights = [2.22, 5.47]; // the Figure-5 survivors
        let mut counts = [0u32; 2];
        let n = 50_000;
        for _ in 0..n {
            counts[weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        let p0 = counts[0] as f64 / n as f64;
        // Expected 2.22 / 7.69 ≈ 0.2887 — the paper's "29 %".
        assert!((p0 - 0.2887).abs() < 0.01, "p0 {p0}");
    }

    #[test]
    fn weighted_index_edge_cases() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut r, &[-1.0]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 3.0, 0.0]), Some(1));
        // NaN weights are skipped, not propagated.
        assert_eq!(weighted_index(&mut r, &[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn bernoulli_respects_probability() {
        let mut r = rng();
        let n = 20_000;
        let hits = (0..n).filter(|_| bernoulli(&mut r, 0.29)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.29).abs() < 0.02, "p {p}");
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
        assert!(bernoulli(&mut r, 2.0)); // clamped
    }

    #[test]
    fn ou_process_reverts_to_mean() {
        let mut r = rng();
        let mut x = 100.0;
        for _ in 0..2000 {
            x = ou_step(&mut r, x, 10.0, 0.05, 0.2);
        }
        assert!((x - 10.0).abs() < 5.0, "x {x}");
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                standard_normal(&mut a).to_bits(),
                standard_normal(&mut b).to_bits()
            );
        }
    }
}
