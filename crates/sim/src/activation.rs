//! Ground-truth appliance activations.

use flextract_time::{Duration, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};

/// One realised appliance cycle placed by the simulator.
///
/// This is the ground truth the paper lacked: extraction approaches can
/// be scored on whether they recover these cycles (appliance-level
/// approaches) or their aggregate energy (household-level approaches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Activation {
    /// Catalog name of the appliance.
    pub appliance: String,
    /// When the cycle actually started.
    pub start: Timestamp,
    /// Cycle length.
    pub duration: Duration,
    /// Realised intensity in `[0, 1]` (interpolates the profile's
    /// min/max power envelope).
    pub intensity: f64,
    /// Realised cycle energy (kWh).
    pub energy_kwh: f64,
    /// `true` when the catalog marks this appliance shiftable — i.e.
    /// this activation is *true flexible demand*.
    pub shiftable: bool,
    /// When the cycle would have started had the consumer not responded
    /// to a tariff signal (`None` for unshifted activations).
    pub shifted_from: Option<Timestamp>,
}

impl Activation {
    /// The cycle's execution span.
    pub fn range(&self) -> TimeRange {
        TimeRange::starting_at(self.start, self.duration).expect("durations are non-negative")
    }

    /// `true` if this activation was delayed by tariff response.
    pub fn was_shifted(&self) -> bool {
        self.shifted_from.is_some()
    }

    /// How far the activation was delayed (zero when unshifted).
    pub fn shift_amount(&self) -> Duration {
        match self.shifted_from {
            Some(orig) => self.start - orig,
            None => Duration::ZERO,
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ {} ({:.2} kWh, {})",
            self.appliance,
            self.start,
            self.energy_kwh,
            if self.was_shifted() {
                "shifted"
            } else {
                "natural"
            }
        )
    }
}

/// Summary statistics over a ground-truth activation log.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ActivationStats {
    /// Number of activations.
    pub count: usize,
    /// Number of activations of shiftable appliances.
    pub shiftable_count: usize,
    /// Total energy of all activations (kWh).
    pub total_energy_kwh: f64,
    /// Total energy of shiftable activations (kWh) — the household's
    /// *true flexible demand*.
    pub flexible_energy_kwh: f64,
    /// Number of tariff-shifted activations.
    pub shifted_count: usize,
}

impl ActivationStats {
    /// Compute over a log.
    pub fn from_log(log: &[Activation]) -> Self {
        let mut s = ActivationStats::default();
        for a in log {
            s.count += 1;
            s.total_energy_kwh += a.energy_kwh;
            if a.shiftable {
                s.shiftable_count += 1;
                s.flexible_energy_kwh += a.energy_kwh;
            }
            if a.was_shifted() {
                s.shifted_count += 1;
            }
        }
        s
    }

    /// Fraction of total energy that is flexible, or 0 when no energy.
    pub fn flexible_share(&self) -> f64 {
        if self.total_energy_kwh <= 0.0 {
            0.0
        } else {
            self.flexible_energy_kwh / self.total_energy_kwh
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(name: &str, start: &str, energy: f64, shiftable: bool) -> Activation {
        Activation {
            appliance: name.into(),
            start: start.parse().unwrap(),
            duration: Duration::hours(1),
            intensity: 0.5,
            energy_kwh: energy,
            shiftable,
            shifted_from: None,
        }
    }

    #[test]
    fn range_and_shift_accessors() {
        let mut a = act("Washer", "2013-03-18 20:00", 2.0, true);
        assert_eq!(a.range().duration(), Duration::hours(1));
        assert!(!a.was_shifted());
        assert_eq!(a.shift_amount(), Duration::ZERO);
        a.shifted_from = Some("2013-03-18 18:00".parse().unwrap());
        assert!(a.was_shifted());
        assert_eq!(a.shift_amount(), Duration::hours(2));
        assert!(a.to_string().contains("shifted"));
    }

    #[test]
    fn stats_aggregate_correctly() {
        let log = vec![
            act("Washer", "2013-03-18 08:00", 2.0, true),
            act("Oven", "2013-03-18 18:00", 1.5, false),
            act("EV", "2013-03-18 22:00", 40.0, true),
        ];
        let s = ActivationStats::from_log(&log);
        assert_eq!(s.count, 3);
        assert_eq!(s.shiftable_count, 2);
        assert!((s.total_energy_kwh - 43.5).abs() < 1e-12);
        assert!((s.flexible_energy_kwh - 42.0).abs() < 1e-12);
        assert!((s.flexible_share() - 42.0 / 43.5).abs() < 1e-12);
        assert_eq!(s.shifted_count, 0);
    }

    #[test]
    fn empty_log_stats() {
        let s = ActivationStats::from_log(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.flexible_share(), 0.0);
    }
}
