//! Tariff schemes and consumer tariff response.
//!
//! The multi-tariff extraction approach (§3.3) "explores the fact that
//! consumers change their electricity consumption behavior when the
//! multi-tariff (also called variable rate) billing system is
//! introduced … they delay the flexible usage (e.g., washing machine)
//! to the low tariff time (e.g., after 10 PM)". [`TariffScheme`] models
//! the billing system; [`TariffResponse`] models the behaviour.

use flextract_time::{CivilTime, Duration, Timestamp};
use serde::{Deserialize, Serialize};

/// An electricity billing scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TariffScheme {
    /// One price at all hours (the paper's "one tariff period").
    Flat {
        /// Price in currency units per kWh.
        price: f64,
    },
    /// Time-of-use pricing: a base (high) price with discounted windows.
    TimeOfUse {
        /// Price outside the low windows.
        high_price: f64,
        /// Price inside the low windows.
        low_price: f64,
        /// Daily low-price windows `(from, to)` in wall-clock time; a
        /// window with `from > to` wraps past midnight.
        low_windows: Vec<(CivilTime, CivilTime)>,
    },
}

impl TariffScheme {
    /// The classic overnight scheme the paper alludes to: low tariff
    /// after 10 PM (until 6 AM).
    pub fn overnight() -> Self {
        TariffScheme::TimeOfUse {
            high_price: 0.30,
            low_price: 0.15,
            low_windows: vec![(
                CivilTime::new(22, 0).expect("static"),
                CivilTime::new(6, 0).expect("static"),
            )],
        }
    }

    /// `true` if this is a multi-tariff (time-of-use) scheme.
    pub fn is_multi_tariff(&self) -> bool {
        matches!(self, TariffScheme::TimeOfUse { .. })
    }

    /// Is `t` inside a low-tariff window?
    pub fn is_low_tariff(&self, t: Timestamp) -> bool {
        match self {
            TariffScheme::Flat { .. } => false,
            TariffScheme::TimeOfUse { low_windows, .. } => {
                let m = t.minute_of_day();
                low_windows.iter().any(|(from, to)| {
                    let f = from.minute_of_day();
                    let u = to.minute_of_day();
                    if f <= u {
                        m >= f && m < u
                    } else {
                        // Wrapping window, e.g. 22:00–06:00.
                        m >= f || m < u
                    }
                })
            }
        }
    }

    /// Price per kWh at instant `t`.
    pub fn price_at(&self, t: Timestamp) -> f64 {
        match self {
            TariffScheme::Flat { price } => *price,
            TariffScheme::TimeOfUse {
                high_price,
                low_price,
                ..
            } => {
                if self.is_low_tariff(t) {
                    *low_price
                } else {
                    *high_price
                }
            }
        }
    }

    /// The next instant at or after `t` with low tariff, searched on a
    /// minute grid up to `horizon` ahead. `None` for flat schemes or
    /// when no window opens within the horizon.
    pub fn next_low_tariff_start(&self, t: Timestamp, horizon: Duration) -> Option<Timestamp> {
        if !self.is_multi_tariff() {
            return None;
        }
        let mut cur = t;
        let end = t + horizon;
        while cur <= end {
            if self.is_low_tariff(cur) {
                return Some(cur);
            }
            cur += Duration::minutes(1);
        }
        None
    }
}

/// A household's behavioural response to a multi-tariff scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TariffResponse {
    /// The billing scheme the household is on.
    pub scheme: TariffScheme,
    /// Probability that a *shiftable* activation is delayed into the
    /// next low-tariff window (0 = ignores prices, 1 = always delays).
    pub sensitivity: f64,
}

impl TariffResponse {
    /// A response to the overnight scheme with the given sensitivity.
    pub fn overnight(sensitivity: f64) -> Self {
        TariffResponse {
            scheme: TariffScheme::overnight(),
            sensitivity: sensitivity.clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn flat_scheme_has_no_low_windows() {
        let flat = TariffScheme::Flat { price: 0.25 };
        assert!(!flat.is_multi_tariff());
        assert!(!flat.is_low_tariff(ts("2013-03-18 23:00")));
        assert_eq!(flat.price_at(ts("2013-03-18 23:00")), 0.25);
        assert_eq!(
            flat.next_low_tariff_start(ts("2013-03-18 12:00"), Duration::days(1)),
            None
        );
    }

    #[test]
    fn overnight_window_wraps_midnight() {
        let s = TariffScheme::overnight();
        assert!(s.is_multi_tariff());
        assert!(s.is_low_tariff(ts("2013-03-18 23:00")));
        assert!(s.is_low_tariff(ts("2013-03-19 03:00")));
        assert!(s.is_low_tariff(ts("2013-03-18 22:00"))); // inclusive start
        assert!(!s.is_low_tariff(ts("2013-03-19 06:00"))); // exclusive end
        assert!(!s.is_low_tariff(ts("2013-03-18 12:00")));
    }

    #[test]
    fn prices_follow_windows() {
        let s = TariffScheme::overnight();
        assert_eq!(s.price_at(ts("2013-03-18 23:30")), 0.15);
        assert_eq!(s.price_at(ts("2013-03-18 12:00")), 0.30);
    }

    #[test]
    fn next_low_tariff_search() {
        let s = TariffScheme::overnight();
        // From noon, next low-tariff start is 22:00 the same day.
        assert_eq!(
            s.next_low_tariff_start(ts("2013-03-18 12:00"), Duration::days(1)),
            Some(ts("2013-03-18 22:00"))
        );
        // Already inside a window → identity.
        assert_eq!(
            s.next_low_tariff_start(ts("2013-03-18 23:17"), Duration::days(1)),
            Some(ts("2013-03-18 23:17"))
        );
        // Horizon too short → None.
        assert_eq!(
            s.next_low_tariff_start(ts("2013-03-18 12:00"), Duration::hours(2)),
            None
        );
    }

    #[test]
    fn non_wrapping_window() {
        let s = TariffScheme::TimeOfUse {
            high_price: 0.3,
            low_price: 0.1,
            low_windows: vec![(
                CivilTime::new(13, 0).unwrap(),
                CivilTime::new(15, 0).unwrap(),
            )],
        };
        assert!(s.is_low_tariff(ts("2013-03-18 14:00")));
        assert!(!s.is_low_tariff(ts("2013-03-18 15:00")));
        assert!(!s.is_low_tariff(ts("2013-03-18 23:00")));
    }

    #[test]
    fn response_clamps_sensitivity() {
        assert_eq!(TariffResponse::overnight(1.7).sensitivity, 1.0);
        assert_eq!(TariffResponse::overnight(-0.2).sensitivity, 0.0);
        assert_eq!(TariffResponse::overnight(0.6).sensitivity, 0.6);
    }

    #[test]
    fn serde_round_trip() {
        let r = TariffResponse::overnight(0.8);
        let json = serde_json::to_string(&r).unwrap();
        let back: TariffResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
