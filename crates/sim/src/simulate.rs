//! The household simulation engine.

use crate::activation::{Activation, ActivationStats};
use crate::household::HouseholdConfig;
use crate::randomness::{bernoulli, clamped_normal, normal, ou_step, poisson, weighted_index};
use crate::tariff::TariffResponse;
use flextract_appliance::{ApplianceSpec, Catalog, UsageFrequency};
use flextract_series::{resample, TimeSeries};
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of simulating one household over a time range.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedHousehold {
    /// The configuration that produced this simulation.
    pub config: HouseholdConfig,
    /// Total household consumption at 1-minute resolution (kWh/min).
    pub series: TimeSeries,
    /// Ground truth: every appliance cycle that was placed.
    pub activations: Vec<Activation>,
    /// Ground-truth *flexible* consumption only (the summed series of
    /// all shiftable-appliance cycles), 1-minute resolution.
    pub flexible_series: TimeSeries,
}

impl SimulatedHousehold {
    /// The consumption series resampled to `res` (e.g. the 15-min
    /// market granularity the extraction approaches consume).
    pub fn series_at(&self, res: Resolution) -> TimeSeries {
        resample::to_resolution(&self.series, res)
            .expect("simulation grids are day-aligned, so any Resolution works")
    }

    /// The flexible ground-truth series resampled to `res`.
    pub fn flexible_series_at(&self, res: Resolution) -> TimeSeries {
        resample::to_resolution(&self.flexible_series, res)
            .expect("simulation grids are day-aligned, so any Resolution works")
    }

    /// Summary statistics of the ground-truth log.
    pub fn stats(&self) -> ActivationStats {
        ActivationStats::from_log(&self.activations)
    }

    /// Ground-truth flexible share of total energy.
    pub fn true_flexible_share(&self) -> f64 {
        let total = self.series.total_energy();
        if total <= 0.0 {
            0.0
        } else {
            self.flexible_series.total_energy() / total
        }
    }
}

/// Simulate one household over `range` (widened outward to whole days).
///
/// Deterministic for a fixed [`HouseholdConfig::seed`]: the same config
/// and range always produce the identical series and activation log.
pub fn simulate_household(config: &HouseholdConfig, range: TimeRange) -> SimulatedHousehold {
    let catalog = Catalog::extended();
    simulate_household_with_catalog(config, range, &catalog)
}

/// [`simulate_household`] against a caller-provided catalog (fleets
/// share one catalog; tests inject reduced ones).
pub fn simulate_household_with_catalog(
    config: &HouseholdConfig,
    range: TimeRange,
    catalog: &Catalog,
) -> SimulatedHousehold {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let days = range.align_outward(Resolution::DAY);
    let mut series = TimeSeries::zeros_over(days, Resolution::MIN_1).expect("aligned day range");
    let mut flexible = TimeSeries::zeros_over(days, Resolution::MIN_1).expect("aligned day range");
    let mut log: Vec<Activation> = Vec::new();

    // --- Base load: a slow mean-reverting wander around the archetype
    // level, refreshed every simulated minute.
    let base_kw = config.archetype.base_load_kw();
    let mut level = base_kw;
    {
        let values = series.values_mut();
        for v in values.iter_mut() {
            level = ou_step(&mut rng, level, base_kw, 0.02, base_kw * 0.05).max(0.0);
            *v += level / 60.0;
        }
    }

    // --- Appliance cycles. One per-minute scratch buffer is reused for
    // every cycle expansion, so placing a cycle allocates nothing.
    let mut cycle_scratch: Vec<f64> = Vec::new();
    let specs = config.resolve_appliances(catalog);
    for spec in specs {
        match spec.usage.frequency {
            UsageFrequency::Continuous => {
                simulate_continuous(&mut rng, spec, days, &mut series, &mut cycle_scratch);
            }
            _ => simulate_cycles(
                &mut rng,
                config,
                spec,
                days,
                &mut series,
                &mut flexible,
                &mut log,
                &mut cycle_scratch,
            ),
        }
    }

    // --- Measurement noise, applied last so it does not enter the
    // ground-truth flexible series.
    let noise_kwh = config.noise_level * base_kw / 60.0;
    if noise_kwh > 0.0 {
        for v in series.values_mut().iter_mut() {
            *v += normal(&mut rng, 0.0, noise_kwh);
        }
    }
    series.clip_negative();

    log.sort_by_key(|a| a.start);
    SimulatedHousehold {
        config: config.clone(),
        series,
        activations: log,
        flexible_series: flexible,
    }
}

/// Add one expanded cycle (per-minute kWh `values` anchored at `start`)
/// into `target`, skipping minutes outside the series span.
///
/// Returns the placed energy — the in-range values summed in minute
/// order, exactly the number `cycle.slice(range).total_energy()` used
/// to produce — and how many minutes landed in range. Replaces the old
/// expand→slice→add_overlapping dance without allocating a temporary
/// series per cycle.
///
/// Panics unless `target` is a 1-minute series: the minute offset is
/// used directly as a value index, which is only sound on the MIN_1
/// grid (a hard assert, not a debug one — on a coarser grid the
/// arithmetic would silently misplace energy in release builds).
fn add_cycle_values(target: &mut TimeSeries, start: Timestamp, values: &[f64]) -> (f64, usize) {
    assert_eq!(
        target.resolution(),
        Resolution::MIN_1,
        "add_cycle_values indexes by minute and needs a MIN_1 target"
    );
    let off = (start - target.start()).as_minutes();
    let n = values.len() as i64;
    let j0 = (-off).clamp(0, n) as usize;
    let j1 = (target.len() as i64 - off).clamp(0, n) as usize;
    let mut energy = 0.0;
    let target_values = target.values_mut();
    for (j, v) in values[j0..j1].iter().enumerate() {
        target_values[(off + (j0 + j) as i64) as usize] += v;
        energy += v;
    }
    (energy, j1 - j0)
}

/// Chain duty cycles of a continuous appliance (e.g. refrigerator
/// compressor) across the whole span, with randomised idle gaps.
fn simulate_continuous(
    rng: &mut StdRng,
    spec: &ApplianceSpec,
    days: TimeRange,
    series: &mut TimeSeries,
    scratch: &mut Vec<f64>,
) {
    let cycle = spec.profile.duration();
    let mut cursor = days.start();
    while cursor < days.end() {
        let intensity = clamped_normal(rng, 0.5, 0.2, 0.0, 1.0);
        spec.profile.fill_energy_values(intensity, scratch);
        add_cycle_values(series, cursor.floor_to(Resolution::MIN_1), scratch);
        // Idle gap between 0.5× and 1.5× of the cycle length.
        let gap =
            Duration::minutes((cycle.as_minutes() as f64 * rng.gen_range(0.5..1.5)).round() as i64);
        cursor = cursor + cycle + gap;
    }
}

/// Place the day's stochastic activations of a cycle appliance.
#[allow(clippy::too_many_arguments)]
fn simulate_cycles(
    rng: &mut StdRng,
    config: &HouseholdConfig,
    spec: &ApplianceSpec,
    days: TimeRange,
    series: &mut TimeSeries,
    flexible: &mut TimeSeries,
    log: &mut Vec<Activation>,
    scratch: &mut Vec<f64>,
) {
    for day in days.split_days() {
        let weekend = day.start().day_of_week().is_weekend();
        let rate =
            spec.usage.expected_rate(weekend).unwrap_or(0.0) * config.archetype.activity_factor();
        let count = poisson(rng, rate);
        for _ in 0..count {
            let natural_start = sample_start(rng, spec, day.start());
            let (start, shifted_from) =
                apply_tariff_response(rng, spec, natural_start, config.tariff_response.as_ref());
            let intensity = clamped_normal(rng, 0.5, 0.25, 0.0, 1.0);
            spec.profile.fill_energy_values(intensity, scratch);
            // Only the in-range part enters the household series; record
            // that amount so ground truth and series stay in balance.
            let anchored = start.floor_to(Resolution::MIN_1);
            let (energy_kwh, placed_minutes) = add_cycle_values(series, anchored, scratch);
            if placed_minutes == 0 {
                continue;
            }
            let shiftable = spec.shiftability.is_shiftable();
            if shiftable {
                add_cycle_values(flexible, anchored, scratch);
            }
            log.push(Activation {
                appliance: spec.name.clone(),
                start,
                duration: spec.profile.duration(),
                intensity,
                energy_kwh,
                shiftable,
                shifted_from,
            });
        }
    }
}

/// Draw a natural start instant from the appliance's preferred windows.
fn sample_start(rng: &mut StdRng, spec: &ApplianceSpec, day_start: Timestamp) -> Timestamp {
    let windows = &spec.usage.preferred_windows;
    let weights: Vec<f64> = windows.iter().map(|(_, _, w)| *w).collect();
    let idx = weighted_index(rng, &weights).unwrap_or(0);
    let (from, to, _) = windows.get(idx).copied().unwrap_or((
        flextract_time::CivilTime::MIDNIGHT,
        flextract_time::CivilTime::MIDNIGHT,
        1.0,
    ));
    let f = from.minute_of_day() as i64;
    let mut u = to.minute_of_day() as i64;
    if u <= f {
        u += 24 * 60; // wrapping window
    }
    let minute = rng.gen_range(f..=u);
    day_start + Duration::minutes(minute)
}

/// Possibly delay a shiftable activation into the next low-tariff
/// window (the §3.3 behavioural assumption).
fn apply_tariff_response(
    rng: &mut StdRng,
    spec: &ApplianceSpec,
    natural_start: Timestamp,
    response: Option<&TariffResponse>,
) -> (Timestamp, Option<Timestamp>) {
    let Some(resp) = response else {
        return (natural_start, None);
    };
    if !spec.shiftability.is_shiftable()
        || !resp.scheme.is_multi_tariff()
        || resp.scheme.is_low_tariff(natural_start)
        || !bernoulli(rng, resp.sensitivity)
    {
        return (natural_start, None);
    }
    match resp
        .scheme
        .next_low_tariff_start(natural_start, spec.shiftability.max_delay())
    {
        Some(delayed) if delayed > natural_start => (delayed, Some(natural_start)),
        _ => (natural_start, None),
    }
}

/// Simulate the §3.3 input pair: the *same* consumer observed first
/// under a flat tariff over `one_tariff_range`, then under the
/// multi-tariff scheme of `response` over `multi_tariff_range`.
///
/// Both simulations share the household seed, so appliance ownership and
/// habits match; only the billing-induced shifting differs.
pub fn simulate_tariff_pair(
    config: &HouseholdConfig,
    one_tariff_range: TimeRange,
    multi_tariff_range: TimeRange,
    response: TariffResponse,
) -> (SimulatedHousehold, SimulatedHousehold) {
    let mut flat_cfg = config.clone();
    flat_cfg.tariff_response = None;
    let mut multi_cfg = config.clone();
    multi_cfg.tariff_response = Some(response);
    (
        simulate_household(&flat_cfg, one_tariff_range),
        simulate_household(&multi_cfg, multi_tariff_range),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::household::HouseholdArchetype;
    use crate::tariff::TariffScheme;

    fn week() -> TimeRange {
        TimeRange::starting_at("2013-03-18".parse().unwrap(), Duration::weeks(1)).unwrap()
    }

    fn family() -> HouseholdConfig {
        HouseholdConfig::new(1, HouseholdArchetype::FamilyWithChildren).with_seed(42)
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate_household(&family(), week());
        let b = simulate_household(&family(), week());
        assert_eq!(a.series, b.series);
        assert_eq!(a.activations, b.activations);
    }

    #[test]
    fn different_seeds_differ() {
        let a = simulate_household(&family(), week());
        let b = simulate_household(&family().with_seed(43), week());
        assert_ne!(a.series, b.series);
    }

    #[test]
    fn output_shape_and_positivity() {
        let sim = simulate_household(&family(), week());
        assert_eq!(sim.series.resolution(), Resolution::MIN_1);
        assert_eq!(sim.series.len(), 7 * 1440);
        assert!(sim.series.values().iter().all(|&v| v >= 0.0));
        assert!(sim.series.total_energy() > 10.0, "a family uses energy");
        // A family runs appliances during a week.
        assert!(sim.stats().count > 5, "{} activations", sim.stats().count);
    }

    #[test]
    fn flexible_series_is_a_lower_envelope() {
        let sim = simulate_household(&family(), week());
        assert!(sim.flexible_series.total_energy() > 0.0);
        // Flexible energy is part of (noise-free) total energy; noise is
        // zero-mean so allow a small tolerance.
        assert!(
            sim.flexible_series.total_energy() <= sim.series.total_energy() * 1.05,
            "flexible {} vs total {}",
            sim.flexible_series.total_energy(),
            sim.series.total_energy()
        );
        let share = sim.true_flexible_share();
        assert!(share > 0.0 && share < 1.0, "share {share}");
    }

    #[test]
    fn ground_truth_energy_matches_log() {
        let sim = simulate_household(&family(), week());
        let flexible_from_log: f64 = sim
            .activations
            .iter()
            .filter(|a| a.shiftable)
            .map(|a| a.energy_kwh)
            .sum();
        assert!(
            (flexible_from_log - sim.flexible_series.total_energy()).abs() < 1e-6,
            "log {} vs series {}",
            flexible_from_log,
            sim.flexible_series.total_energy()
        );
    }

    #[test]
    fn resampling_to_market_granularity() {
        let sim = simulate_household(&family(), week());
        let market = sim.series_at(Resolution::MIN_15);
        assert_eq!(market.len(), 7 * 96);
        assert!((market.total_energy() - sim.series.total_energy()).abs() < 1e-6);
        let flex15 = sim.flexible_series_at(Resolution::MIN_15);
        assert_eq!(flex15.len(), 7 * 96);
    }

    #[test]
    fn archetypes_order_by_consumption() {
        let single = simulate_household(
            &HouseholdConfig::new(10, HouseholdArchetype::SingleResident),
            week(),
        );
        let suburban = simulate_household(
            &HouseholdConfig::new(11, HouseholdArchetype::SuburbanWithEv),
            week(),
        );
        assert!(
            suburban.series.total_energy() > single.series.total_energy() * 1.5,
            "suburban {} vs single {}",
            suburban.series.total_energy(),
            single.series.total_energy()
        );
    }

    #[test]
    fn tariff_response_shifts_into_low_windows() {
        let response = TariffResponse::overnight(1.0);
        let cfg = family().with_tariff_response(response.clone());
        let sim = simulate_household(&cfg, week());
        let shifted: Vec<&Activation> =
            sim.activations.iter().filter(|a| a.was_shifted()).collect();
        assert!(!shifted.is_empty(), "full sensitivity must shift something");
        for a in &shifted {
            assert!(
                response.scheme.is_low_tariff(a.start),
                "{} landed at {} which is not low tariff",
                a.appliance,
                a.start
            );
            assert!(a.shift_amount() > Duration::ZERO);
            assert!(a.shiftable);
        }
    }

    #[test]
    fn zero_sensitivity_never_shifts() {
        let cfg = family().with_tariff_response(TariffResponse::overnight(0.0));
        let sim = simulate_household(&cfg, week());
        assert!(sim.activations.iter().all(|a| !a.was_shifted()));
    }

    #[test]
    fn tariff_pair_shares_habits_but_not_shifts() {
        let (flat, multi) = simulate_tariff_pair(
            &family(),
            week(),
            TimeRange::starting_at("2013-04-01".parse().unwrap(), Duration::weeks(1)).unwrap(),
            TariffResponse::overnight(0.9),
        );
        assert!(flat.activations.iter().all(|a| !a.was_shifted()));
        assert!(multi.activations.iter().any(|a| a.was_shifted()));
        assert_eq!(flat.config.archetype, multi.config.archetype);
        // Night share of consumption rises under the multi tariff.
        let night_share = |sim: &SimulatedHousehold| {
            let night: f64 = sim
                .series
                .iter()
                .filter(|(t, _)| {
                    let m = t.minute_of_day();
                    !(6 * 60..22 * 60).contains(&m)
                })
                .map(|(_, v)| v)
                .sum();
            night / sim.series.total_energy()
        };
        assert!(
            night_share(&multi) > night_share(&flat),
            "multi {} vs flat {}",
            night_share(&multi),
            night_share(&flat)
        );
    }

    #[test]
    fn range_is_widened_to_whole_days() {
        let ragged = TimeRange::new(
            "2013-03-18 13:37".parse().unwrap(),
            "2013-03-19 02:11".parse().unwrap(),
        )
        .unwrap();
        let sim = simulate_household(&family(), ragged);
        assert_eq!(sim.series.start(), "2013-03-18".parse().unwrap());
        assert_eq!(sim.series.len(), 2 * 1440);
    }

    #[test]
    fn flat_tariff_response_is_inert() {
        let cfg = family().with_tariff_response(TariffResponse {
            scheme: TariffScheme::Flat { price: 0.25 },
            sensitivity: 1.0,
        });
        let sim = simulate_household(&cfg, week());
        assert!(sim.activations.iter().all(|a| !a.was_shifted()));
    }

    #[test]
    fn continuous_appliances_produce_no_log_entries() {
        let sim = simulate_household(&family(), week());
        assert!(sim
            .activations
            .iter()
            .all(|a| a.appliance != "Refrigerator A+"));
        // …but the fridge still consumes: strip appliances from the log
        // and the series still has energy beyond logged cycles + base.
        let logged: f64 = sim.activations.iter().map(|a| a.energy_kwh).sum();
        assert!(sim.series.total_energy() > logged);
    }
}
