//! Consumer sources: where a scenario's consumers come from.
//!
//! [`ConsumerSource`] is the random-access contract the sharded runner
//! pulls from: `len()` consumers, each built independently by index
//! through `&self`, so shard workers can claim indices concurrently and
//! the ordered merge (see [`crate::shard`]) stays byte-identical at any
//! thread count. Two sources implement it:
//!
//! * [`SimulatedSource`] — the original path: consumers are simulated
//!   on demand from the workload's fleet parameters.
//! * [`DatasetSource`] — the measured path: consumers are **ingested**
//!   from an on-disk dataset, run through gap-fill → anomaly-screen →
//!   (optionally) the disaggregation pipeline, and handed to extraction
//!   exactly like simulated ones. When the dataset carries simulator
//!   ground truth, the undegraded series rides along so the runner can
//!   extract from both and report the fidelity delta.

use crate::spec::{DatasetCleaning, ExtractorChoice, Scenario, Workload};
use crate::ScenarioError;
use flextract_appliance::Catalog;
use flextract_dataset::{
    ingest, CleaningConfig, CleaningReport, ConsumerKind, Dataset, ResidentStore,
};
use flextract_disagg::{disaggregate, DisaggConfig};
use flextract_series::{resample, TimeSeries};
use flextract_sim::{
    simulate_household_with_catalog, simulate_industrial, simulate_tariff_pair, FleetConfig,
    HouseholdArchetype, IndustrialConfig, SimulatedHousehold, TariffResponse,
};
use flextract_time::{Duration, Resolution, TimeRange};

/// Everything the extraction stage needs for one consumer.
pub(crate) struct ConsumerInput {
    /// Observed consumption at the market resolution.
    pub market: TimeSeries,
    /// Flexibility reference at the market resolution: simulator ground
    /// truth, dataset ground truth, the NILM estimate (disaggregating
    /// datasets without truth), or zeros when nothing better exists.
    pub truth: TimeSeries,
    /// Fine series (appliance-level extractors).
    pub fine: Option<TimeSeries>,
    /// One-tariff reference series (multi-tariff extractor only).
    pub reference: Option<TimeSeries>,
    /// Undegraded ground-truth total at the market resolution — the
    /// fidelity leg's extraction input (exported datasets only).
    pub fidelity_market: Option<TimeSeries>,
    /// Fine input of the fidelity leg (ground-truth total at its
    /// source resolution, attached when the workload disaggregates).
    pub fidelity_fine: Option<TimeSeries>,
    /// What the cleaning stage repaired (dataset consumers only).
    pub cleaning: Option<CleaningReport>,
    /// Appliance cycles the disaggregation stage recovered.
    pub disagg_detections: usize,
    /// Energy the disaggregation stage attributed to appliances (kWh).
    pub disagg_explained_kwh: f64,
}

impl ConsumerInput {
    fn plain(market: TimeSeries, truth: TimeSeries) -> Self {
        ConsumerInput {
            market,
            truth,
            fine: None,
            reference: None,
            fidelity_market: None,
            fidelity_fine: None,
            cleaning: None,
            disagg_detections: 0,
            disagg_explained_kwh: 0.0,
        }
    }
}

/// A raw (native-resolution, undegraded) simulated consumer — what the
/// dataset exporter degrades and writes to disk.
pub(crate) struct RawConsumer {
    /// Household or industrial site.
    pub kind: ConsumerKind,
    /// Total consumption at the simulator's native resolution.
    pub total: TimeSeries,
    /// Ground-truth flexible consumption at the same resolution.
    pub flexible: TimeSeries,
}

/// The random-access consumer source of one scenario run.
pub(crate) enum ConsumerSource<'a> {
    /// Consumers simulated on demand.
    Simulated(SimulatedSource<'a>),
    /// Consumers ingested from an on-disk dataset (boxed: the open
    /// dataset carries its whole manifest, which would otherwise bloat
    /// every simulated source's stack slot).
    Dataset(Box<DatasetSource<'a>>),
}

impl<'a> ConsumerSource<'a> {
    /// Build the source for `scenario` (opens and validates the dataset
    /// for dataset-backed workloads).
    pub fn new(
        scenario: &'a Scenario,
        horizon: TimeRange,
        res: Resolution,
        catalog: &'a Catalog,
    ) -> Result<Self, ScenarioError> {
        match &scenario.workload {
            Workload::Dataset {
                path,
                consumers,
                cleaning,
                disaggregate,
            } => Ok(ConsumerSource::Dataset(Box::new(DatasetSource::open(
                scenario,
                horizon,
                res,
                catalog,
                path,
                *consumers,
                *cleaning,
                *disaggregate,
            )?))),
            _ => Ok(ConsumerSource::Simulated(SimulatedSource::new(
                scenario, horizon, res, catalog,
            ))),
        }
    }

    /// Total consumers.
    pub fn len(&self) -> usize {
        match self {
            ConsumerSource::Simulated(s) => s.len(),
            ConsumerSource::Dataset(d) => d.len(),
        }
    }

    /// Build consumer `idx`, independent of every other index.
    pub fn consumer(&self, idx: usize) -> Result<ConsumerInput, ScenarioError> {
        match self {
            ConsumerSource::Simulated(s) => s.consumer(idx),
            ConsumerSource::Dataset(d) => d.consumer(idx),
        }
    }

    /// The on-disk resolution for dataset sources (`None` when
    /// simulated).
    pub fn source_resolution_min(&self) -> Option<i64> {
        match self {
            ConsumerSource::Simulated(_) => None,
            ConsumerSource::Dataset(d) => Some(d.source_resolution_min),
        }
    }
}

/// Builds any consumer of a simulated workload by index, on demand.
/// Building a consumer touches nothing but `&self`, so the source is
/// shared across shard workers; large workloads are never materialised
/// as a whole.
pub(crate) struct SimulatedSource<'a> {
    scenario: &'a Scenario,
    horizon: TimeRange,
    res: Resolution,
    catalog: &'a Catalog,
    households: Vec<flextract_sim::HouseholdConfig>,
    tariff_sensitivity: f64,
    sites: usize,
    site_pattern: flextract_sim::ShiftPattern,
}

impl<'a> SimulatedSource<'a> {
    pub fn new(
        scenario: &'a Scenario,
        horizon: TimeRange,
        res: Resolution,
        catalog: &'a Catalog,
    ) -> Self {
        let (households, tariff_sensitivity, sites, site_pattern) = match &scenario.workload {
            Workload::Households {
                households,
                archetype_mix,
                tariff_sensitivity,
            } => (
                fleet_configs(
                    scenario,
                    *households,
                    archetype_mix.clone(),
                    *tariff_sensitivity,
                ),
                *tariff_sensitivity,
                0,
                flextract_sim::ShiftPattern::TwoShift,
            ),
            Workload::Industrial { sites, pattern } => (Vec::new(), 0.0, *sites, *pattern),
            Workload::Mixed { households, sites } => (
                fleet_configs(
                    scenario,
                    *households,
                    FleetConfig::default().archetype_mix,
                    0.0,
                ),
                0.0,
                *sites,
                flextract_sim::ShiftPattern::TwoShift,
            ),
            Workload::Dataset { .. } => {
                unreachable!("dataset workloads build a DatasetSource")
            }
        };
        SimulatedSource {
            scenario,
            horizon,
            res,
            catalog,
            households,
            tariff_sensitivity,
            sites,
            site_pattern,
        }
    }

    /// Total consumers (households first, then industrial sites).
    pub fn len(&self) -> usize {
        self.households.len() + self.sites
    }

    /// Build consumer `idx` (simulate + resample), independent of every
    /// other index.
    pub fn consumer(&self, idx: usize) -> Result<ConsumerInput, ScenarioError> {
        if idx < self.households.len() {
            self.household(&self.households[idx])
        } else {
            let raw = self.raw_site(idx - self.households.len());
            Ok(ConsumerInput::plain(
                resample::to_resolution_owned(raw.total, self.res)?,
                resample::to_resolution_owned(raw.flexible, self.res)?,
            ))
        }
    }

    /// Build consumer `idx` at the simulator's native resolution,
    /// without market resampling — the exporter's entry point.
    ///
    /// Multi-tariff scenarios are not exportable (their reference
    /// series is a *second* simulation of the same consumer, which the
    /// metered format cannot carry), so `raw` always simulates the
    /// plain single-simulation path.
    pub fn raw(&self, idx: usize) -> RawConsumer {
        if idx < self.households.len() {
            let sim =
                simulate_household_with_catalog(&self.households[idx], self.horizon, self.catalog);
            RawConsumer {
                kind: ConsumerKind::Household,
                total: sim.series,
                flexible: sim.flexible_series,
            }
        } else {
            self.raw_site(idx - self.households.len())
        }
    }

    fn raw_site(&self, site_idx: usize) -> RawConsumer {
        let cfg = IndustrialConfig {
            pattern: self.site_pattern,
            seed: self.scenario.seed ^ (0x1D00D + site_idx as u64),
            ..IndustrialConfig::medium_plant(site_idx as u64)
        };
        let sim = simulate_industrial(&cfg, self.horizon);
        RawConsumer {
            kind: ConsumerKind::Industrial,
            total: sim.series,
            flexible: sim.flexible_series,
        }
    }

    fn household(
        &self,
        cfg: &flextract_sim::HouseholdConfig,
    ) -> Result<ConsumerInput, ScenarioError> {
        if self.scenario.extractor == ExtractorChoice::MultiTariff {
            // §3.3 needs the same consumer's one-tariff typical period
            // as reference: simulate the preceding horizon flat.
            let ref_horizon = TimeRange::starting_at(
                self.horizon.start() - Duration::days(self.scenario.days),
                Duration::days(self.scenario.days),
            )
            .expect("days >= 1 by validation");
            let (flat, multi) = simulate_tariff_pair(
                cfg,
                ref_horizon,
                self.horizon,
                TariffResponse::overnight(self.tariff_sensitivity),
            );
            let SimulatedHousehold {
                series,
                flexible_series,
                ..
            } = multi;
            let mut input = ConsumerInput::plain(
                resample::to_resolution_owned(series, self.res)?,
                resample::to_resolution_owned(flexible_series, self.res)?,
            );
            input.reference = Some(resample::to_resolution_owned(flat.series, self.res)?);
            return Ok(input);
        }
        let sim = simulate_household_with_catalog(cfg, self.horizon, self.catalog);
        let needs_fine = matches!(
            self.scenario.extractor,
            ExtractorChoice::Frequency | ExtractorChoice::Schedule
        );
        // Clone the 1-min series only when an appliance-level extractor
        // needs it; the market/truth conversions consume the simulated
        // series, so a 1-min market resolution moves instead of cloning.
        let fine = needs_fine.then(|| sim.series.clone());
        let SimulatedHousehold {
            series,
            flexible_series,
            ..
        } = sim;
        let mut input = ConsumerInput::plain(
            resample::to_resolution_owned(series, self.res)?,
            resample::to_resolution_owned(flexible_series, self.res)?,
        );
        input.fine = fine;
        Ok(input)
    }
}

/// Builds consumers by ingesting an on-disk dataset: load → gap-fill →
/// anomaly-screen → (optionally) disaggregate → resample to the market
/// resolution. Loading is per consumer through `&self`, so the source
/// satisfies the same random-access contract as [`SimulatedSource`] and
/// the sharded runner treats both uniformly.
///
/// Loads are **ranged**: only the scenario horizon is materialized
/// (via [`Dataset::consumer_in`]), so a dataset may cover more time
/// than the scenario uses — for FXM2 files, chunks outside the horizon
/// are never decoded, and the cleaning stage (gap-fill and the
/// rolling-z screen) runs on the chunk-assembled horizon window
/// instead of the whole stored series.
pub(crate) struct DatasetSource<'a> {
    /// The process-wide resident handle for the dataset directory —
    /// kept so repeated scenario runs against one store share its
    /// caches — and the snapshot this run is pinned to: one generation
    /// for every consumer, so a concurrent store commit cannot tear a
    /// run.
    #[allow(dead_code)]
    store: std::sync::Arc<ResidentStore>,
    dataset: std::sync::Arc<Dataset>,
    horizon: TimeRange,
    cleaning: CleaningConfig,
    disaggregate: bool,
    /// Run the paired ground-truth extraction leg — true only when the
    /// manifest carries truth for every consumer (partial coverage
    /// would be discarded by the runner anyway).
    fidelity: bool,
    res: Resolution,
    catalog: &'a Catalog,
    source_resolution_min: i64,
}

impl<'a> DatasetSource<'a> {
    #[allow(clippy::too_many_arguments)]
    fn open(
        scenario: &Scenario,
        horizon: TimeRange,
        res: Resolution,
        catalog: &'a Catalog,
        path: &str,
        declared_consumers: usize,
        cleaning: DatasetCleaning,
        disaggregate: bool,
    ) -> Result<Self, ScenarioError> {
        // One resident handle per store directory, shared process-wide:
        // repeated runs (and `flextract query` in the same process)
        // reuse the parsed indexes. The run itself pins one revalidated
        // snapshot so every consumer reads the same generation.
        let store = ResidentStore::shared(path)?;
        let dataset = store.dataset()?;
        let invalid = |what: String| ScenarioError::Invalid {
            scenario: scenario.name.clone(),
            what: format!("dataset {path}: {what}"),
        };
        if dataset.len() != declared_consumers {
            return Err(invalid(format!(
                "manifest has {} consumers but the spec declares {declared_consumers}",
                dataset.len()
            )));
        }
        let resolution_min = dataset.resolution_min();
        let start = dataset.start_timestamp()?;
        let covered = TimeRange::starting_at(
            start,
            Duration::minutes(dataset.intervals() as i64 * resolution_min),
        )
        .expect("interval counts are non-negative");
        // The dataset must *cover* the horizon (it may cover more —
        // the loads are ranged, so only the horizon is ever decoded).
        if !covered.contains_range(horizon) {
            return Err(invalid(format!(
                "dataset covers {covered} but the scenario horizon {horizon} is not inside it"
            )));
        }
        if (horizon.start() - start).as_minutes() % resolution_min != 0 {
            return Err(invalid(format!(
                "scenario start {} is not aligned to the dataset's {}-min grid (dataset \
                 starts at {start})",
                horizon.start(),
                resolution_min
            )));
        }
        if res.minutes() % resolution_min != 0 {
            return Err(invalid(format!(
                "dataset resolution is {} min, which cannot be resampled to the scenario's \
                 {}-min market resolution (must divide it evenly)",
                resolution_min,
                res.minutes()
            )));
        }
        let _ = dataset.resolution()?; // validated representable
                                       // Fidelity is only reported when *every* consumer carries
                                       // ground truth; with partial coverage, skip the paired
                                       // extraction leg entirely instead of paying for truth loads
                                       // and duplicate extractions that would be discarded. A
                                       // sharded store answers from the root roll-up without
                                       // opening any shard.
        let fidelity = dataset.all_have_truth();
        Ok(DatasetSource {
            source_resolution_min: resolution_min,
            store,
            dataset,
            horizon,
            cleaning: CleaningConfig {
                fill: cleaning.fill,
                screen_anomalies: cleaning.screen_anomalies,
                ..CleaningConfig::default()
            },
            disaggregate,
            fidelity,
            res,
            catalog,
        })
    }

    fn len(&self) -> usize {
        self.dataset.len()
    }

    fn consumer(&self, idx: usize) -> Result<ConsumerInput, ScenarioError> {
        // Ranged read: only the chunks overlapping the scenario
        // horizon are decoded. Without a fidelity leg the truth-total
        // file would be loaded only to be dropped; skip the read
        // entirely.
        let record = self.dataset.consumer_in(idx, self.horizon, self.fidelity)?;
        let (cleaned, cleaning) = ingest::clean(record.measured, &self.cleaning)?;

        let mut disagg_detections = 0;
        let mut disagg_explained_kwh = 0.0;
        let mut nilm_estimate: Option<TimeSeries> = None;
        if self.disaggregate {
            let result = disaggregate(&cleaned, self.catalog, &DisaggConfig::shiftable())?;
            disagg_detections = result.detections.len();
            disagg_explained_kwh = result.explained_kwh;
            if record.truth_flex.is_none() {
                nilm_estimate = Some(result.explained);
            }
        }

        // Only appliance-level extraction needs the fine series; when
        // it doesn't, move `cleaned` into the resample so the identity
        // path (on-disk resolution == market resolution) stays
        // allocation-free, as on the simulated path.
        let (market, fine) = if self.disaggregate {
            (resample::to_resolution(&cleaned, self.res)?, Some(cleaned))
        } else {
            (resample::to_resolution_owned(cleaned, self.res)?, None)
        };
        let truth = match (&record.truth_flex, nilm_estimate) {
            (Some(flex), _) => resample::to_resolution(flex, self.res)?,
            (None, Some(estimate)) => resample::to_resolution_owned(estimate, self.res)?,
            (None, None) => TimeSeries::zeros_like(&market),
        };
        let fidelity_market = if self.fidelity {
            record
                .truth_total
                .as_ref()
                .map(|t| resample::to_resolution(t, self.res))
                .transpose()?
        } else {
            None
        };
        let fidelity_fine = if self.fidelity && self.disaggregate {
            record.truth_total
        } else {
            None
        };
        Ok(ConsumerInput {
            market,
            truth,
            fine,
            reference: None,
            fidelity_market,
            fidelity_fine,
            cleaning: Some(cleaning),
            disagg_detections,
            disagg_explained_kwh,
        })
    }
}

/// Materialise household configs for a scenario's fleet parameters.
/// Validation has already run, so the mix is sampleable.
fn fleet_configs(
    scenario: &Scenario,
    households: usize,
    archetype_mix: Vec<(HouseholdArchetype, f64)>,
    tariff_sensitivity: f64,
) -> Vec<flextract_sim::HouseholdConfig> {
    let fleet = FleetConfig {
        households,
        base_seed: scenario.seed,
        archetype_mix,
        tariff_response: (tariff_sensitivity > 0.0
            && scenario.extractor != ExtractorChoice::MultiTariff)
            .then(|| TariffResponse::overnight(tariff_sensitivity)),
        threads: 1,
    };
    fleet
        .try_household_configs()
        .expect("scenario validation covers the fleet config")
}
