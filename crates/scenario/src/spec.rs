//! The declarative [`Scenario`] specification and corpus loading.
//!
//! A scenario names one full simulate→extract→aggregate→evaluate run:
//! the workload (who consumes), the horizon and market resolution, the
//! extraction approach and its flexible share, the downstream
//! aggregation policy, and the seed that makes the whole run
//! reproducible. Scenarios are stored as one JSON file each under
//! `scenarios/` and double as golden-file regression fixtures.

use crate::ScenarioError;
use flextract_series::FillStrategy;
use flextract_sim::{FleetConfig, HouseholdArchetype, ShiftPattern};
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The cleaning stage of a dataset-backed workload (see
/// [`flextract_dataset::ingest`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetCleaning {
    /// Gap-fill strategy (also re-fills screened anomalies).
    pub fill: FillStrategy,
    /// Whether to screen anomalies (rolling z-score) after gap fill.
    pub screen_anomalies: bool,
}

impl Default for DatasetCleaning {
    fn default() -> Self {
        DatasetCleaning {
            fill: FillStrategy::Linear,
            screen_anomalies: false,
        }
    }
}

/// Which consumers the scenario runs — simulated, or ingested from a
/// metered dataset on disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// A residential fleet.
    Households {
        /// Number of households.
        households: usize,
        /// Archetype mix as `(archetype, weight)`; sampled
        /// proportionally (see [`FleetConfig::archetype_mix`]).
        archetype_mix: Vec<(HouseholdArchetype, f64)>,
        /// Probability that a shiftable activation is delayed into the
        /// overnight low-tariff window (0 = no tariff response).
        tariff_sensitivity: f64,
    },
    /// A set of industrial sites (§6's "further research direction").
    Industrial {
        /// Number of plants.
        sites: usize,
        /// Working-time structure shared by every plant.
        pattern: ShiftPattern,
    },
    /// A district: households plus industrial sites on one feeder.
    Mixed {
        /// Number of households (default archetype mix, no tariff).
        households: usize,
        /// Number of two-shift plants.
        sites: usize,
    },
    /// Metered consumers ingested from a dataset directory (see the
    /// README's "measured-data pipeline" section). The pipeline becomes
    /// ingest → gap-fill → anomaly-screen → (optionally) disaggregate →
    /// extract, and — when the dataset carries simulator ground truth —
    /// the report gains a fidelity section.
    Dataset {
        /// Dataset directory; a relative path resolves against the
        /// process working directory.
        path: String,
        /// Expected consumer count. Pinned in the spec so
        /// [`Workload::consumers`] needs no I/O and a swapped-out
        /// dataset cannot silently change the scenario's shape; the
        /// runner errors if the manifest disagrees.
        consumers: usize,
        /// The cleaning stage configuration.
        cleaning: DatasetCleaning,
        /// Run the disaggregation pipeline on the cleaned series. This
        /// attaches the cleaned fine series and the appliance catalog
        /// to extraction (enabling the appliance-level extractors on
        /// measured data) and, when the dataset has no ground-truth
        /// flexible series, makes the NILM estimate the scoring
        /// reference.
        disaggregate: bool,
    },
}

impl Workload {
    /// Total number of consumers (declared count for datasets).
    pub fn consumers(&self) -> usize {
        match self {
            Workload::Households { households, .. } => *households,
            Workload::Industrial { sites, .. } => *sites,
            Workload::Mixed { households, sites } => households + sites,
            Workload::Dataset { consumers, .. } => *consumers,
        }
    }
}

/// Which of the paper's Figure-3 approaches extracts the flexibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractorChoice {
    /// The MIRABEL testing baseline (offers land uniformly).
    Random,
    /// §3.1 basic approach (fixed share, one offer per period).
    Basic,
    /// §3.2 peak-based approach (the paper's main proposal).
    Peak,
    /// §3.3 multi-tariff approach (needs a tariff-responding fleet).
    MultiTariff,
    /// §4.1 frequency-based appliance-level approach.
    Frequency,
    /// §4.2 schedule-based appliance-level approach.
    Schedule,
}

impl ExtractorChoice {
    /// Machine-friendly name, matching the extractor's `name()`.
    pub fn label(self) -> &'static str {
        match self {
            ExtractorChoice::Random => "random",
            ExtractorChoice::Basic => "basic",
            ExtractorChoice::Peak => "peak",
            ExtractorChoice::MultiTariff => "multi-tariff",
            ExtractorChoice::Frequency => "frequency",
            ExtractorChoice::Schedule => "schedule",
        }
    }
}

/// What happens to the extracted flex-offers downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationPolicy {
    /// Stop after extraction.
    None,
    /// Aggregate micro offers into macro offers (§6).
    Aggregate,
    /// Aggregate, then schedule against simulated wind production;
    /// requires `res_capacity_share > 0`.
    Schedule,
}

/// One named, reproducible pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Unique corpus name (also the spec and golden file stem).
    pub name: String,
    /// One-line human description shown by `flextract scenario list`.
    pub description: String,
    /// Who consumes.
    pub workload: Workload,
    /// First simulated day, `YYYY-MM-DD`.
    pub start: String,
    /// Number of simulated days.
    pub days: i64,
    /// Market/extraction resolution in minutes (must divide a day and
    /// be at most one hour).
    pub resolution_min: i64,
    /// The extraction approach.
    pub extractor: ExtractorChoice,
    /// Fraction of consumption assumed flexible (the MIRACLE trial
    /// range is 0.001–0.065).
    pub flexible_share: f64,
    /// Downstream policy.
    pub aggregation: AggregationPolicy,
    /// Wind-farm capacity as a share of the workload's mean load
    /// (0 = no RES production simulated).
    pub res_capacity_share: f64,
    /// Base RNG seed for the whole pipeline.
    pub seed: u64,
}

impl Scenario {
    /// The simulated horizon.
    pub fn horizon(&self) -> Result<TimeRange, ScenarioError> {
        let start: Timestamp = self.start.parse().map_err(|e| ScenarioError::Invalid {
            scenario: self.name.clone(),
            what: format!("start `{}`: {e}", self.start),
        })?;
        TimeRange::starting_at(start, Duration::days(self.days)).map_err(|e| {
            ScenarioError::Invalid {
                scenario: self.name.clone(),
                what: format!("days {}: {e}", self.days),
            }
        })
    }

    /// The market resolution.
    pub fn resolution(&self) -> Result<Resolution, ScenarioError> {
        Resolution::from_minutes(self.resolution_min).map_err(|e| ScenarioError::Invalid {
            scenario: self.name.clone(),
            what: format!("resolution_min {}: {e}", self.resolution_min),
        })
    }

    fn invalid(&self, what: impl Into<String>) -> ScenarioError {
        ScenarioError::Invalid {
            scenario: self.name.clone(),
            what: what.into(),
        }
    }

    /// Check every field's domain and the extractor/workload
    /// compatibility rules before running anything.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        {
            return Err(self.invalid(
                "name must be non-empty lowercase [a-z0-9_-] (it doubles as a file stem)",
            ));
        }
        if self.days < 1 {
            return Err(self.invalid("days must be at least 1"));
        }
        self.horizon()?;
        let res = self.resolution()?;
        if res.minutes() > Resolution::HOUR_1.minutes() {
            return Err(self.invalid("resolution_min must be at most 60 (one market hour)"));
        }
        if !(0.0..=1.0).contains(&self.flexible_share) {
            return Err(self.invalid("flexible_share must be in [0, 1]"));
        }
        if !self.res_capacity_share.is_finite() || self.res_capacity_share < 0.0 {
            return Err(self.invalid("res_capacity_share must be finite and non-negative"));
        }
        match &self.workload {
            Workload::Households {
                households,
                archetype_mix,
                tariff_sensitivity,
            } => {
                let fleet = FleetConfig {
                    households: *households,
                    archetype_mix: archetype_mix.clone(),
                    ..FleetConfig::default()
                };
                fleet.validate()?;
                if !(0.0..=1.0).contains(tariff_sensitivity) {
                    return Err(self.invalid("tariff_sensitivity must be in [0, 1]"));
                }
            }
            Workload::Industrial { sites, .. } => {
                if *sites == 0 {
                    return Err(self.invalid("an industrial workload needs at least one site"));
                }
            }
            Workload::Mixed { households, sites } => {
                if *households == 0 || *sites == 0 {
                    return Err(
                        self.invalid("a mixed workload needs households and sites both >= 1")
                    );
                }
            }
            Workload::Dataset {
                path, consumers, ..
            } => {
                if path.is_empty() {
                    return Err(self.invalid("a dataset workload needs a non-empty path"));
                }
                if *consumers == 0 {
                    return Err(self.invalid("a dataset workload needs consumers >= 1"));
                }
            }
        }
        match self.extractor {
            ExtractorChoice::Frequency | ExtractorChoice::Schedule
                if matches!(
                    self.workload,
                    Workload::Dataset {
                        disaggregate: false,
                        ..
                    }
                ) =>
            {
                return Err(self.invalid(
                    "appliance-level extractors on a dataset workload need \
                     disaggregate = true (they require the fine series and the catalog)",
                ));
            }
            ExtractorChoice::Frequency | ExtractorChoice::Schedule
                if !matches!(
                    self.workload,
                    Workload::Households { .. } | Workload::Dataset { .. }
                ) =>
            {
                return Err(self.invalid(
                    "appliance-level extractors need a Households or Dataset workload \
                     (they require the fine series and the catalog)",
                ));
            }
            ExtractorChoice::MultiTariff if matches!(self.workload, Workload::Dataset { .. }) => {
                return Err(self.invalid(
                    "the multi-tariff extractor needs a simulated Households workload \
                     (the metered format carries no same-consumer one-tariff reference)",
                ));
            }
            ExtractorChoice::MultiTariff => {
                let ok = matches!(
                    &self.workload,
                    Workload::Households {
                        tariff_sensitivity, ..
                    } if *tariff_sensitivity > 0.0
                );
                if !ok {
                    return Err(self.invalid(
                        "the multi-tariff extractor needs a Households workload with \
                         tariff_sensitivity > 0 (it compares against a one-tariff reference)",
                    ));
                }
            }
            _ => {}
        }
        if self.aggregation == AggregationPolicy::Schedule && self.res_capacity_share <= 0.0 {
            return Err(self.invalid(
                "aggregation Schedule needs res_capacity_share > 0 (something to schedule against)",
            ));
        }
        Ok(())
    }
}

/// Load and validate one scenario spec file.
pub fn load_file(path: &Path) -> Result<Scenario, ScenarioError> {
    let display = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
        path: display.clone(),
        what: e.to_string(),
    })?;
    let scenario: Scenario = serde_json::from_str(&text).map_err(|e| ScenarioError::Parse {
        path: display.clone(),
        what: e.to_string(),
    })?;
    scenario.validate()?;
    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
        if stem != scenario.name {
            return Err(ScenarioError::Parse {
                path: display,
                what: format!(
                    "file stem `{stem}` does not match scenario name `{}`",
                    scenario.name
                ),
            });
        }
    }
    Ok(scenario)
}

/// Load every `*.json` scenario in `dir`, sorted by name, rejecting
/// duplicates. This is how the committed corpus is read by the CLI and
/// the golden-file suite.
pub fn load_dir(dir: &Path) -> Result<Vec<Scenario>, ScenarioError> {
    let entries = std::fs::read_dir(dir).map_err(|e| ScenarioError::Io {
        path: dir.display().to_string(),
        what: e.to_string(),
    })?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut scenarios = Vec::with_capacity(paths.len());
    for path in paths {
        let scenario = load_file(&path)?;
        if scenarios.iter().any(|s: &Scenario| s.name == scenario.name) {
            return Err(ScenarioError::DuplicateName(scenario.name));
        }
        scenarios.push(scenario);
    }
    Ok(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            description: "test scenario".into(),
            workload: Workload::Households {
                households: 2,
                archetype_mix: vec![(HouseholdArchetype::Couple, 1.0)],
                tariff_sensitivity: 0.0,
            },
            start: "2013-03-18".into(),
            days: 1,
            resolution_min: 15,
            extractor: ExtractorChoice::Basic,
            flexible_share: 0.05,
            aggregation: AggregationPolicy::None,
            res_capacity_share: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn valid_scenario_round_trips_through_json() {
        let s = tiny("round_trip");
        s.validate().unwrap();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn domain_violations_are_rejected_with_context() {
        let mut s = tiny("bad");
        s.days = 0;
        assert!(s.validate().unwrap_err().to_string().contains("days"));

        let mut s = tiny("bad");
        s.resolution_min = 7;
        assert!(s.validate().is_err());

        let mut s = tiny("bad");
        s.resolution_min = 24 * 60;
        assert!(s.validate().unwrap_err().to_string().contains("at most 60"));

        let mut s = tiny("bad");
        s.flexible_share = 1.5;
        assert!(s.validate().is_err());

        let mut s = tiny("Bad Name");
        s.name = "Bad Name".into();
        assert!(s.validate().unwrap_err().to_string().contains("name"));

        let mut s = tiny("bad");
        s.start = "not-a-date".into();
        assert!(s.validate().is_err());
    }

    #[test]
    fn extractor_workload_compatibility_is_enforced() {
        let mut s = tiny("industrial_frequency");
        s.workload = Workload::Industrial {
            sites: 1,
            pattern: ShiftPattern::TwoShift,
        };
        s.extractor = ExtractorChoice::Frequency;
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("appliance-level"));

        let mut s = tiny("mt_without_tariff");
        s.extractor = ExtractorChoice::MultiTariff;
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("tariff_sensitivity"));

        let mut s = tiny("schedule_without_res");
        s.aggregation = AggregationPolicy::Schedule;
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("res_capacity_share"));
    }

    #[test]
    fn empty_archetype_mix_surfaces_the_fleet_error() {
        let mut s = tiny("empty_mix");
        s.workload = Workload::Households {
            households: 2,
            archetype_mix: vec![],
            tariff_sensitivity: 0.0,
        };
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("archetype"), "{err}");
    }

    pub(crate) fn tiny_dataset(name: &str, path: &str, consumers: usize) -> Scenario {
        Scenario {
            workload: Workload::Dataset {
                path: path.into(),
                consumers,
                cleaning: DatasetCleaning::default(),
                disaggregate: false,
            },
            ..tiny(name)
        }
    }

    #[test]
    fn dataset_workload_round_trips_and_validates() {
        let s = tiny_dataset("ds", "datasets/unit", 3);
        s.validate().unwrap();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);

        let bad = tiny_dataset("ds", "", 3);
        assert!(bad.validate().unwrap_err().to_string().contains("path"));
        let bad = tiny_dataset("ds", "datasets/unit", 0);
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("consumers"));
    }

    #[test]
    fn dataset_extractor_compatibility_is_enforced() {
        // Appliance-level extractors need disaggregate = true.
        let mut s = tiny_dataset("ds", "datasets/unit", 2);
        s.extractor = ExtractorChoice::Frequency;
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("disaggregate"));
        if let Workload::Dataset { disaggregate, .. } = &mut s.workload {
            *disaggregate = true;
        }
        s.validate().unwrap();

        // Multi-tariff has no reference series in the metered format.
        let mut s = tiny_dataset("ds", "datasets/unit", 2);
        s.extractor = ExtractorChoice::MultiTariff;
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("one-tariff reference"));
    }

    #[test]
    fn load_dir_reads_sorted_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("flextract_spec_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["b_two", "a_one"] {
            let s = tiny(name);
            std::fs::write(
                dir.join(format!("{name}.json")),
                serde_json::to_string_pretty(&s).unwrap(),
            )
            .unwrap();
        }
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].name, "a_one");
        assert_eq!(loaded[1].name, "b_two");

        // A stem that does not match the scenario name is an error.
        std::fs::write(
            dir.join("mismatch.json"),
            serde_json::to_string_pretty(&tiny("other_name")).unwrap(),
        )
        .unwrap();
        assert!(load_dir(&dir).is_err());
        std::fs::remove_file(dir.join("mismatch.json")).unwrap();

        // Malformed JSON is a parse error naming the file.
        std::fs::write(dir.join("broken.json"), "{ not json").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("broken.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_an_io_error() {
        assert!(matches!(
            load_dir(Path::new("/definitely/not/a/dir")),
            Err(ScenarioError::Io { .. })
        ));
    }
}
