//! Deterministic fan-out of one scenario's consumers over a sharded
//! worker pool.
//!
//! [`ordered_parallel_map`] is the primitive behind consumer-level
//! parallelism: `n` items are claimed by worker threads through one
//! atomic counter (work-stealing — a slow item never stalls the other
//! workers), but the caller's `consume` closure observes the results in
//! **strict index order**, one at a time, on the calling thread. Because
//! reduction happens in index order with exactly the float operations of
//! a serial loop, a report accumulated through this function is
//! byte-identical at every thread count — determinism comes from seeding
//! per consumer and merging per index, never from scheduling.
//!
//! A bounded reorder window applies backpressure: a worker that raced
//! ahead of the merge frontier parks until the frontier catches up, so a
//! 10k-consumer stress scenario holds `O(threads + window)` in-flight
//! results rather than the whole fleet. The window can never deadlock:
//! the claimant of the lowest outstanding index always satisfies
//! `index < frontier + window` (the window is at least 1), so the item
//! the merger is waiting for is always allowed to complete.
//!
//! The effective worker count is additionally clamped to the host's
//! [`std::thread::available_parallelism`]: oversubscribing a smaller
//! machine is strictly slower (the recorded `BENCH_pipeline.json`
//! baseline showed `consumer_threads: 8` regressing 20–25 % against
//! serial on a 1-core host), and because merge order is pinned by index
//! the clamp cannot change a single report byte — only the wall clock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, Once};

/// Shared reorder state: completed items awaiting their turn, and the
/// merge frontier (`next index the consumer will take`).
struct Reorder<T, E> {
    ready: HashMap<usize, Result<T, E>>,
    frontier: usize,
    /// Set when the run stops early — an item errored, or a thread
    /// panicked; everyone drops pending work instead of parking
    /// forever.
    cancelled: bool,
}

/// Lock the reorder state, shrugging off mutex poisoning: the state's
/// invariants are trivial (a map and two scalars mutated atomically
/// under the lock), and cancellation must keep working *during* a
/// panic unwind or the panic turns into a deadlock.
fn lock<'a, T, E>(state: &'a Mutex<Reorder<T, E>>) -> MutexGuard<'a, Reorder<T, E>> {
    state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Drop guard that cancels the whole run and wakes every parked thread
/// unless explicitly disarmed. Armed around any code that can panic
/// (`produce` on workers, `consume` on the merger): without it, a
/// panicking worker would leave the merger waiting forever for an index
/// that will never arrive, and a panicking merger would leave workers
/// parked on a window that will never advance — either way
/// `std::thread::scope` could not finish joining to re-raise the panic.
struct CancelOnDrop<'a, T, E> {
    state: &'a Mutex<Reorder<T, E>>,
    room: &'a Condvar,
    arrived: &'a Condvar,
    armed: bool,
}

impl<T, E> CancelOnDrop<'_, T, E> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl<T, E> Drop for CancelOnDrop<'_, T, E> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut guard = lock(self.state);
        guard.cancelled = true;
        drop(guard);
        self.room.notify_all();
        self.arrived.notify_all();
    }
}

/// The host's CPU core count, used as the hard ceiling on worker
/// threads; unavailable counts (exotic platforms) leave the request
/// unclamped rather than guessing.
fn hardware_parallelism() -> usize {
    std::thread::available_parallelism().map_or(usize::MAX, |c| c.get())
}

/// The worker count [`ordered_parallel_map`] will actually use for
/// `requested` threads over `n` items: `min(requested,
/// available_parallelism)`, further bounded by the item count and never
/// zero. Exposed so callers (and the regression test pinning the
/// oversubscription fix) can predict the pool size.
pub fn effective_workers(requested: usize, n: usize) -> usize {
    requested.min(hardware_parallelism()).clamp(1, n.max(1))
}

/// Run `produce` over `0..n` on scoped workers, feeding the results to
/// `consume` in strict index order on the calling thread.
///
/// The pool size is [`effective_workers`]`(threads, n)`: requests beyond
/// the host's CPU core count clamp to the core count with a one-time
/// stderr note (the same loud-clamp policy as the CLI's corpus-size
/// clamp), because oversubscription is pure overhead — the workers are
/// CPU-bound and merge order is already pinned by index, so extra
/// threads cannot help and measurably hurt on small hosts.
///
/// The first `Err` — from `produce` (in index order) or from `consume`
/// — cancels the remaining work and is returned. With an effective
/// count of 1 (serial request, single item, or a 1-core host) no worker
/// threads are spawned at all and the loop runs inline, so the serial
/// path is trivially identical.
///
/// # Panics
///
/// A panic in `produce` or `consume` cancels the run (drop guards wake
/// every parked thread) and is re-raised once the worker scope joins —
/// the same observable behaviour as the serial loop, never a deadlock.
pub fn ordered_parallel_map<T, E, P, C>(
    n: usize,
    threads: usize,
    produce: P,
    mut consume: C,
) -> Result<(), E>
where
    T: Send,
    E: Send,
    P: Fn(usize) -> Result<T, E> + Sync,
    C: FnMut(usize, T) -> Result<(), E>,
{
    let requested = threads;
    let threads = effective_workers(requested, n);
    let cores = hardware_parallelism();
    if cores < requested && cores <= n.max(1) {
        // Note the clamp once per process, not once per scenario: a
        // 24-scenario corpus run should explain the slowdown-avoidance
        // once, not spam stderr. Serial defaults (requested == 1) can
        // never reach this branch, so quiet runs stay quiet.
        static OVERSUBSCRIBED: Once = Once::new();
        OVERSUBSCRIBED.call_once(|| {
            eprintln!(
                "warning: {requested} worker thread(s) requested but the host has \
                 {cores} CPU core(s); clamping to {cores}"
            );
        });
    }
    if threads == 1 {
        for i in 0..n {
            consume(i, produce(i)?)?;
        }
        return Ok(());
    }

    // Workers may run at most `window` indices past the merge frontier
    // before parking; sized so the pool stays busy through ordinary
    // per-item cost skew without buffering a whole fleet.
    let window = threads * 4;
    let next_claim = AtomicUsize::new(0);
    let state: Mutex<Reorder<T, E>> = Mutex::new(Reorder {
        ready: HashMap::new(),
        frontier: 0,
        cancelled: false,
    });
    // Workers park on `room` (window full), the merger on `arrived`.
    let room = Condvar::new();
    let arrived = Condvar::new();

    let mut first_error: Option<E> = None;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next_claim.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                {
                    let mut guard = lock(&state);
                    while !guard.cancelled && i >= guard.frontier + window {
                        guard = room
                            .wait(guard)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                    if guard.cancelled {
                        break;
                    }
                }
                // If `produce` panics, the guard cancels the run so the
                // merger stops waiting for index `i`; the scope join
                // then re-raises the panic instead of deadlocking.
                let sentinel = CancelOnDrop {
                    state: &state,
                    room: &room,
                    arrived: &arrived,
                    armed: true,
                };
                let item = produce(i);
                sentinel.disarm();
                let mut guard = lock(&state);
                guard.ready.insert(i, item);
                if i == guard.frontier {
                    arrived.notify_all();
                }
            });
        }

        // The calling thread is the merger: take index `frontier` as
        // soon as it lands and fold it before looking at the next one.
        // The guard covers a panicking `consume` (and any other early
        // unwind through this closure): workers parked on the window
        // must be woken and told to quit, or the scope join hangs.
        let merger_sentinel = CancelOnDrop {
            state: &state,
            room: &room,
            arrived: &arrived,
            armed: true,
        };
        for i in 0..n {
            let item = {
                let mut guard = lock(&state);
                loop {
                    if let Some(item) = guard.ready.remove(&i) {
                        guard.frontier = i + 1;
                        room.notify_all();
                        break Some(item);
                    }
                    // A worker died before delivering `i`: stop
                    // merging; the scope join re-raises its panic.
                    if guard.cancelled {
                        break None;
                    }
                    guard = arrived
                        .wait(guard)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            let Some(item) = item else {
                break;
            };
            let stop = match item {
                Err(e) => Some(e),
                Ok(value) => consume(i, value).err(),
            };
            if let Some(e) = stop {
                first_error = Some(e);
                let mut guard = lock(&state);
                guard.cancelled = true;
                guard.ready.clear();
                drop(guard);
                room.notify_all();
                break;
            }
        }
        // Disarming after a clean break is fine: the error path above
        // has already cancelled and notified by hand (clearing the
        // buffered results too), and normal completion leaves no one
        // parked — every index gets claimed and merged.
        merger_sentinel.disarm();
    });
    match first_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_order_is_index_order_at_any_thread_count() {
        for threads in [1, 2, 3, 7, 16] {
            let mut seen = Vec::new();
            ordered_parallel_map(
                25,
                threads,
                |i| {
                    // Skew the work so completion order scrambles.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((i * 31) % 7) as u64 * 50,
                    ));
                    Ok::<usize, ()>(i * i)
                },
                |i, v| {
                    seen.push((i, v));
                    Ok(())
                },
            )
            .unwrap();
            let expect: Vec<(usize, usize)> = (0..25).map(|i| (i, i * i)).collect();
            assert_eq!(seen, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut calls = 0;
        ordered_parallel_map(
            0,
            8,
            |_| Ok::<(), ()>(()),
            |_, _| {
                calls += 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(calls, 0);
    }

    #[test]
    fn first_error_in_index_order_wins_and_cancels() {
        // Items 5 and 11 both fail; the merger must surface 5 — the
        // same error a serial loop would return — regardless of which
        // worker finished first.
        for threads in [2, 7] {
            let err = ordered_parallel_map(
                64,
                threads,
                |i| {
                    if i == 5 || i == 11 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                },
                |_, _| Ok(()),
            )
            .unwrap_err();
            assert_eq!(err, 5, "threads = {threads}");
        }
    }

    #[test]
    fn consume_error_stops_the_run() {
        let mut merged = Vec::new();
        let err = ordered_parallel_map(40, 4, Ok::<usize, &str>, |i, v| {
            if i == 3 {
                return Err("stop at 3");
            }
            merged.push(v);
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err, "stop at 3");
        assert_eq!(merged, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // Without the cancel guard this would hang forever: the merger
        // waits for index 7, which is never delivered.
        let _ = ordered_parallel_map(
            64,
            4,
            |i| {
                if i == 7 {
                    panic!("boom in produce");
                }
                Ok::<usize, ()>(i)
            },
            |_, _| Ok(()),
        );
    }

    #[test]
    #[should_panic]
    fn merger_panic_propagates_instead_of_deadlocking() {
        // Without the merger guard, workers parked on the reorder
        // window would never be woken and the scope join would hang
        // during the unwind.
        let _ = ordered_parallel_map(256, 4, Ok::<usize, ()>, |i, _| {
            if i == 3 {
                panic!("boom in consume");
            }
            Ok(())
        });
    }

    #[test]
    fn effective_workers_clamps_to_host_cores_items_and_one() {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        // The hardware ceiling: a request far beyond the host's core
        // count never produces more workers than cores.
        assert_eq!(effective_workers(cores + 64, 1000), cores.min(1000));
        // The item-count ceiling and the floor of one survive unchanged.
        assert_eq!(effective_workers(8, 1), 1);
        assert_eq!(effective_workers(0, 10), 1);
        assert_eq!(effective_workers(1, 0), 1);
        assert!(effective_workers(usize::MAX, usize::MAX) <= cores);
    }

    #[test]
    fn hardware_clamp_applies_while_reports_stay_byte_identical() {
        // The oversubscription bugfix: requesting far more threads than
        // the host has cores must (a) actually shrink the pool and (b)
        // leave the merged result bit-for-bit what the serial loop
        // produces — the clamp is a pure wall-clock optimisation.
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let n = 64;
        let worker_ids = Mutex::new(std::collections::HashSet::new());
        let mut folded = 0.0f64;
        ordered_parallel_map(
            n,
            cores + 13,
            |i| {
                lock_ids(&worker_ids).insert(std::thread::current().id());
                Ok::<f64, ()>((i as f64) * 0.1 + 1.0 / (i as f64 + 1.0))
            },
            |_, v| {
                folded += v;
                Ok(())
            },
        )
        .unwrap();
        let mut serial = 0.0f64;
        for i in 0..n {
            serial += (i as f64) * 0.1 + 1.0 / (i as f64 + 1.0);
        }
        assert_eq!(folded.to_bits(), serial.to_bits());
        let distinct = lock_ids(&worker_ids).len();
        assert!(
            distinct <= effective_workers(cores + 13, n),
            "spawned {distinct} distinct workers, clamp allows {}",
            effective_workers(cores + 13, n)
        );
        assert!(distinct <= cores, "pool exceeded the host core count");
    }

    fn lock_ids(
        ids: &Mutex<std::collections::HashSet<std::thread::ThreadId>>,
    ) -> MutexGuard<'_, std::collections::HashSet<std::thread::ThreadId>> {
        ids.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn window_backpressure_bounds_in_flight_results() {
        // With 2 threads the window is 8: no completed-but-unmerged
        // index may ever exceed frontier + window. Track the high-water
        // mark of (produced index − merge frontier) via the consume
        // callback's view of arrival order.
        let n = 200;
        let produced = AtomicUsize::new(0);
        let mut max_ahead = 0usize;
        let mut merged = 0usize;
        ordered_parallel_map(
            n,
            2,
            |i| {
                produced.fetch_add(1, Ordering::Relaxed);
                Ok::<usize, ()>(i)
            },
            |_, _| {
                merged += 1;
                let ahead = produced.load(Ordering::Relaxed).saturating_sub(merged);
                max_ahead = max_ahead.max(ahead);
                Ok(())
            },
        )
        .unwrap();
        // window (8) + threads in flight (2) is the hard ceiling.
        assert!(max_ahead <= 8 + 2, "max_ahead = {max_ahead}");
    }
}
