//! The structured result of one scenario run.
//!
//! [`ScenarioReport`] holds only *deterministic* pipeline metrics — it
//! is what the golden-file suite snapshots — while [`ScenarioOutcome`]
//! wraps it together with the measured wall time and the raw offers,
//! which vary run to run and are therefore kept out of the snapshot.

use flextract_dataset::CleaningReport;
use flextract_eval::FidelityReport;
use flextract_flexoffer::FlexOffer;
use serde::{Deserialize, Serialize};

/// Ingestion-stage metrics (present for dataset-backed workloads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestionReport {
    /// Resolution of the measured series on disk (minutes) — the
    /// market series is resampled from this.
    pub source_resolution_min: i64,
    /// Fleet-wide cleaning tally (per-consumer tallies summed).
    pub cleaning: CleaningReport,
    /// Appliance cycles recovered by the disaggregation stage (0 when
    /// the workload does not disaggregate).
    pub disagg_detections: usize,
    /// Energy the disaggregation attributed to appliances (kWh).
    pub disagg_explained_kwh: f64,
}

impl IngestionReport {
    /// An empty tally at the given source resolution.
    pub fn new(source_resolution_min: i64) -> Self {
        IngestionReport {
            source_resolution_min,
            cleaning: CleaningReport::default(),
            disagg_detections: 0,
            disagg_explained_kwh: 0.0,
        }
    }

    /// Merge one consumer's cleaning tally into the fleet tally.
    pub fn absorb_cleaning(&mut self, cleaning: &CleaningReport) {
        self.cleaning.absorb(cleaning);
    }
}

/// Aggregation-stage metrics (present when the policy aggregates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationReport {
    /// Macro offers after aggregation.
    pub aggregates: usize,
    /// Mean members per aggregate.
    pub compression: f64,
    /// Total time flexibility lost to aggregation (hours).
    pub flexibility_loss_h: f64,
}

/// Scheduling-stage metrics (present when the policy schedules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Squared-imbalance improvement from scheduling (fraction).
    pub imbalance_improvement: f64,
    /// RES utilisation after scheduling.
    pub res_utilisation: f64,
}

/// Deterministic metrics of one simulate→extract→aggregate→evaluate
/// run. Identical seeds and specs produce byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The scenario that produced this report.
    pub name: String,
    /// Simulated consumers (households + industrial sites).
    pub consumers: usize,
    /// Market intervals in the horizon at the scenario resolution.
    pub intervals: usize,
    /// Market resolution in minutes.
    pub resolution_min: i64,
    /// Total simulated consumption (kWh).
    pub total_energy_kwh: f64,
    /// Ground-truth flexible consumption (kWh).
    pub true_flexible_kwh: f64,
    /// Flex-offers extracted across the workload.
    pub offers: usize,
    /// Energy the extraction called flexible (kWh).
    pub extracted_kwh: f64,
    /// `extracted / total`.
    pub achieved_share: f64,
    /// Interval-level energy precision against the ground truth.
    pub precision: f64,
    /// Interval-level energy recall against the ground truth.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Highest-consumption interval before extraction (kWh).
    pub peak_before_kwh: f64,
    /// Highest interval of the modified (residual) series (kWh).
    pub peak_after_kwh: f64,
    /// `1 − peak_after / peak_before` — how much of the workload peak
    /// the extraction could shift away.
    pub peak_reduction: f64,
    /// Aggregation metrics, when the policy aggregated.
    pub aggregation: Option<AggregationReport>,
    /// Scheduling metrics, when the policy scheduled.
    pub schedule: Option<ScheduleReport>,
    /// Ingestion metrics, when the workload is dataset-backed.
    pub ingestion: Option<IngestionReport>,
    /// Measured-vs-ground-truth fidelity, when the dataset carries the
    /// simulator ground truth it was exported with.
    pub fidelity: Option<FidelityReport>,
}

impl ScenarioReport {
    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{}: {} consumers, {} offers, {:.2} of {:.2} kWh extracted \
             ({:.2} % share, P {:.2} R {:.2}, peak −{:.1} %)",
            self.name,
            self.consumers,
            self.offers,
            self.extracted_kwh,
            self.total_energy_kwh,
            self.achieved_share * 100.0,
            self.precision,
            self.recall,
            self.peak_reduction * 100.0,
        );
        if let Some(agg) = &self.aggregation {
            line.push_str(&format!(
                ", {} aggregates (×{:.1})",
                agg.aggregates, agg.compression
            ));
        }
        if let Some(sched) = &self.schedule {
            line.push_str(&format!(
                ", schedule +{:.1} % (RES use {:.2})",
                sched.imbalance_improvement * 100.0,
                sched.res_utilisation
            ));
        }
        if let Some(ing) = &self.ingestion {
            line.push_str(&format!(
                ", ingested @{} min ({} gaps filled, {} anomalies screened)",
                ing.source_resolution_min,
                ing.cleaning.gaps_filled,
                ing.cleaning.anomalies_screened
            ));
        }
        if let Some(fid) = &self.fidelity {
            line.push_str(&format!(
                ", fidelity Δ{:+.2} kWh / Δ{:+} offers vs ground truth",
                fid.extracted_kwh_delta, fid.offer_delta
            ));
        }
        line
    }
}

/// A finished run: the snapshot-stable report plus per-run artifacts.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The deterministic metrics (golden-file payload).
    pub report: ScenarioReport,
    /// The extracted flex-offers themselves.
    pub offers: Vec<FlexOffer>,
    /// Wall-clock time of the run in milliseconds (not deterministic;
    /// excluded from the snapshot).
    pub wall_time_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ScenarioReport {
        ScenarioReport {
            name: "unit".into(),
            consumers: 3,
            intervals: 96,
            resolution_min: 15,
            total_energy_kwh: 100.0,
            true_flexible_kwh: 8.0,
            offers: 12,
            extracted_kwh: 5.0,
            achieved_share: 0.05,
            precision: 0.5,
            recall: 0.3125,
            f1: 0.3846,
            peak_before_kwh: 2.5,
            peak_after_kwh: 2.0,
            peak_reduction: 0.2,
            aggregation: Some(AggregationReport {
                aggregates: 3,
                compression: 4.0,
                flexibility_loss_h: 1.5,
            }),
            schedule: None,
            ingestion: None,
            fidelity: None,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn summary_mentions_the_load_bearing_numbers() {
        let s = report().summary();
        assert!(s.contains("unit"));
        assert!(s.contains("12 offers"));
        assert!(s.contains("aggregates"));
        let mut r = report();
        r.aggregation = None;
        r.schedule = Some(ScheduleReport {
            imbalance_improvement: 0.25,
            res_utilisation: 0.8,
        });
        assert!(r.summary().contains("schedule"));
    }

    #[test]
    fn summary_mentions_ingestion_and_fidelity_when_present() {
        let mut r = report();
        let mut ing = IngestionReport::new(15);
        ing.absorb_cleaning(&flextract_dataset::CleaningReport {
            gaps_filled: 7,
            anomalies_screened: 2,
            anomalous_intervals: 5,
            screened_kwh: 1.25,
        });
        assert_eq!(ing.cleaning.gaps_filled, 7);
        r.ingestion = Some(ing);
        r.fidelity = Some(FidelityReport::compare(4.5, 9, 5.0, 12));
        let s = r.summary();
        assert!(s.contains("7 gaps filled"), "{s}");
        assert!(s.contains("fidelity"), "{s}");
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
