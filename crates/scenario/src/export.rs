//! Deterministic export of a simulated fleet to the metered format.
//!
//! [`export_dataset`] simulates every consumer of a (simulated)
//! scenario at native resolution, runs the series through the
//! configured [`Degradation`] with a per-consumer-index seeded RNG, and
//! writes the result as an on-disk dataset — measured series plus the
//! undegraded ground truth (total and flexible), which is what later
//! lets dataset-backed runs report measured-vs-truth fidelity.
//!
//! The export is a pure function of `(scenario, options)`: the
//! simulator is seeded by the scenario, the degradation by
//! `options.seed` (defaulting to the scenario seed) XOR the consumer
//! index. Committed corpus datasets are therefore regenerable byte for
//! byte and CI-gated exactly like golden files.

use crate::source::SimulatedSource;
use crate::spec::{ExtractorChoice, Scenario, Workload};
use crate::{ScenarioError, CONSUMER_SEED_STRIDE};
use flextract_appliance::Catalog;
use flextract_dataset::{DatasetWriter, Degradation, SeriesCodec, ShardedWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// Seed-stream separation between the exporter's degradation draws and
/// the runner's extraction draws.
const EXPORT_SEED_SALT: u64 = 0xDA7A_0000_EC5B_0000;

/// Export-time options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportOptions {
    /// The degradation applied to every consumer (default: identity).
    pub degradation: Degradation,
    /// Series file encoding (default: FXM3 binary — the same per-chunk
    /// statistics and footer chunk index as FXM2, with payloads
    /// XOR-compressed losslessly, so readers keep ranged and pushdown
    /// scans on a smaller file; `Binary` for uncompressed FXM2, `Csv`
    /// for a readable export, `BinaryV1` as the legacy escape hatch).
    pub codec: SeriesCodec,
    /// Degradation RNG base seed (default: the scenario's seed).
    pub seed: Option<u64>,
    /// Write the undegraded ground-truth series alongside the measured
    /// ones (default: true; turn off to produce a dataset shaped like
    /// real metered data, which has no ground truth).
    pub include_truth: bool,
    /// Export to the sharded layout with this many consumers per shard
    /// (default: `None` — the legacy single-manifest layout). Large
    /// fleets should shard: readers then open `O(shards)` metadata and
    /// prune whole shards from the per-shard statistics roll-ups.
    pub shard_capacity: Option<usize>,
}

impl Default for ExportOptions {
    fn default() -> Self {
        ExportOptions {
            degradation: Degradation::default(),
            codec: SeriesCodec::BinaryV3,
            seed: None,
            include_truth: true,
            shard_capacity: None,
        }
    }
}

/// The layout-dispatched export sink: one legacy manifest, or the
/// sharded store. Both stream consumer by consumer and stay
/// memory-light.
#[derive(Debug)]
// Both variants boxed: the writers carry manifest and per-shard
// roll-up state, and the enum lives on the export stack frame.
enum ExportWriter {
    Flat(Box<DatasetWriter>),
    Sharded(Box<ShardedWriter>),
}

impl ExportWriter {
    fn set_provenance(&mut self, scenario: &str, degradation: Degradation, seed: u64) {
        match self {
            ExportWriter::Flat(w) => w.set_provenance(scenario, degradation, seed),
            ExportWriter::Sharded(w) => w.set_provenance(scenario, degradation, seed),
        }
    }

    fn write_consumer(
        &mut self,
        id: &str,
        kind: flextract_dataset::ConsumerKind,
        measured: &flextract_dataset::MeasuredSeries,
        truth_total: Option<&flextract_series::TimeSeries>,
        truth_flex: Option<&flextract_series::TimeSeries>,
    ) -> Result<(), flextract_dataset::DatasetError> {
        match self {
            ExportWriter::Flat(w) => w.write_consumer(id, kind, measured, truth_total, truth_flex),
            ExportWriter::Sharded(w) => {
                w.write_consumer(id, kind, measured, truth_total, truth_flex)
            }
        }
    }

    fn finish(self) -> Result<(), flextract_dataset::DatasetError> {
        match self {
            ExportWriter::Flat(w) => w.finish().map(|_| ()),
            ExportWriter::Sharded(w) => w.finish().map(|_| ()),
        }
    }
}

/// What an export produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportSummary {
    /// The dataset directory.
    pub dir: PathBuf,
    /// Consumers written.
    pub consumers: usize,
    /// Intervals per measured series (post-degradation grid).
    pub intervals: usize,
    /// Measured resolution in minutes (post-degradation grid).
    pub resolution_min: i64,
    /// Total injected gaps across the fleet.
    pub gap_count: usize,
}

/// Export `scenario`'s simulated fleet to `dir` as a metered dataset.
///
/// Only simulated workloads are exportable; multi-tariff scenarios are
/// rejected because their reference series is a second simulation of
/// the same consumer, which the metered format cannot carry. All
/// consumers must land on one grid after degradation: a `Mixed`
/// workload (1-min households next to 15-min industrial sites) needs a
/// `degradation.resolution_min` coarse enough to unify them.
pub fn export_dataset(
    scenario: &Scenario,
    dir: &Path,
    options: &ExportOptions,
) -> Result<ExportSummary, ScenarioError> {
    scenario.validate()?;
    let invalid = |what: String| ScenarioError::Invalid {
        scenario: scenario.name.clone(),
        what,
    };
    if matches!(scenario.workload, Workload::Dataset { .. }) {
        return Err(invalid(
            "cannot export a dataset-backed scenario (it has no simulator to export)".into(),
        ));
    }
    if scenario.extractor == ExtractorChoice::MultiTariff {
        return Err(invalid(
            "cannot export a multi-tariff scenario (its one-tariff reference is a second \
             simulation of the same consumer, which the metered format cannot carry)"
                .into(),
        ));
    }
    options
        .degradation
        .validate()
        .map_err(|what| invalid(format!("degradation: {what}")))?;

    let horizon = scenario.horizon()?;
    let res = scenario.resolution()?;
    let catalog = Catalog::extended();
    let source = SimulatedSource::new(scenario, horizon, res, &catalog);
    let seed = options.seed.unwrap_or(scenario.seed);

    let mut writer: Option<ExportWriter> = None;
    let mut gap_count = 0;
    let mut intervals = 0;
    let mut resolution_min = 0;
    for idx in 0..source.len() {
        let raw = source.raw(idx);
        let mut rng = StdRng::seed_from_u64(
            seed ^ (idx as u64).wrapping_mul(CONSUMER_SEED_STRIDE) ^ EXPORT_SEED_SALT,
        );
        let measured = options.degradation.apply(&raw.total, &mut rng)?;
        let w = match &mut writer {
            Some(w) => w,
            None => {
                intervals = measured.len();
                resolution_min = measured.resolution().minutes();
                let mut w = match options.shard_capacity {
                    None => ExportWriter::Flat(Box::new(DatasetWriter::create(
                        dir,
                        &scenario.name,
                        &scenario.description,
                        measured.start(),
                        measured.resolution(),
                        measured.len(),
                        options.codec,
                    )?)),
                    Some(capacity) => ExportWriter::Sharded(Box::new(ShardedWriter::create(
                        dir,
                        &scenario.name,
                        &scenario.description,
                        measured.start(),
                        measured.resolution(),
                        measured.len(),
                        options.codec,
                        capacity,
                    )?)),
                };
                w.set_provenance(&scenario.name, options.degradation.clone(), seed);
                writer.insert(w)
            }
        };
        gap_count += measured.gap_count();
        let (truth_total, truth_flex) = if options.include_truth {
            (Some(&raw.total), Some(&raw.flexible))
        } else {
            (None, None)
        };
        w.write_consumer(
            &idx.to_string(),
            raw.kind,
            &measured,
            truth_total,
            truth_flex,
        )
        .map_err(|e| match e {
            // A grid mismatch here means the workload's consumers
            // have different native resolutions — say so, instead
            // of surfacing a bare file error.
            flextract_dataset::DatasetError::Invalid { what, .. } => invalid(format!(
                "consumer {idx} does not share the fleet grid ({what}); \
                     a Mixed workload needs degradation.resolution_min >= 15 \
                     to unify 1-min households with 15-min industrial sites"
            )),
            other => other.into(),
        })?;
    }
    let writer = writer.expect("validation guarantees at least one consumer");
    writer.finish()?;
    Ok(ExportSummary {
        dir: dir.to_path_buf(),
        consumers: source.len(),
        intervals,
        resolution_min,
        gap_count,
    })
}
