//! Executes scenarios: (simulate | ingest) → extract → aggregate →
//! evaluate.
//!
//! Parallelism happens on two levels, both deterministic:
//!
//! * **Across scenarios** — [`ScenarioRunner::run_all`] fans the corpus
//!   out over `threads` scoped workers with a work-stealing index
//!   queue (scenario costs are highly skewed).
//! * **Within one scenario** — the consumers of a single workload are
//!   fanned across `consumer_threads` shard workers (see
//!   [`crate::shard`]), while the per-consumer results are folded into
//!   the report in **strict consumer index order** on the merging
//!   thread. Extraction RNGs are seeded per consumer index — never per
//!   worker — so a report is byte-identical at every thread count,
//!   which is what keeps the `tests/golden/` snapshots stable.
//!
//! Consumers come from a [`crate::source::ConsumerSource`]: simulated
//! on demand, or ingested from an on-disk dataset (cleaned, optionally
//! disaggregated). Both satisfy the same random-access contract, so the
//! sharding and the ordered merge apply unchanged. Dataset-backed runs
//! with ground truth additionally run the **fidelity leg**: the same
//! extractor on the undegraded series, merged with the same index
//! ordering, so the measured-vs-truth deltas are as deterministic as
//! everything else in the report.
//!
//! Memory stays flat in the fleet size: consumers are built on demand
//! and dropped after merging, with the shard window bounding how many
//! finished consumers can await their merge turn.

use crate::report::{
    AggregationReport, IngestionReport, ScenarioOutcome, ScenarioReport, ScheduleReport,
};
use crate::shard::ordered_parallel_map;
use crate::source::{ConsumerInput, ConsumerSource};
use crate::spec::{AggregationPolicy, ExtractorChoice, Scenario};
use crate::{ScenarioError, CONSUMER_SEED_STRIDE};
use flextract_agg::{aggregate_offers, schedule_offers, AggregationConfig, ScheduleConfig};
use flextract_appliance::Catalog;
use flextract_core::{
    BasicExtractor, ExtractionConfig, ExtractionInput, ExtractionOutput, FlexibilityExtractor,
    FrequencyBasedExtractor, MultiTariffExtractor, PeakExtractor, RandomExtractor,
    ScheduleBasedExtractor,
};
use flextract_eval::{FidelityReport, GroundTruthScore};
use flextract_flexoffer::FlexOffer;
use flextract_series::TimeSeries;
use flextract_sim::{simulate_wind_production, WindFarmConfig};
use flextract_time::{Resolution, TimeRange};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Runs scenarios, fanning out across worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRunner {
    /// Worker threads for [`ScenarioRunner::run_all`] (1 = serial;
    /// capped at the scenario count). Has no effect on the reports.
    pub threads: usize,
    /// Worker threads *inside* one scenario: the consumers of a single
    /// workload are sharded across this many workers (1 = serial;
    /// capped at the consumer count). Has no effect on the reports —
    /// per-consumer results merge in fixed index order.
    pub consumer_threads: usize,
}

impl Default for ScenarioRunner {
    fn default() -> Self {
        ScenarioRunner {
            threads: 4,
            consumer_threads: 1,
        }
    }
}

/// Streaming accumulator over the per-consumer extraction outputs.
/// Feed it in consumer index order and the folded series are bit-equal
/// to a serial loop's, whatever produced the inputs.
struct Accumulator {
    total: Option<TimeSeries>,
    truth: Option<TimeSeries>,
    extracted: Option<TimeSeries>,
    modified: Option<TimeSeries>,
    offers: Vec<FlexOffer>,
    ingestion: Option<IngestionReport>,
    /// Fidelity-leg tallies: energy/offers extracted from the measured
    /// and ground-truth series, and how many consumers carried ground
    /// truth. Both energy sides sum per consumer in the same order, so
    /// an identity export yields a delta of exactly 0.0 (the merged
    /// `extracted` series associates its additions differently and can
    /// drift in the last ulp).
    fidelity_measured_kwh: f64,
    fidelity_truth_kwh: f64,
    fidelity_truth_offers: usize,
    fidelity_consumers: usize,
}

impl Accumulator {
    fn new(source_resolution_min: Option<i64>) -> Self {
        Accumulator {
            total: None,
            truth: None,
            extracted: None,
            modified: None,
            offers: Vec::new(),
            ingestion: source_resolution_min.map(IngestionReport::new),
            fidelity_measured_kwh: 0.0,
            fidelity_truth_kwh: 0.0,
            fidelity_truth_offers: 0,
            fidelity_consumers: 0,
        }
    }

    fn add_series(acc: &mut Option<TimeSeries>, s: &TimeSeries) -> Result<(), ScenarioError> {
        match acc {
            None => *acc = Some(s.clone()),
            Some(a) => a.add_assign(s)?,
        }
        Ok(())
    }

    fn add(
        &mut self,
        consumer: &ConsumerInput,
        out: ExtractionOutput,
        fidelity_out: Option<ExtractionOutput>,
    ) -> Result<(), ScenarioError> {
        Self::add_series(&mut self.total, &consumer.market)?;
        Self::add_series(&mut self.truth, &consumer.truth)?;
        Self::add_series(&mut self.extracted, &out.extracted_series)?;
        Self::add_series(&mut self.modified, &out.modified_series)?;
        let measured_kwh = out.extracted_energy();
        self.offers.extend(out.flex_offers);
        if let (Some(ingestion), Some(cleaning)) = (&mut self.ingestion, &consumer.cleaning) {
            ingestion.absorb_cleaning(cleaning);
            ingestion.disagg_detections += consumer.disagg_detections;
            ingestion.disagg_explained_kwh += consumer.disagg_explained_kwh;
        }
        if let Some(fid) = fidelity_out {
            self.fidelity_measured_kwh += measured_kwh;
            self.fidelity_truth_kwh += fid.extracted_energy();
            self.fidelity_truth_offers += fid.flex_offers.len();
            self.fidelity_consumers += 1;
        }
        Ok(())
    }
}

impl ScenarioRunner {
    /// A runner with the given scenario-level worker-thread count.
    ///
    /// Zero is clamped to 1 as a library-level backstop; the CLI
    /// rejects `--threads 0` before it gets here so users see a real
    /// message instead of a silent clamp.
    pub fn with_threads(threads: usize) -> Self {
        ScenarioRunner {
            threads: threads.max(1),
            ..ScenarioRunner::default()
        }
    }

    /// This runner with `consumer_threads` workers inside each scenario
    /// (zero is clamped to 1, same contract as
    /// [`ScenarioRunner::with_threads`]).
    pub fn with_consumer_threads(mut self, consumer_threads: usize) -> Self {
        self.consumer_threads = consumer_threads.max(1);
        self
    }

    /// Execute one scenario end to end.
    pub fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
        let started = Instant::now();
        scenario.validate()?;
        let horizon = scenario.horizon()?;
        let res = scenario.resolution()?;
        let cfg = ExtractionConfig {
            flexible_share: scenario.flexible_share,
            slice_resolution: res,
            ..ExtractionConfig::default()
        };
        cfg.validate()?;
        let extractor: Box<dyn FlexibilityExtractor> = match scenario.extractor {
            ExtractorChoice::Random => Box::new(RandomExtractor::new(cfg)),
            ExtractorChoice::Basic => Box::new(BasicExtractor::new(cfg)),
            ExtractorChoice::Peak => Box::new(PeakExtractor::new(cfg)),
            ExtractorChoice::MultiTariff => Box::new(MultiTariffExtractor::new(cfg)),
            ExtractorChoice::Frequency => Box::new(FrequencyBasedExtractor::new(cfg)),
            ExtractorChoice::Schedule => Box::new(ScheduleBasedExtractor::new(cfg)),
        };

        let catalog = Catalog::extended();
        let source = ConsumerSource::new(scenario, horizon, res, &catalog)?;
        let extractor: &dyn FlexibilityExtractor = extractor.as_ref();
        let mut acc = Accumulator::new(source.source_resolution_min());
        let consumers = source.len();
        ordered_parallel_map(
            consumers,
            self.consumer_threads,
            |idx| {
                let consumer = source.consumer(idx)?;
                let mut input = ExtractionInput::household(&consumer.market);
                if let Some(fine) = &consumer.fine {
                    input = input.with_fine_series(fine).with_catalog(&catalog);
                }
                if let Some(reference) = &consumer.reference {
                    input = input.with_reference(reference);
                }
                // Seeded per consumer *index*, never per worker: the
                // offer stream is independent of scheduling.
                let mut rng = StdRng::seed_from_u64(
                    scenario.seed ^ (idx as u64).wrapping_mul(CONSUMER_SEED_STRIDE),
                );
                let out = extractor.extract(&input, &mut rng)?;
                // The fidelity leg: the same extractor on the
                // undegraded ground-truth series, re-seeded with the
                // *same* per-index seed — a paired comparison that
                // controls the stochastic-extractor variable, so an
                // identity export measures exactly zero delta and a
                // degraded one measures pure degradation effect.
                let fidelity_out = match &consumer.fidelity_market {
                    None => None,
                    Some(truth_total) => {
                        let mut input = ExtractionInput::household(truth_total);
                        if let Some(fine) = &consumer.fidelity_fine {
                            input = input.with_fine_series(fine).with_catalog(&catalog);
                        }
                        let mut rng = StdRng::seed_from_u64(
                            scenario.seed ^ (idx as u64).wrapping_mul(CONSUMER_SEED_STRIDE),
                        );
                        Some(extractor.extract(&input, &mut rng)?)
                    }
                };
                Ok((consumer, out, fidelity_out))
            },
            |_, (consumer, out, fidelity_out)| acc.add(&consumer, out, fidelity_out),
        )?;

        // `validate` guarantees at least one consumer.
        let total = acc.total.expect("workloads are non-empty");
        let truth = acc.truth.expect("workloads are non-empty");
        let extracted = acc.extracted.expect("workloads are non-empty");
        let modified = acc.modified.expect("workloads are non-empty");

        let score = GroundTruthScore::score(&extracted, &truth);
        let peak_before = total.argmax().map_or(0.0, |(_, v)| v);
        let peak_after = modified.argmax().map_or(0.0, |(_, v)| v);
        let (aggregation, schedule) =
            self.downstream(scenario, horizon, res, &acc.offers, &total, &modified)?;

        // The fidelity section compares like with like, so it appears
        // only when *every* consumer carried a ground-truth series.
        // Both energy sides are the per-consumer paired tallies, not
        // `extracted.total_energy()` — same summation order on both
        // legs is what makes an identity export's delta exactly 0.0.
        let fidelity = (acc.fidelity_consumers == consumers).then(|| {
            FidelityReport::compare(
                acc.fidelity_measured_kwh,
                acc.offers.len(),
                acc.fidelity_truth_kwh,
                acc.fidelity_truth_offers,
            )
        });

        let total_energy = total.total_energy();
        let report = ScenarioReport {
            name: scenario.name.clone(),
            consumers: scenario.workload.consumers(),
            intervals: total.len(),
            resolution_min: res.minutes(),
            total_energy_kwh: total_energy,
            true_flexible_kwh: truth.total_energy(),
            offers: acc.offers.len(),
            extracted_kwh: extracted.total_energy(),
            achieved_share: if total_energy > 0.0 {
                extracted.total_energy() / total_energy
            } else {
                0.0
            },
            precision: score.precision,
            recall: score.recall,
            f1: score.f1(),
            peak_before_kwh: peak_before,
            peak_after_kwh: peak_after,
            peak_reduction: if peak_before > 0.0 {
                1.0 - peak_after / peak_before
            } else {
                0.0
            },
            aggregation,
            schedule,
            ingestion: acc.ingestion,
            fidelity,
        };
        Ok(ScenarioOutcome {
            report,
            offers: acc.offers,
            wall_time_ms: started.elapsed().as_millis() as u64,
        })
    }

    /// Aggregation + scheduling per the scenario's policy. Extraction
    /// runs that found nothing (an empty offer set) skip both stages.
    fn downstream(
        &self,
        scenario: &Scenario,
        horizon: TimeRange,
        res: Resolution,
        offers: &[FlexOffer],
        total: &TimeSeries,
        modified: &TimeSeries,
    ) -> Result<(Option<AggregationReport>, Option<ScheduleReport>), ScenarioError> {
        if scenario.aggregation == AggregationPolicy::None || offers.is_empty() {
            return Ok((None, None));
        }
        let aggregates = aggregate_offers(offers, &AggregationConfig::default())?;
        let agg_report = AggregationReport {
            aggregates: aggregates.len(),
            compression: offers.len() as f64 / aggregates.len().max(1) as f64,
            flexibility_loss_h: aggregates
                .iter()
                .map(|a| a.flexibility_loss().as_hours_f64())
                .sum(),
        };
        if scenario.aggregation != AggregationPolicy::Schedule {
            return Ok((Some(agg_report), None));
        }
        let mean_kw = total.total_energy() / horizon.duration().as_hours_f64().max(1e-9);
        let farm = WindFarmConfig {
            capacity_kw: scenario.res_capacity_share * mean_kw,
            seed: scenario.seed ^ 0xCAFE,
            ..WindFarmConfig::default()
        };
        let production = simulate_wind_production(&farm, horizon, res);
        let agg_offers: Vec<FlexOffer> = aggregates.iter().map(|a| a.offer.clone()).collect();
        let result = schedule_offers(
            &agg_offers,
            modified,
            &production,
            &ScheduleConfig::default(),
            &mut StdRng::seed_from_u64(scenario.seed ^ 0xBEEF),
        )?;
        let sched_report = ScheduleReport {
            imbalance_improvement: result.improvement(),
            res_utilisation: result.after.res_utilisation,
        };
        Ok((Some(agg_report), Some(sched_report)))
    }

    /// Execute every scenario, fanned out across `self.threads` scoped
    /// threads; results come back in input order.
    pub fn run_all(&self, scenarios: &[Scenario]) -> Vec<Result<ScenarioOutcome, ScenarioError>> {
        if scenarios.is_empty() {
            return Vec::new();
        }
        let results: Mutex<Vec<(usize, Result<ScenarioOutcome, ScenarioError>)>> =
            Mutex::new(Vec::with_capacity(scenarios.len()));
        let threads = self.threads.clamp(1, scenarios.len());
        // Work-stealing queue rather than static chunks: scenario cost
        // is highly skewed (a 10k-household stress run next to single
        // consumer-days), so workers pull the next index as they free
        // up. Results are keyed by index, so scheduling order never
        // affects the returned order (or the reports — each run merges
        // its consumers in index order).
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let results = &results;
                let next = &next;
                let runner = *self;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(scenario) = scenarios.get(i) else {
                        break;
                    };
                    let outcome = runner.run(scenario);
                    results.lock().push((i, outcome));
                });
            }
        });
        let mut indexed = results.into_inner();
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}
