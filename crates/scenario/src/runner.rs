//! Executes scenarios: simulate → extract → aggregate → evaluate.
//!
//! Parallelism happens on two levels, both deterministic:
//!
//! * **Across scenarios** — [`ScenarioRunner::run_all`] fans the corpus
//!   out over `threads` scoped workers with a work-stealing index
//!   queue (scenario costs are highly skewed).
//! * **Within one scenario** — the consumers of a single workload are
//!   fanned across `consumer_threads` shard workers (see
//!   [`crate::shard`]), while the per-consumer results are folded into
//!   the report in **strict consumer index order** on the merging
//!   thread. Extraction RNGs are seeded per consumer index — never per
//!   worker — so a report is byte-identical at every thread count,
//!   which is what keeps the `tests/golden/` snapshots stable.
//!
//! Memory stays flat in the fleet size: consumers are simulated on
//! demand and dropped after merging, with the shard window bounding how
//! many finished consumers can await their merge turn. A 10k-household
//! stress scenario holds `O(consumer_threads)` households at a time.

use crate::report::{AggregationReport, ScenarioOutcome, ScenarioReport, ScheduleReport};
use crate::shard::ordered_parallel_map;
use crate::spec::{AggregationPolicy, ExtractorChoice, Scenario, Workload};
use crate::ScenarioError;
use flextract_agg::{aggregate_offers, schedule_offers, AggregationConfig, ScheduleConfig};
use flextract_appliance::Catalog;
use flextract_core::{
    BasicExtractor, ExtractionConfig, ExtractionInput, ExtractionOutput, FlexibilityExtractor,
    FrequencyBasedExtractor, MultiTariffExtractor, PeakExtractor, RandomExtractor,
    ScheduleBasedExtractor,
};
use flextract_eval::GroundTruthScore;
use flextract_flexoffer::FlexOffer;
use flextract_series::{resample, TimeSeries};
use flextract_sim::{
    simulate_household_with_catalog, simulate_industrial, simulate_tariff_pair,
    simulate_wind_production, FleetConfig, HouseholdArchetype, IndustrialConfig,
    SimulatedHousehold, TariffResponse, WindFarmConfig,
};
use flextract_time::{Duration, Resolution, TimeRange};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Runs scenarios, fanning out across worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRunner {
    /// Worker threads for [`ScenarioRunner::run_all`] (1 = serial;
    /// capped at the scenario count). Has no effect on the reports.
    pub threads: usize,
    /// Worker threads *inside* one scenario: the consumers of a single
    /// workload are sharded across this many workers (1 = serial;
    /// capped at the consumer count). Has no effect on the reports —
    /// per-consumer results merge in fixed index order.
    pub consumer_threads: usize,
}

impl Default for ScenarioRunner {
    fn default() -> Self {
        ScenarioRunner {
            threads: 4,
            consumer_threads: 1,
        }
    }
}

/// Everything the extraction stage needs for one consumer.
struct ConsumerInput {
    /// Observed consumption at the market resolution.
    market: TimeSeries,
    /// Ground-truth flexible consumption at the market resolution.
    truth: TimeSeries,
    /// 1-min fine series (households only; appliance-level extractors).
    fine: Option<TimeSeries>,
    /// One-tariff reference series (multi-tariff extractor only).
    reference: Option<TimeSeries>,
}

/// Streaming accumulator over the per-consumer extraction outputs.
/// Feed it in consumer index order and the folded series are bit-equal
/// to a serial loop's, whatever produced the inputs.
struct Accumulator {
    total: Option<TimeSeries>,
    truth: Option<TimeSeries>,
    extracted: Option<TimeSeries>,
    modified: Option<TimeSeries>,
    offers: Vec<FlexOffer>,
}

impl Accumulator {
    fn new() -> Self {
        Accumulator {
            total: None,
            truth: None,
            extracted: None,
            modified: None,
            offers: Vec::new(),
        }
    }

    fn add_series(acc: &mut Option<TimeSeries>, s: &TimeSeries) -> Result<(), ScenarioError> {
        match acc {
            None => *acc = Some(s.clone()),
            Some(a) => a.add_assign(s)?,
        }
        Ok(())
    }

    fn add(
        &mut self,
        consumer: &ConsumerInput,
        out: ExtractionOutput,
    ) -> Result<(), ScenarioError> {
        Self::add_series(&mut self.total, &consumer.market)?;
        Self::add_series(&mut self.truth, &consumer.truth)?;
        Self::add_series(&mut self.extracted, &out.extracted_series)?;
        Self::add_series(&mut self.modified, &out.modified_series)?;
        self.offers.extend(out.flex_offers);
        Ok(())
    }
}

impl ScenarioRunner {
    /// A runner with the given scenario-level worker-thread count.
    ///
    /// Zero is clamped to 1 as a library-level backstop; the CLI
    /// rejects `--threads 0` before it gets here so users see a real
    /// message instead of a silent clamp.
    pub fn with_threads(threads: usize) -> Self {
        ScenarioRunner {
            threads: threads.max(1),
            ..ScenarioRunner::default()
        }
    }

    /// This runner with `consumer_threads` workers inside each scenario
    /// (zero is clamped to 1, same contract as
    /// [`ScenarioRunner::with_threads`]).
    pub fn with_consumer_threads(mut self, consumer_threads: usize) -> Self {
        self.consumer_threads = consumer_threads.max(1);
        self
    }

    /// Execute one scenario end to end.
    pub fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
        let started = Instant::now();
        scenario.validate()?;
        let horizon = scenario.horizon()?;
        let res = scenario.resolution()?;
        let cfg = ExtractionConfig {
            flexible_share: scenario.flexible_share,
            slice_resolution: res,
            ..ExtractionConfig::default()
        };
        cfg.validate()?;
        let extractor: Box<dyn FlexibilityExtractor> = match scenario.extractor {
            ExtractorChoice::Random => Box::new(RandomExtractor::new(cfg)),
            ExtractorChoice::Basic => Box::new(BasicExtractor::new(cfg)),
            ExtractorChoice::Peak => Box::new(PeakExtractor::new(cfg)),
            ExtractorChoice::MultiTariff => Box::new(MultiTariffExtractor::new(cfg)),
            ExtractorChoice::Frequency => Box::new(FrequencyBasedExtractor::new(cfg)),
            ExtractorChoice::Schedule => Box::new(ScheduleBasedExtractor::new(cfg)),
        };

        let catalog = Catalog::extended();
        let factory = ConsumerFactory::new(scenario, horizon, res, &catalog);
        let extractor: &dyn FlexibilityExtractor = extractor.as_ref();
        let mut acc = Accumulator::new();
        ordered_parallel_map(
            factory.len(),
            self.consumer_threads,
            |idx| {
                let consumer = factory.consumer(idx)?;
                let mut input = ExtractionInput::household(&consumer.market);
                if let Some(fine) = &consumer.fine {
                    input = input.with_fine_series(fine).with_catalog(&catalog);
                }
                if let Some(reference) = &consumer.reference {
                    input = input.with_reference(reference);
                }
                // Seeded per consumer *index*, never per worker: the
                // offer stream is independent of scheduling.
                let mut rng = StdRng::seed_from_u64(
                    scenario.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let out = extractor.extract(&input, &mut rng)?;
                Ok((consumer, out))
            },
            |_, (consumer, out)| acc.add(&consumer, out),
        )?;

        // `validate` guarantees at least one consumer.
        let total = acc.total.expect("workloads are non-empty");
        let truth = acc.truth.expect("workloads are non-empty");
        let extracted = acc.extracted.expect("workloads are non-empty");
        let modified = acc.modified.expect("workloads are non-empty");

        let score = GroundTruthScore::score(&extracted, &truth);
        let peak_before = total.argmax().map_or(0.0, |(_, v)| v);
        let peak_after = modified.argmax().map_or(0.0, |(_, v)| v);
        let (aggregation, schedule) =
            self.downstream(scenario, horizon, res, &acc.offers, &total, &modified)?;

        let total_energy = total.total_energy();
        let report = ScenarioReport {
            name: scenario.name.clone(),
            consumers: scenario.workload.consumers(),
            intervals: total.len(),
            resolution_min: res.minutes(),
            total_energy_kwh: total_energy,
            true_flexible_kwh: truth.total_energy(),
            offers: acc.offers.len(),
            extracted_kwh: extracted.total_energy(),
            achieved_share: if total_energy > 0.0 {
                extracted.total_energy() / total_energy
            } else {
                0.0
            },
            precision: score.precision,
            recall: score.recall,
            f1: score.f1(),
            peak_before_kwh: peak_before,
            peak_after_kwh: peak_after,
            peak_reduction: if peak_before > 0.0 {
                1.0 - peak_after / peak_before
            } else {
                0.0
            },
            aggregation,
            schedule,
        };
        Ok(ScenarioOutcome {
            report,
            offers: acc.offers,
            wall_time_ms: started.elapsed().as_millis() as u64,
        })
    }

    /// Aggregation + scheduling per the scenario's policy. Extraction
    /// runs that found nothing (an empty offer set) skip both stages.
    fn downstream(
        &self,
        scenario: &Scenario,
        horizon: TimeRange,
        res: Resolution,
        offers: &[FlexOffer],
        total: &TimeSeries,
        modified: &TimeSeries,
    ) -> Result<(Option<AggregationReport>, Option<ScheduleReport>), ScenarioError> {
        if scenario.aggregation == AggregationPolicy::None || offers.is_empty() {
            return Ok((None, None));
        }
        let aggregates = aggregate_offers(offers, &AggregationConfig::default())?;
        let agg_report = AggregationReport {
            aggregates: aggregates.len(),
            compression: offers.len() as f64 / aggregates.len().max(1) as f64,
            flexibility_loss_h: aggregates
                .iter()
                .map(|a| a.flexibility_loss().as_hours_f64())
                .sum(),
        };
        if scenario.aggregation != AggregationPolicy::Schedule {
            return Ok((Some(agg_report), None));
        }
        let mean_kw = total.total_energy() / horizon.duration().as_hours_f64().max(1e-9);
        let farm = WindFarmConfig {
            capacity_kw: scenario.res_capacity_share * mean_kw,
            seed: scenario.seed ^ 0xCAFE,
            ..WindFarmConfig::default()
        };
        let production = simulate_wind_production(&farm, horizon, res);
        let agg_offers: Vec<FlexOffer> = aggregates.iter().map(|a| a.offer.clone()).collect();
        let result = schedule_offers(
            &agg_offers,
            modified,
            &production,
            &ScheduleConfig::default(),
            &mut StdRng::seed_from_u64(scenario.seed ^ 0xBEEF),
        )?;
        let sched_report = ScheduleReport {
            imbalance_improvement: result.improvement(),
            res_utilisation: result.after.res_utilisation,
        };
        Ok((Some(agg_report), Some(sched_report)))
    }

    /// Execute every scenario, fanned out across `self.threads` scoped
    /// threads; results come back in input order.
    pub fn run_all(&self, scenarios: &[Scenario]) -> Vec<Result<ScenarioOutcome, ScenarioError>> {
        if scenarios.is_empty() {
            return Vec::new();
        }
        let results: Mutex<Vec<(usize, Result<ScenarioOutcome, ScenarioError>)>> =
            Mutex::new(Vec::with_capacity(scenarios.len()));
        let threads = self.threads.clamp(1, scenarios.len());
        // Work-stealing queue rather than static chunks: scenario cost
        // is highly skewed (a 10k-household stress run next to single
        // consumer-days), so workers pull the next index as they free
        // up. Results are keyed by index, so scheduling order never
        // affects the returned order (or the reports — each run merges
        // its consumers in index order).
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let results = &results;
                let next = &next;
                let runner = *self;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(scenario) = scenarios.get(i) else {
                        break;
                    };
                    let outcome = runner.run(scenario);
                    results.lock().push((i, outcome));
                });
            }
        });
        let mut indexed = results.into_inner();
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

/// Builds any consumer of a scenario's workload by index, on demand —
/// the random-access source the shard workers pull from. Building a
/// consumer touches nothing but `&self`, so the factory is shared
/// across workers; large workloads are never materialised as a whole.
struct ConsumerFactory<'a> {
    scenario: &'a Scenario,
    horizon: TimeRange,
    res: Resolution,
    catalog: &'a Catalog,
    households: Vec<flextract_sim::HouseholdConfig>,
    tariff_sensitivity: f64,
    sites: usize,
    site_pattern: flextract_sim::ShiftPattern,
}

impl<'a> ConsumerFactory<'a> {
    fn new(
        scenario: &'a Scenario,
        horizon: TimeRange,
        res: Resolution,
        catalog: &'a Catalog,
    ) -> Self {
        let (households, tariff_sensitivity, sites, site_pattern) = match &scenario.workload {
            Workload::Households {
                households,
                archetype_mix,
                tariff_sensitivity,
            } => (
                fleet_configs(
                    scenario,
                    *households,
                    archetype_mix.clone(),
                    *tariff_sensitivity,
                ),
                *tariff_sensitivity,
                0,
                flextract_sim::ShiftPattern::TwoShift,
            ),
            Workload::Industrial { sites, pattern } => (Vec::new(), 0.0, *sites, *pattern),
            Workload::Mixed { households, sites } => (
                fleet_configs(
                    scenario,
                    *households,
                    FleetConfig::default().archetype_mix,
                    0.0,
                ),
                0.0,
                *sites,
                flextract_sim::ShiftPattern::TwoShift,
            ),
        };
        ConsumerFactory {
            scenario,
            horizon,
            res,
            catalog,
            households,
            tariff_sensitivity,
            sites,
            site_pattern,
        }
    }

    /// Total consumers (households first, then industrial sites).
    fn len(&self) -> usize {
        self.households.len() + self.sites
    }

    /// Build consumer `idx` (simulate + resample), independent of every
    /// other index.
    fn consumer(&self, idx: usize) -> Result<ConsumerInput, ScenarioError> {
        if idx < self.households.len() {
            self.household(&self.households[idx])
        } else {
            self.site(idx - self.households.len())
        }
    }

    fn household(
        &self,
        cfg: &flextract_sim::HouseholdConfig,
    ) -> Result<ConsumerInput, ScenarioError> {
        if self.scenario.extractor == ExtractorChoice::MultiTariff {
            // §3.3 needs the same consumer's one-tariff typical period
            // as reference: simulate the preceding horizon flat.
            let ref_horizon = TimeRange::starting_at(
                self.horizon.start() - Duration::days(self.scenario.days),
                Duration::days(self.scenario.days),
            )
            .expect("days >= 1 by validation");
            let (flat, multi) = simulate_tariff_pair(
                cfg,
                ref_horizon,
                self.horizon,
                TariffResponse::overnight(self.tariff_sensitivity),
            );
            let SimulatedHousehold {
                series,
                flexible_series,
                ..
            } = multi;
            return Ok(ConsumerInput {
                market: resample::to_resolution_owned(series, self.res)?,
                truth: resample::to_resolution_owned(flexible_series, self.res)?,
                fine: None,
                reference: Some(resample::to_resolution_owned(flat.series, self.res)?),
            });
        }
        let sim = simulate_household_with_catalog(cfg, self.horizon, self.catalog);
        let needs_fine = matches!(
            self.scenario.extractor,
            ExtractorChoice::Frequency | ExtractorChoice::Schedule
        );
        // Clone the 1-min series only when an appliance-level extractor
        // needs it; the market/truth conversions consume the simulated
        // series, so a 1-min market resolution moves instead of cloning.
        let fine = needs_fine.then(|| sim.series.clone());
        let SimulatedHousehold {
            series,
            flexible_series,
            ..
        } = sim;
        Ok(ConsumerInput {
            market: resample::to_resolution_owned(series, self.res)?,
            truth: resample::to_resolution_owned(flexible_series, self.res)?,
            fine,
            reference: None,
        })
    }

    fn site(&self, site_idx: usize) -> Result<ConsumerInput, ScenarioError> {
        let cfg = IndustrialConfig {
            pattern: self.site_pattern,
            seed: self.scenario.seed ^ (0x1D00D + site_idx as u64),
            ..IndustrialConfig::medium_plant(site_idx as u64)
        };
        let sim = simulate_industrial(&cfg, self.horizon);
        Ok(ConsumerInput {
            market: resample::to_resolution_owned(sim.series, self.res)?,
            truth: resample::to_resolution_owned(sim.flexible_series, self.res)?,
            fine: None,
            reference: None,
        })
    }
}

/// Materialise household configs for a scenario's fleet parameters.
/// Validation has already run, so the mix is sampleable.
fn fleet_configs(
    scenario: &Scenario,
    households: usize,
    archetype_mix: Vec<(HouseholdArchetype, f64)>,
    tariff_sensitivity: f64,
) -> Vec<flextract_sim::HouseholdConfig> {
    let fleet = FleetConfig {
        households,
        base_seed: scenario.seed,
        archetype_mix,
        tariff_response: (tariff_sensitivity > 0.0
            && scenario.extractor != ExtractorChoice::MultiTariff)
            .then(|| TariffResponse::overnight(tariff_sensitivity)),
        threads: 1,
    };
    fleet
        .try_household_configs()
        .expect("scenario validation covers the fleet config")
}
