//! # flextract-scenario
//!
//! A declarative **scenario corpus** and a **parallel pipeline runner**
//! for the whole flextract stack.
//!
//! The paper's evaluation (§5–6) is a handful of fixed experiments;
//! real flexibility varies along time, resolution, tariff and resource
//! dimensions. A [`Scenario`] names one point in that space — workload,
//! horizon, market resolution, extraction approach, flexible share,
//! aggregation policy, RES sizing, seed — as a JSON file, and the
//! [`ScenarioRunner`] executes simulate→extract→aggregate→evaluate for
//! it, emitting a deterministic [`ScenarioReport`]. Because runs are
//! seeded, every committed scenario doubles as a golden-file regression
//! test pinning the whole pipeline (see `tests/scenario_golden.rs` at
//! the workspace root).
//!
//! ```
//! use flextract_scenario::{
//!     AggregationPolicy, ExtractorChoice, Scenario, ScenarioRunner, Workload,
//! };
//! use flextract_sim::HouseholdArchetype;
//!
//! let scenario = Scenario {
//!     name: "doc_example".into(),
//!     description: "two households, one day, peak-based".into(),
//!     workload: Workload::Households {
//!         households: 2,
//!         archetype_mix: vec![(HouseholdArchetype::Couple, 1.0)],
//!         tariff_sensitivity: 0.0,
//!     },
//!     start: "2013-03-18".into(),
//!     days: 1,
//!     resolution_min: 15,
//!     extractor: ExtractorChoice::Peak,
//!     flexible_share: 0.05,
//!     aggregation: AggregationPolicy::None,
//!     res_capacity_share: 0.0,
//!     seed: 2013,
//! };
//! let outcome = ScenarioRunner::default().run(&scenario).unwrap();
//! assert_eq!(outcome.report.consumers, 2);
//! assert!(outcome.report.extracted_kwh <= outcome.report.total_energy_kwh);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod report;
mod runner;
pub mod shard;
mod source;
mod spec;

pub use export::{export_dataset, ExportOptions, ExportSummary};
pub use report::{
    AggregationReport, IngestionReport, ScenarioOutcome, ScenarioReport, ScheduleReport,
};
pub use runner::ScenarioRunner;
pub use spec::{
    load_dir, load_file, AggregationPolicy, DatasetCleaning, ExtractorChoice, Scenario, Workload,
};

/// Per-consumer-index RNG stream separation, shared by the runner's
/// extraction legs and the exporter's degradation draws (the exporter
/// additionally salts it) so the two streams stay aligned per index.
pub(crate) const CONSUMER_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Errors surfaced by scenario loading, validation, and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A spec file or directory could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying OS error.
        what: String,
    },
    /// A spec file did not parse as a scenario.
    Parse {
        /// The offending path.
        path: String,
        /// The underlying parse error.
        what: String,
    },
    /// A spec field is out of its valid domain or the combination is
    /// not runnable.
    Invalid {
        /// The scenario's name.
        scenario: String,
        /// Which field/combination, and why.
        what: String,
    },
    /// Two corpus files declare the same scenario name.
    DuplicateName(String),
    /// The fleet configuration is unsampleable.
    Fleet(flextract_sim::FleetConfigError),
    /// The extraction stage failed.
    Extraction(flextract_core::ExtractionError),
    /// The aggregation or scheduling stage failed.
    Agg(flextract_agg::AggError),
    /// A series operation failed.
    Series(flextract_series::SeriesError),
    /// The dataset layer failed (open, decode, clean, or export).
    Dataset(flextract_dataset::DatasetError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Io { path, what } => write!(f, "cannot read {path}: {what}"),
            ScenarioError::Parse { path, what } => write!(f, "invalid scenario {path}: {what}"),
            ScenarioError::Invalid { scenario, what } => {
                write!(f, "scenario `{scenario}`: {what}")
            }
            ScenarioError::DuplicateName(name) => {
                write!(f, "duplicate scenario name `{name}` in corpus")
            }
            ScenarioError::Fleet(e) => write!(f, "fleet config: {e}"),
            ScenarioError::Extraction(e) => write!(f, "extraction failed: {e}"),
            ScenarioError::Agg(e) => write!(f, "aggregation/scheduling failed: {e}"),
            ScenarioError::Series(e) => write!(f, "series error: {e}"),
            ScenarioError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<flextract_sim::FleetConfigError> for ScenarioError {
    fn from(e: flextract_sim::FleetConfigError) -> Self {
        ScenarioError::Fleet(e)
    }
}

impl From<flextract_core::ExtractionError> for ScenarioError {
    fn from(e: flextract_core::ExtractionError) -> Self {
        ScenarioError::Extraction(e)
    }
}

impl From<flextract_agg::AggError> for ScenarioError {
    fn from(e: flextract_agg::AggError) -> Self {
        ScenarioError::Agg(e)
    }
}

impl From<flextract_series::SeriesError> for ScenarioError {
    fn from(e: flextract_series::SeriesError) -> Self {
        ScenarioError::Series(e)
    }
}

impl From<flextract_dataset::DatasetError> for ScenarioError {
    fn from(e: flextract_dataset::DatasetError) -> Self {
        ScenarioError::Dataset(e)
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_names_the_culprit() {
        let e = ScenarioError::Io {
            path: "scenarios/x.json".into(),
            what: "No such file".into(),
        };
        assert!(e.to_string().contains("scenarios/x.json"));
        let e = ScenarioError::Invalid {
            scenario: "stress".into(),
            what: "days must be at least 1".into(),
        };
        assert!(e.to_string().contains("stress"));
        assert!(e.to_string().contains("days"));
        let e = ScenarioError::DuplicateName("twin".into());
        assert!(e.to_string().contains("twin"));
        let e: ScenarioError = flextract_sim::FleetConfigError::EmptyArchetypeMix.into();
        assert!(e.to_string().contains("archetype"));
        let e: ScenarioError = flextract_series::SeriesError::Empty.into();
        assert!(e.to_string().contains("series"));
        let e: ScenarioError = flextract_agg::AggError::NoOffers.into();
        assert!(e.to_string().contains("aggregation"));
        let e: ScenarioError = flextract_core::ExtractionError::EmptySeries.into();
        assert!(e.to_string().contains("extraction"));
    }
}
