//! Property tests for the measured-data pipeline: export → ingest.
//!
//! 1. **Lossless round-trip** — exporting a simulated fleet with the
//!    identity degradation and ingesting it back yields series
//!    *byte-identical* (bit-for-bit f64s) to the simulator's output,
//!    through both the CSV and the binary codec.
//! 2. **Thread invariance** — a dataset-backed scenario report is
//!    byte-identical at every consumer-thread count, exactly like the
//!    simulated workloads (the sharded merge contract).

use flextract_appliance::Catalog;
use flextract_dataset::{Dataset, SeriesCodec};
use flextract_dataset::{Manifest, MANIFEST_FILE};
use flextract_scenario::{
    export_dataset, AggregationPolicy, DatasetCleaning, ExportOptions, ExtractorChoice, Scenario,
    ScenarioRunner, Workload,
};
use flextract_series::FillStrategy;
use flextract_sim::{simulate_household_with_catalog, FleetConfig, HouseholdArchetype};
use flextract_time::{Duration, TimeRange, Timestamp};
use proptest::prelude::*;
use std::path::PathBuf;

fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flextract_ds_pipeline_{tag}_{case}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn source_scenario(households: usize, days: i64, seed: u64) -> Scenario {
    Scenario {
        name: "prop_source".into(),
        description: "property-generated export source".into(),
        workload: Workload::Households {
            households,
            archetype_mix: vec![
                (HouseholdArchetype::Couple, 0.6),
                (HouseholdArchetype::FamilyWithChildren, 0.4),
            ],
            tariff_sensitivity: 0.0,
        },
        start: "2013-03-18".into(),
        days,
        resolution_min: 15,
        extractor: ExtractorChoice::Peak,
        flexible_share: 0.05,
        aggregation: AggregationPolicy::None,
        res_capacity_share: 0.0,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn undegraded_export_ingests_byte_identically(
        households in 1_usize..3,
        seed in any::<u64>(),
        binary in any::<bool>(),
    ) {
        let scenario = source_scenario(households, 1, seed);
        let dir = scratch("roundtrip", seed ^ households as u64);
        let options = ExportOptions {
            codec: if binary { SeriesCodec::Binary } else { SeriesCodec::Csv },
            ..ExportOptions::default()
        };
        let summary = export_dataset(&scenario, &dir, &options).unwrap();
        prop_assert_eq!(summary.consumers, households);
        prop_assert_eq!(summary.gap_count, 0, "identity degradation injects nothing");

        // Re-simulate the fleet through the public API — the exact
        // configs the exporter used — and compare bit for bit.
        let horizon = TimeRange::starting_at(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Duration::days(1),
        )
        .unwrap();
        let catalog = Catalog::extended();
        let fleet = FleetConfig {
            households,
            base_seed: seed,
            archetype_mix: vec![
                (HouseholdArchetype::Couple, 0.6),
                (HouseholdArchetype::FamilyWithChildren, 0.4),
            ],
            tariff_response: None,
            threads: 1,
        };
        let configs = fleet.try_household_configs().unwrap();
        let dataset = Dataset::open(&dir).unwrap();
        prop_assert_eq!(dataset.len(), households);
        for (idx, cfg) in configs.iter().enumerate() {
            let sim = simulate_household_with_catalog(cfg, horizon, &catalog);
            let record = dataset.consumer(idx).unwrap();
            prop_assert_eq!(record.measured.gap_count(), 0);
            let measured = record.measured.into_series().unwrap();
            prop_assert_eq!(measured.start(), sim.series.start());
            prop_assert_eq!(measured.resolution(), sim.series.resolution());
            prop_assert_eq!(measured.len(), sim.series.len());
            for (a, b) in measured.values().iter().zip(sim.series.values()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "ingest(export(fleet)) must be exact");
            }
            // Ground truth rides along bit-exactly too.
            let truth = record.truth_flex.unwrap();
            for (a, b) in truth.values().iter().zip(sim.flexible_series.values()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_backed_reports_are_thread_count_invariant(
        seed in any::<u64>(),
        gap_rate in 0.0_f64..0.1,
    ) {
        let source = source_scenario(2, 1, seed);
        let dir = scratch("threads", seed);
        let options = ExportOptions {
            degradation: flextract_dataset::Degradation {
                resolution_min: Some(15),
                noise_std: 0.02,
                gap_rate,
                ..flextract_dataset::Degradation::default()
            },
            ..ExportOptions::default()
        };
        export_dataset(&source, &dir, &options).unwrap();

        let scenario = Scenario {
            name: "prop_dataset_run".into(),
            description: "thread-invariance case".into(),
            workload: Workload::Dataset {
                path: dir.display().to_string(),
                consumers: 2,
                cleaning: DatasetCleaning {
                    fill: FillStrategy::Linear,
                    screen_anomalies: true,
                },
                disaggregate: false,
            },
            ..source_scenario(2, 1, seed)
        };
        let serial = ScenarioRunner::with_threads(1)
            .with_consumer_threads(1)
            .run(&scenario)
            .unwrap();
        let reference = serde_json::to_string_pretty(&serial.report).unwrap();
        for threads in [2, 3] {
            let sharded = ScenarioRunner::with_threads(1)
                .with_consumer_threads(threads)
                .run(&scenario)
                .unwrap();
            prop_assert_eq!(
                &serde_json::to_string_pretty(&sharded.report).unwrap(),
                &reference,
                "report drifted at consumer_threads={}",
                threads
            );
        }
        // The fidelity section exists (the export carried truth) and is
        // itself deterministic.
        prop_assert!(serial.report.fidelity.is_some());
        prop_assert!(serial.report.ingestion.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn scenarios_read_only_their_horizon_from_larger_datasets() {
    // Export TWO days of measured data, then run a ONE-day scenario
    // against it: the scan-backed source must slice the horizon out
    // instead of rejecting the dataset (or decoding all of it).
    let source = source_scenario(2, 2, 99);
    let dir = scratch("cover", 99);
    let options = ExportOptions {
        degradation: flextract_dataset::Degradation {
            resolution_min: Some(15),
            gap_rate: 0.02,
            ..flextract_dataset::Degradation::default()
        },
        ..ExportOptions::default()
    };
    export_dataset(&source, &dir, &options).unwrap();

    let one_day = Scenario {
        name: "ds_one_day_of_two".into(),
        description: "horizon-sliced dataset run".into(),
        workload: Workload::Dataset {
            path: dir.display().to_string(),
            consumers: 2,
            cleaning: DatasetCleaning::default(),
            disaggregate: false,
        },
        ..source_scenario(2, 1, 7)
    };
    let outcome = ScenarioRunner::with_threads(1).run(&one_day).unwrap();
    assert_eq!(outcome.report.intervals, 96, "one day at 15 min");

    // The ranged store read behind it decodes only the first day's
    // chunks (FXM3 is the default export codec).
    let ds = Dataset::open(&dir).unwrap();
    assert_eq!(ds.codec(), SeriesCodec::BinaryV3);
    let day1 = TimeRange::starting_at("2013-03-18".parse().unwrap(), Duration::days(1)).unwrap();
    let (slice, report) = ds.consumer_slice(0, day1).unwrap();
    assert_eq!(slice.len(), 96);
    assert_eq!(report.chunks_decoded, 1, "{report:?}");
    assert_eq!(report.chunks_skipped_slice, 1, "{report:?}");

    // Sliced and whole-series loads agree bit for bit on the overlap.
    let whole = ds.consumer(0).unwrap().measured;
    for (a, b) in slice.values().iter().zip(whole.values()) {
        assert!(a.is_nan() == b.is_nan());
        if !a.is_nan() {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    // A horizon the dataset does NOT cover is rejected with a message
    // naming both spans.
    let shifted = Scenario {
        start: "2013-03-19".into(),
        days: 2,
        ..one_day.clone()
    };
    let err = ScenarioRunner::with_threads(1).run(&shifted).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("not inside it"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_scenarios_validate_resolution_and_skip_partial_fidelity() {
    let source = source_scenario(2, 1, 77);
    let dir = scratch("partial", 77);
    // Export on a 15-min grid so a finer market resolution can't
    // divide it.
    let options = ExportOptions {
        degradation: flextract_dataset::Degradation {
            resolution_min: Some(15),
            ..flextract_dataset::Degradation::default()
        },
        ..ExportOptions::default()
    };
    export_dataset(&source, &dir, &options).unwrap();

    let ds_scenario = |resolution_min: i64| Scenario {
        name: "ds_case".into(),
        description: "dataset-backed validation case".into(),
        workload: Workload::Dataset {
            path: dir.to_str().unwrap().into(),
            consumers: 2,
            cleaning: DatasetCleaning::default(),
            disaggregate: false,
        },
        resolution_min,
        ..source_scenario(2, 1, 7)
    };

    // A market resolution finer than the on-disk grid fails with an
    // error naming both resolutions, not a bare series error.
    let err = ScenarioRunner::with_threads(1)
        .run(&ds_scenario(5))
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cannot be resampled"), "{msg}");
    assert!(msg.contains("15 min"), "{msg}");

    // Partial truth coverage: strip consumer 0's ground truth. The run
    // still succeeds, and the fidelity section is simply absent (it
    // only compares like with like).
    let manifest_path = dir.join(MANIFEST_FILE);
    let mut manifest: Manifest =
        serde_json::from_str(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
    for file in manifest.consumers[0]
        .truth_total
        .take()
        .into_iter()
        .chain(manifest.consumers[0].truth_flex.take())
    {
        std::fs::remove_file(dir.join(file)).unwrap();
    }
    std::fs::write(
        &manifest_path,
        serde_json::to_string_pretty(&manifest).unwrap(),
    )
    .unwrap();

    let outcome = ScenarioRunner::with_threads(1)
        .run(&ds_scenario(15))
        .unwrap();
    assert!(outcome.report.fidelity.is_none());
    assert!(outcome.report.ingestion.is_some());
    std::fs::remove_dir_all(&dir).ok();
}
