//! Property tests for the scenario pipeline.
//!
//! Invariants over randomly drawn (small) valid scenarios:
//!
//! 1. **Energy conservation** — the extraction can never call more
//!    energy flexible than the workload actually consumed, and the
//!    offers' own profiles stay consistent with what was extracted.
//! 2. **Reproducibility** — the same spec (same seed) always yields a
//!    byte-identical serialized report, which is the property the
//!    golden-file suite rests on.
//! 3. **Merge determinism** — the sharded consumer fan-out delivers
//!    per-consumer rows in strict index order no matter how the
//!    scheduler interleaves worker completion, and a sharded scenario
//!    run serializes identically to a serial one.

use flextract_scenario::{AggregationPolicy, ExtractorChoice, Scenario, ScenarioRunner, Workload};
use flextract_sim::HouseholdArchetype;
use proptest::prelude::*;

fn arb_extractor() -> impl Strategy<Value = ExtractorChoice> {
    prop_oneof![
        Just(ExtractorChoice::Random),
        Just(ExtractorChoice::Basic),
        Just(ExtractorChoice::Peak),
    ]
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        (1_usize..4, 0_u8..4).prop_map(|(households, arch)| {
            let archetype = match arch {
                0 => HouseholdArchetype::SingleResident,
                1 => HouseholdArchetype::Couple,
                2 => HouseholdArchetype::FamilyWithChildren,
                _ => HouseholdArchetype::SuburbanWithEv,
            };
            Workload::Households {
                households,
                archetype_mix: vec![(archetype, 1.0)],
                tariff_sensitivity: 0.0,
            }
        }),
        (1_usize..3).prop_map(|sites| Workload::Industrial {
            sites,
            pattern: flextract_sim::ShiftPattern::TwoShift,
        }),
    ]
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            arb_workload(),
            1_i64..3,                                // days
            prop_oneof![Just(15_i64), Just(60_i64)], // resolution
        ),
        (
            arb_extractor(),
            0.005_f64..0.1, // flexible share
            prop_oneof![
                Just(AggregationPolicy::None),
                Just(AggregationPolicy::Aggregate)
            ],
            proptest::arbitrary::any::<u64>(), // seed
        ),
    )
        .prop_map(
            |((workload, days, resolution_min), (extractor, share, aggregation, seed))| Scenario {
                name: "prop_case".into(),
                description: "property-generated scenario".into(),
                workload,
                start: "2013-03-18".into(),
                days,
                resolution_min,
                extractor,
                flexible_share: share,
                aggregation,
                res_capacity_share: 0.0,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn extracted_energy_stays_within_the_simulated_total(s in arb_scenario()) {
        let outcome = ScenarioRunner::default().run(&s).unwrap();
        let r = &outcome.report;
        prop_assert!(r.total_energy_kwh > 0.0, "workloads consume energy");
        prop_assert!(
            r.extracted_kwh <= r.total_energy_kwh + 1e-6,
            "extracted {} kWh out of only {} kWh simulated",
            r.extracted_kwh,
            r.total_energy_kwh
        );
        prop_assert!(r.achieved_share <= 1.0 + 1e-9);
        // The offers' summed minimum-energy profiles bracket the
        // extracted series from below (min fraction < 1), so they must
        // also stay within the simulated total.
        let offer_min_sum: f64 = outcome
            .offers
            .iter()
            .map(|o| o.total_energy().min)
            .sum();
        prop_assert!(
            offer_min_sum <= r.total_energy_kwh + 1e-6,
            "offers promise at least {} kWh but only {} kWh was simulated",
            offer_min_sum,
            r.total_energy_kwh
        );
        prop_assert_eq!(outcome.offers.len(), r.offers);
        // Peak accounting: extraction only removes energy.
        prop_assert!(r.peak_after_kwh <= r.peak_before_kwh + 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.precision));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.recall));
    }

    #[test]
    fn identical_seeds_yield_byte_identical_reports(s in arb_scenario()) {
        let runner = ScenarioRunner::default();
        let a = runner.run(&s).unwrap();
        let b = runner.run(&s).unwrap();
        let ja = serde_json::to_string(&a.report).unwrap();
        let jb = serde_json::to_string(&b.report).unwrap();
        prop_assert_eq!(ja.into_bytes(), jb.into_bytes());
    }

    #[test]
    fn sharded_runs_serialize_identically_to_serial(s in arb_scenario(), threads in 2_usize..8) {
        let serial = ScenarioRunner::default().run(&s).unwrap();
        let sharded = ScenarioRunner::default()
            .with_consumer_threads(threads)
            .run(&s)
            .unwrap();
        let js = serde_json::to_string(&serial.report).unwrap();
        let jp = serde_json::to_string(&sharded.report).unwrap();
        prop_assert_eq!(js.into_bytes(), jp.into_bytes());
        prop_assert_eq!(serial.offers, sharded.offers);
    }

    #[test]
    fn shard_merge_never_reorders_rows(
        n in 1_usize..120,
        threads in 1_usize..9,
        delays in proptest::collection::vec(0_u64..4, 120),
    ) {
        // The merge primitive itself: workers complete in a
        // scheduler-scrambled order (forced by per-item busy delays),
        // yet the consumer must observe row 0, 1, 2, … exactly once
        // each, in order, with the row contents untouched.
        let mut rows: Vec<(usize, u64)> = Vec::new();
        flextract_scenario::shard::ordered_parallel_map(
            n,
            threads,
            |i| {
                std::thread::sleep(std::time::Duration::from_micros(delays[i] * 40));
                Ok::<u64, ()>((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            },
            |i, v| {
                rows.push((i, v));
                Ok(())
            },
        )
        .unwrap();
        let expect: Vec<(usize, u64)> = (0..n)
            .map(|i| (i, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        prop_assert_eq!(rows, expect);
    }
}
