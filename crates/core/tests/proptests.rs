//! Property tests across the household-level extraction approaches.

use flextract_core::{
    BasicExtractor, ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor,
    RandomExtractor,
};
use flextract_series::TimeSeries;
use flextract_time::{Resolution, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Whole days of plausible consumption (1–5 days, 96 intervals each).
fn arb_series() -> impl Strategy<Value = TimeSeries> {
    (1_usize..=5, prop::collection::vec(0.0_f64..2.0, 96)).prop_map(|(days, day_shape)| {
        let values: Vec<f64> = (0..days).flat_map(|_| day_shape.clone()).collect();
        TimeSeries::new(
            Timestamp::from_ymd_hm(2013, 3, 18, 0, 0).unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap()
    })
}

fn arb_share() -> impl Strategy<Value = f64> {
    // The MIRACLE range plus a zero edge.
    prop_oneof![Just(0.0), 0.001_f64..0.065]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn energy_accounting_holds_for_every_household_extractor(
        series in arb_series(),
        share in arb_share(),
        seed in 0_u64..1000,
    ) {
        let cfg = ExtractionConfig::with_share(share);
        let extractors: Vec<Box<dyn FlexibilityExtractor>> = vec![
            Box::new(RandomExtractor::new(cfg.clone())),
            Box::new(BasicExtractor::new(cfg.clone())),
            Box::new(PeakExtractor::new(cfg)),
        ];
        for ex in &extractors {
            let out = ex
                .extract(&ExtractionInput::household(&series), &mut StdRng::seed_from_u64(seed))
                .unwrap();
            // The central invariant: modified + extracted = original.
            prop_assert!(out.check_invariants(&series).is_ok(), "{}", ex.name());
            // Extraction never exceeds the configured share (caps can
            // only reduce it).
            prop_assert!(
                out.extracted_energy() <= share * series.total_energy() + 1e-6,
                "{}: extracted {} of {}",
                ex.name(),
                out.extracted_energy(),
                series.total_energy()
            );
            // No negative residuals.
            prop_assert!(out.modified_series.values().iter().all(|&v| v >= -1e-9));
            // Every offer individually validates and is 15-min aligned.
            for o in &out.flex_offers {
                prop_assert!(o.validate().is_ok());
                prop_assert!(o.earliest_start().is_aligned(Resolution::MIN_15));
            }
        }
    }

    #[test]
    fn determinism_across_extractors(series in arb_series(), seed in 0_u64..100) {
        let cfg = ExtractionConfig::default();
        for ex in [
            &RandomExtractor::new(cfg.clone()) as &dyn FlexibilityExtractor,
            &BasicExtractor::new(cfg.clone()),
            &PeakExtractor::new(cfg.clone()),
        ] {
            let a = ex
                .extract(&ExtractionInput::household(&series), &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let b = ex
                .extract(&ExtractionInput::household(&series), &mut StdRng::seed_from_u64(seed))
                .unwrap();
            prop_assert_eq!(a.flex_offers, b.flex_offers, "{}", ex.name());
            prop_assert_eq!(a.modified_series, b.modified_series, "{}", ex.name());
        }
    }

    #[test]
    fn peak_extractor_emits_at_most_one_offer_per_day(
        series in arb_series(),
        seed in 0_u64..100,
    ) {
        let days = series.len() / 96;
        let out = PeakExtractor::new(ExtractionConfig::default())
            .extract(&ExtractionInput::household(&series), &mut StdRng::seed_from_u64(seed))
            .unwrap();
        prop_assert!(out.flex_offers.len() <= days);
        prop_assert_eq!(out.diagnostics.peak_reports.len(), days);
        // Survivor probabilities per day sum to 1 (or no survivors).
        for report in &out.diagnostics.peak_reports {
            let p: f64 = report.peaks.iter().map(|pk| pk.probability).sum();
            prop_assert!(p.abs() < 1e-9 || (p - 1.0).abs() < 1e-9, "prob sum {p}");
            // Filtering is consistent with the threshold.
            for pk in &report.peaks {
                prop_assert_eq!(
                    pk.survived_filter,
                    pk.size_kwh >= report.min_peak_energy_kwh,
                    "peak {} size {} vs {}",
                    pk.number,
                    pk.size_kwh,
                    report.min_peak_energy_kwh
                );
            }
        }
    }
}
