//! The peak-based extraction approach (paper §3.2, Figure 5).
//!
//! Per day: (1) detect peaks above the daily average; (2) discard peaks
//! smaller than the day's flexible part (`share × day total`);
//! (3) choose one surviving peak with size-proportional probability;
//! (4) extract one flex-offer positioned at that peak — "one flex-offer
//! per consumer per day".

use crate::extractor::{build_offer, FlexibilityExtractor};
use crate::io::{PeakDayReport, PeakInfo};
use crate::{Diagnostics, ExtractionConfig, ExtractionError, ExtractionInput, ExtractionOutput};
use flextract_series::peaks::{detect_peaks, filter_peaks, selection_probabilities};
use flextract_series::segment::split_whole_days;
use flextract_series::{PeakThreshold, TimeSeries};
use rand::rngs::StdRng;
use rand::Rng;

/// Peak-positioned extraction: one flex-offer per consumer per day.
#[derive(Debug, Clone)]
pub struct PeakExtractor {
    cfg: ExtractionConfig,
    threshold: PeakThreshold,
}

impl PeakExtractor {
    /// Build with the paper's threshold (the daily mean).
    pub fn new(cfg: ExtractionConfig) -> Self {
        PeakExtractor {
            cfg,
            threshold: PeakThreshold::Mean,
        }
    }

    /// Build with an alternative detection threshold (the DESIGN.md
    /// ablation: median / quantile / absolute).
    pub fn with_threshold(cfg: ExtractionConfig, threshold: PeakThreshold) -> Self {
        PeakExtractor { cfg, threshold }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExtractionConfig {
        &self.cfg
    }
}

/// Size-proportional random pick (the paper's roulette selection).
fn weighted_pick(rng: &mut StdRng, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            target -= w;
            if target <= 0.0 {
                return Some(i);
            }
        }
    }
    weights.iter().rposition(|w| *w > 0.0)
}

impl FlexibilityExtractor for PeakExtractor {
    fn name(&self) -> &'static str {
        "peak"
    }

    fn extract(
        &self,
        input: &ExtractionInput<'_>,
        rng: &mut StdRng,
    ) -> Result<ExtractionOutput, ExtractionError> {
        self.cfg.validate()?;
        let series = input.series;
        if series.is_empty() {
            return Err(ExtractionError::EmptySeries);
        }
        let mut modified = series.clone();
        let mut extracted = TimeSeries::zeros_like(series);
        let mut offers = Vec::new();
        let mut diagnostics = Diagnostics::default();
        let mut next_id = 1u64;

        for day in split_whole_days(series) {
            let day_total = day.total_energy();
            if day_total <= 0.0 {
                diagnostics.notes.push(format!(
                    "{}: zero-consumption day skipped",
                    day.start().date()
                ));
                continue;
            }
            // Phase 1: detection above the daily average line.
            let (threshold, all_peaks) = detect_peaks(&day, self.threshold)?;
            // Phase 2: filtering by the flexible part of the day.
            let min_peak_energy = self.cfg.flexible_share * day_total;
            let survivors = filter_peaks(all_peaks.clone(), min_peak_energy);
            let probs = selection_probabilities(&survivors);
            // Phase 3: size-proportional selection.
            let chosen = weighted_pick(rng, &probs);

            // Assemble the Figure-5 report for this day.
            let mut report = PeakDayReport {
                day: day.start(),
                day_total_kwh: day_total,
                threshold_kwh: threshold,
                min_peak_energy_kwh: min_peak_energy,
                peaks: Vec::with_capacity(all_peaks.len()),
                selected: None,
            };
            for (i, p) in all_peaks.iter().enumerate() {
                let surv_idx = survivors
                    .iter()
                    .position(|s| s.start_index == p.start_index);
                report.peaks.push(PeakInfo {
                    number: i + 1,
                    start: p.range.start(),
                    intervals: p.len,
                    size_kwh: p.energy_kwh,
                    survived_filter: surv_idx.is_some(),
                    probability: surv_idx.map(|j| probs[j]).unwrap_or(0.0),
                });
            }

            let Some(sel) = chosen else {
                diagnostics.notes.push(format!(
                    "{}: no peak survived the {min_peak_energy:.3} kWh filter",
                    day.start().date()
                ));
                diagnostics.peak_reports.push(report);
                continue;
            };
            let peak = &survivors[sel];
            report.selected = all_peaks
                .iter()
                .position(|p| p.start_index == peak.start_index)
                .map(|i| i + 1);
            diagnostics.peak_reports.push(report);

            // Phase 4: one flex-offer, positioned on the peak, carrying
            // the day's whole flexible part, shaped like the peak.
            let n = peak.len.min(self.cfg.slices_per_offer.1).max(1);
            let window = &day.values()[peak.start_index..peak.start_index + n];
            let window_energy: f64 = window.iter().sum();
            let mut energies: Vec<f64> = window
                .iter()
                .map(|c| min_peak_energy * c / window_energy)
                .collect();
            for (k, e) in energies.iter_mut().enumerate() {
                let global = modified
                    .index_of(day.timestamp_of(peak.start_index + k))
                    .expect("peak intervals lie inside the series");
                let available = modified.values()[global].max(0.0);
                *e = e.min(available);
                modified.values_mut()[global] -= *e;
                extracted.values_mut()[global] += *e;
            }
            let offer = build_offer(next_id, &self.cfg, rng, peak.range.start(), &energies)?;
            next_id += 1;
            offers.push(offer);
        }
        Ok(ExtractionOutput {
            approach: self.name(),
            flex_offers: offers,
            modified_series: modified,
            extracted_series: extracted,
            diagnostics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_series::TimeSeries;
    use flextract_time::{Resolution, Timestamp};
    use rand::SeedableRng;

    /// A synthetic day with two dominant peaks and several small ones —
    /// the Figure-5 situation in miniature.
    fn two_peak_day() -> TimeSeries {
        let mut values = vec![0.2; 96];
        // Small morning bumps (will be filtered out at 5 %).
        values[20] = 0.6;
        values[30] = 0.7;
        // Midday peak: 4 intervals, ~2.6 kWh.
        for v in values.iter_mut().skip(44).take(4) {
            *v = 0.65;
        }
        // Evening peak: 6 intervals, ~5.0 kWh.
        for v in values.iter_mut().skip(72).take(6) {
            *v = 0.83;
        }
        TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap()
    }

    fn run(series: &TimeSeries, cfg: ExtractionConfig, seed: u64) -> ExtractionOutput {
        PeakExtractor::new(cfg)
            .extract(
                &ExtractionInput::household(series),
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap()
    }

    #[test]
    fn one_offer_per_day() {
        let series = two_peak_day();
        let out = run(&series, ExtractionConfig::default(), 1);
        assert_eq!(out.flex_offers.len(), 1);
        out.check_invariants(&series).unwrap();
    }

    #[test]
    fn report_reproduces_the_walkthrough_structure() {
        let series = two_peak_day();
        let out = run(&series, ExtractionConfig::default(), 1);
        let report = &out.diagnostics.peak_reports[0];
        // Threshold is the daily mean.
        let mean = series.total_energy() / 96.0;
        assert!((report.threshold_kwh - mean).abs() < 1e-9);
        // Filter threshold is share × day total.
        assert!((report.min_peak_energy_kwh - 0.05 * series.total_energy()).abs() < 1e-9);
        // Exactly two survivors, probabilities sum to 1.
        let survivors: Vec<&PeakInfo> = report.peaks.iter().filter(|p| p.survived_filter).collect();
        assert_eq!(survivors.len(), 2, "{:?}", report.peaks);
        let p_sum: f64 = survivors.iter().map(|p| p.probability).sum();
        assert!((p_sum - 1.0).abs() < 1e-9);
        // The bigger peak has the bigger probability.
        assert!(survivors[1].size_kwh > survivors[0].size_kwh);
        assert!(survivors[1].probability > survivors[0].probability);
        // Selection picked a surviving peak.
        let sel = report.selected.unwrap();
        assert!(report.peaks[sel - 1].survived_filter);
    }

    #[test]
    fn offer_sits_on_the_selected_peak() {
        let series = two_peak_day();
        let out = run(&series, ExtractionConfig::default(), 1);
        let report = &out.diagnostics.peak_reports[0];
        let sel = &report.peaks[report.selected.unwrap() - 1];
        assert_eq!(out.flex_offers[0].earliest_start(), sel.start);
    }

    #[test]
    fn selection_frequency_tracks_peak_size() {
        let series = two_peak_day();
        let mut evening = 0;
        let n = 300;
        for seed in 0..n {
            let out = run(&series, ExtractionConfig::default(), seed);
            let report = &out.diagnostics.peak_reports[0];
            let sel = &report.peaks[report.selected.unwrap() - 1];
            if sel.intervals == 6 {
                evening += 1;
            }
        }
        let p = evening as f64 / n as f64;
        // Expected ≈ 5.0/(5.0+2.6) ≈ 0.66.
        assert!((p - 0.66).abs() < 0.1, "evening selection rate {p}");
    }

    #[test]
    fn extracted_energy_is_days_flexible_part() {
        let series = two_peak_day();
        let out = run(&series, ExtractionConfig::default(), 2);
        let expect = 0.05 * series.total_energy();
        assert!(
            (out.extracted_energy() - expect).abs() < 1e-9,
            "{} vs {expect}",
            out.extracted_energy()
        );
    }

    #[test]
    fn flat_day_has_no_peaks_and_no_offers() {
        // 0.5 is exactly representable, so the mean equals every value
        // and the strict `>` comparison cannot flip on rounding.
        let series = TimeSeries::constant(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            0.5,
            96,
        );
        let out = run(&series, ExtractionConfig::default(), 3);
        assert!(out.flex_offers.is_empty());
        assert!(out
            .diagnostics
            .notes
            .iter()
            .any(|n| n.contains("no peak survived")));
        // The report is still emitted, with zero survivors.
        assert_eq!(out.diagnostics.peak_reports.len(), 1);
        assert!(out.diagnostics.peak_reports[0].peaks.is_empty());
    }

    #[test]
    fn large_share_can_filter_every_peak() {
        let series = two_peak_day();
        let out = run(&series, ExtractionConfig::with_share(0.5), 4);
        assert!(out.flex_offers.is_empty());
    }

    #[test]
    fn median_threshold_ablation_detects_more_peaks() {
        let series = two_peak_day();
        let mean_ex = PeakExtractor::new(ExtractionConfig::default());
        let med_ex =
            PeakExtractor::with_threshold(ExtractionConfig::default(), PeakThreshold::Median);
        let mut rng = StdRng::seed_from_u64(5);
        let a = mean_ex
            .extract(&ExtractionInput::household(&series), &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let b = med_ex
            .extract(&ExtractionInput::household(&series), &mut rng)
            .unwrap();
        // Median (0.2) sits below the mean here → at least as many raw peaks.
        assert!(
            b.diagnostics.peak_reports[0].peaks.len() >= a.diagnostics.peak_reports[0].peaks.len()
        );
    }

    #[test]
    fn multi_day_input_yields_one_offer_per_day() {
        let mut series = two_peak_day();
        let day2 = TimeSeries::new(
            "2013-03-19".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            two_peak_day().into_values(),
        )
        .unwrap();
        series.concat(&day2).unwrap();
        let out = run(&series, ExtractionConfig::default(), 6);
        assert_eq!(out.flex_offers.len(), 2);
        assert_eq!(out.diagnostics.peak_reports.len(), 2);
        out.check_invariants(&series).unwrap();
    }

    #[test]
    fn empty_series_errors() {
        let series = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            vec![],
        )
        .unwrap();
        let ex = PeakExtractor::new(ExtractionConfig::default());
        assert_eq!(
            ex.extract(
                &ExtractionInput::household(&series),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::EmptySeries)
        );
    }
}
