//! The schedule-based appliance-level approach (paper §4.2).
//!
//! "Firstly, it derives the shortlist of the appliances and their usage
//! schedule. Then in step 2, the extraction formulates flex-offers
//! based on the given schedule" — refining the frequency-based approach
//! with day-kind awareness ("the dishwasher is more used during the
//! weekends since the family eats at home more often").

use crate::extractor::{extract_cycle, FlexibilityExtractor};
use crate::{Diagnostics, ExtractionConfig, ExtractionError, ExtractionInput, ExtractionOutput};
use flextract_disagg::{detect_activations, MatchConfig, MinedSchedule};
use flextract_flexoffer::{EnergyRange, FlexOffer};
use flextract_series::segment::{split_whole_days, DayKind};
use flextract_series::TimeSeries;
use flextract_time::Duration;
use rand::rngs::StdRng;
use rand::Rng;

/// Schedule-driven extraction: offers follow the mined usage schedule.
#[derive(Debug, Clone)]
pub struct ScheduleBasedExtractor {
    cfg: ExtractionConfig,
    match_cfg: MatchConfig,
    /// Histogram bin width for schedule mining (minutes).
    bin_minutes: u32,
    /// Minimum per-day rate for a bin run to become a schedule slot.
    min_slot_rate: f64,
}

impl ScheduleBasedExtractor {
    /// Build with default mining parameters (60-min bins, 0.25 rate).
    pub fn new(cfg: ExtractionConfig) -> Self {
        ScheduleBasedExtractor {
            cfg,
            match_cfg: MatchConfig::default(),
            bin_minutes: 60,
            min_slot_rate: 0.25,
        }
    }

    /// Override mining parameters (ablation knob).
    pub fn with_mining(cfg: ExtractionConfig, bin_minutes: u32, min_slot_rate: f64) -> Self {
        ScheduleBasedExtractor {
            cfg,
            match_cfg: MatchConfig::default(),
            bin_minutes,
            min_slot_rate,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExtractionConfig {
        &self.cfg
    }
}

impl FlexibilityExtractor for ScheduleBasedExtractor {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn extract(
        &self,
        input: &ExtractionInput<'_>,
        rng: &mut StdRng,
    ) -> Result<ExtractionOutput, ExtractionError> {
        self.cfg.validate()?;
        let series = input.series;
        if series.is_empty() {
            return Err(ExtractionError::EmptySeries);
        }
        let catalog = input.catalog.ok_or(ExtractionError::MissingCatalog)?;
        let fine = input.fine_series.unwrap_or(series);

        // ---- Step 1: detections → per-day-kind schedules.
        let shiftable = catalog.shiftable();
        let (detections, _) = detect_activations(fine, &shiftable, &self.match_cfg);
        let days = split_whole_days(fine);
        let workdays = days
            .iter()
            .filter(|d| !d.start().day_of_week().is_weekend())
            .count() as f64;
        let weekend_days = days.len() as f64 - workdays;
        let schedules =
            MinedSchedule::mine_all(&detections, workdays, weekend_days, self.bin_minutes);

        let mut diagnostics = Diagnostics::default();
        for s in &schedules {
            let slots = s.slots(self.min_slot_rate);
            if !slots.is_empty() {
                diagnostics.shortlist.push(format!(
                    "{}: {} slot(s), {:.2}/workday, {:.2}/weekend-day",
                    s.appliance,
                    slots.len(),
                    s.daily_rate(DayKind::Workday),
                    s.daily_rate(DayKind::Weekend),
                ));
            }
        }

        // ---- Step 2: walk the observed days and formulate offers
        // where the schedule says the appliance runs.
        let mut modified = series.clone();
        let mut extracted = TimeSeries::zeros_like(series);
        let mut offers: Vec<FlexOffer> = Vec::new();
        let mut next_id = 1u64;
        let slice_min = self.cfg.slice_resolution.minutes();

        for day in split_whole_days(series) {
            let weekend = day.start().day_of_week().is_weekend();
            for schedule in &schedules {
                let Some(spec) = catalog.find_by_name(&schedule.appliance) else {
                    continue;
                };
                let flexibility = spec.shiftability.max_delay();
                if flexibility <= Duration::ZERO {
                    continue;
                }
                for slot in schedule.slots(self.min_slot_rate) {
                    let kind_matches = match slot.day_kind {
                        DayKind::Workday => !weekend,
                        DayKind::Weekend => weekend,
                        DayKind::All => true,
                    };
                    if !kind_matches {
                        continue;
                    }
                    // Expected activations this day in this slot:
                    // deterministic whole part + Bernoulli remainder.
                    let expected = slot.expected_per_day;
                    let mut count = expected.floor() as usize;
                    if rng.gen::<f64>() < expected.fract() {
                        count += 1;
                    }
                    for _ in 0..count {
                        // Pick the slice-aligned start inside the slot
                        // window with the most residual energy under
                        // the cycle span.
                        let w_from = slot.window_start.minute_of_day() as i64;
                        let w_to = slot.window_end.minute_of_day() as i64;
                        let cycle_min = spec.profile.duration().as_minutes();
                        let mut best: Option<(f64, i64)> = None;
                        let mut m = (w_from / slice_min) * slice_min;
                        while m <= w_to {
                            let start_t = day.start() + Duration::minutes(m);
                            let span = flextract_time::TimeRange::starting_at(
                                start_t,
                                Duration::minutes(cycle_min),
                            )
                            .expect("cycle durations are positive");
                            let support = modified.energy_in(span);
                            if best.is_none_or(|(b, _)| support > b) {
                                best = Some((support, m));
                            }
                            m += slice_min;
                        }
                        let Some((support, minute)) = best else {
                            continue;
                        };
                        let nominal = spec.profile.cycle_energy_kwh(0.5);
                        if support < 0.3 * nominal {
                            diagnostics.notes.push(format!(
                                "{} {}: slot lacks consumption support ({support:.2} kWh)",
                                schedule.appliance,
                                day.start().date()
                            ));
                            continue;
                        }
                        let start_t = day.start() + Duration::minutes(minute);
                        let cycle = spec.profile.to_energy_series(start_t, 0.5);
                        let Some((lo, energies)) =
                            extract_cycle(&mut modified, &mut extracted, &cycle)
                        else {
                            continue;
                        };
                        let realised = spec.profile.cycle_energy_kwh(0.5);
                        let (env_lo, env_hi) = spec.profile.energy_range_kwh();
                        let lo_ratio = (env_lo / realised).min(1.0);
                        let hi_ratio = (env_hi / realised).max(1.0);
                        let slices: Vec<EnergyRange> = energies
                            .iter()
                            .map(|&e| EnergyRange::new(e * lo_ratio, e * hi_ratio))
                            .collect::<Result<_, _>>()?;
                        let earliest = modified.timestamp_of(lo);
                        let latest = earliest
                            + Duration::minutes((flexibility.as_minutes() / slice_min) * slice_min);
                        let creation = earliest - self.cfg.creation_lead;
                        let acceptance = (creation + self.cfg.acceptance_offset).min(earliest);
                        let assignment = (earliest - self.cfg.assignment_lead).max(acceptance);
                        let offer = FlexOffer::builder(next_id)
                            .start_window(earliest, latest)
                            .slices(self.cfg.slice_resolution, slices)
                            .created_at(creation)
                            .acceptance_by(acceptance)
                            .assignment_by(assignment)
                            .build()?;
                        next_id += 1;
                        offers.push(offer);
                    }
                }
            }
        }
        diagnostics.notes.push(format!(
            "{} detections mined into {} schedules; {} offers emitted",
            detections.len(),
            schedules.len(),
            offers.len()
        ));
        offers.sort_by_key(|o| o.earliest_start());
        Ok(ExtractionOutput {
            approach: self.name(),
            flex_offers: offers,
            modified_series: modified,
            extracted_series: extracted,
            diagnostics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_appliance::Catalog;
    use flextract_series::{resample, TimeSeries};
    use flextract_time::{Resolution, TimeRange, Timestamp};
    use rand::SeedableRng;

    /// Two weeks at 1-min resolution with a washer cycle every day at
    /// 19:00 over a small base load.
    fn routine() -> (TimeSeries, TimeSeries) {
        let cat = Catalog::extended();
        let start: Timestamp = "2013-03-18".parse().unwrap();
        let range = TimeRange::starting_at(start, Duration::weeks(2)).unwrap();
        let mut fine = TimeSeries::zeros_over(range, Resolution::MIN_1).unwrap();
        for v in fine.values_mut() {
            *v = 0.1 / 60.0;
        }
        let washer = cat
            .find_by_name("Washing Machine from Manufacturer Y")
            .unwrap();
        for d in 0..14 {
            let at = start + Duration::days(d) + Duration::hours(19);
            fine.add_overlapping(&washer.profile.to_energy_series(at, 0.5))
                .unwrap();
        }
        let market = resample::downsample(&fine, Resolution::MIN_15).unwrap();
        (fine, market)
    }

    fn run(seed: u64) -> (ExtractionOutput, TimeSeries) {
        let (fine, market) = routine();
        let cat = Catalog::extended();
        let ex = ScheduleBasedExtractor::new(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&market)
                    .with_fine_series(&fine)
                    .with_catalog(&cat),
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap();
        (out, market)
    }

    #[test]
    fn mines_the_evening_slot_and_emits_daily_offers() {
        let (out, market) = run(1);
        out.check_invariants(&market).unwrap();
        // The 19:00 washer routine: roughly one offer per day.
        assert!(
            out.flex_offers.len() >= 8 && out.flex_offers.len() <= 16,
            "{} offers",
            out.flex_offers.len()
        );
        // Offers start inside the mined evening slot.
        for offer in &out.flex_offers {
            let hour = offer.earliest_start().time().hour;
            assert!((18..=21).contains(&hour), "offer at {hour}h");
        }
        // The shortlist mentions the washer schedule.
        assert!(out
            .diagnostics
            .shortlist
            .iter()
            .any(|s| s.contains("Washing Machine")));
    }

    #[test]
    fn offers_carry_catalog_flexibility() {
        let (out, _) = run(2);
        for offer in &out.flex_offers {
            // Washer max delay is 8 h.
            assert_eq!(offer.time_flexibility(), Duration::hours(8));
        }
    }

    #[test]
    fn requires_catalog() {
        let (_, market) = routine();
        let ex = ScheduleBasedExtractor::new(ExtractionConfig::default());
        assert_eq!(
            ex.extract(
                &ExtractionInput::household(&market),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::MissingCatalog)
        );
    }

    #[test]
    fn quiet_series_emits_nothing() {
        let start: Timestamp = "2013-03-18".parse().unwrap();
        let market = TimeSeries::constant(start, Resolution::MIN_15, 0.025, 96 * 7);
        let cat = Catalog::extended();
        let ex = ScheduleBasedExtractor::new(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&market).with_catalog(&cat),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        assert!(out.flex_offers.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = run(9);
        let (b, _) = run(9);
        assert_eq!(a.flex_offers, b.flex_offers);
    }

    #[test]
    fn extraction_energy_is_bounded_by_consumption() {
        let (out, market) = run(3);
        assert!(out.extracted_energy() <= market.total_energy());
        assert!(out.modified_series.values().iter().all(|&v| v >= -1e-9));
    }
}
