//! The random baseline — MIRABEL's status-quo generator the paper
//! criticises.
//!
//! "The random approach assumes that consumption at every moment of a
//! day is potentially flexible … macro (or aggregated) flex-offers are
//! more or less uniformly dispatched within the day" (§1). It is
//! implemented here because every evaluation experiment needs it as the
//! comparison point.

use crate::extractor::{build_offer, sample_slice_count, FlexibilityExtractor};
use crate::{Diagnostics, ExtractionConfig, ExtractionError, ExtractionInput, ExtractionOutput};
use flextract_series::segment::split_whole_days;
use flextract_series::TimeSeries;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniformly-positioned flex-offer generation (the baseline).
#[derive(Debug, Clone)]
pub struct RandomExtractor {
    cfg: ExtractionConfig,
}

impl RandomExtractor {
    /// Build with the given configuration.
    pub fn new(cfg: ExtractionConfig) -> Self {
        RandomExtractor { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExtractionConfig {
        &self.cfg
    }
}

impl FlexibilityExtractor for RandomExtractor {
    fn name(&self) -> &'static str {
        "random"
    }

    fn extract(
        &self,
        input: &ExtractionInput<'_>,
        rng: &mut StdRng,
    ) -> Result<ExtractionOutput, ExtractionError> {
        self.cfg.validate()?;
        let series = input.series;
        if series.is_empty() {
            return Err(ExtractionError::EmptySeries);
        }
        let mut modified = series.clone();
        let mut extracted = TimeSeries::zeros_like(series);
        let mut offers = Vec::new();
        let mut diagnostics = Diagnostics::default();
        let mut next_id = 1u64;

        for day in split_whole_days(series) {
            let day_energy = day.total_energy();
            if day_energy <= 0.0 {
                diagnostics.notes.push(format!(
                    "{}: zero-consumption day skipped",
                    day.start().date()
                ));
                continue;
            }
            let per_offer =
                self.cfg.flexible_share * day_energy / self.cfg.random_offers_per_day.max(1) as f64;
            if per_offer <= 0.0 {
                continue;
            }
            for _ in 0..self.cfg.random_offers_per_day {
                let n = sample_slice_count(rng, &self.cfg, day.len());
                // Uniform position anywhere in the day (the defining
                // property of the baseline).
                let max_start = day.len().saturating_sub(n);
                let start_idx = if max_start > 0 {
                    rng.gen_range(0..=max_start)
                } else {
                    0
                };
                let start_t = day.timestamp_of(start_idx);
                // Equal split, capped by what each interval still holds.
                let target = per_offer / n as f64;
                let mut energies = Vec::with_capacity(n);
                for k in 0..n {
                    let global = modified
                        .index_of(day.timestamp_of(start_idx + k))
                        .expect("day intervals lie inside the series");
                    let take = target.min(modified.values()[global].max(0.0));
                    energies.push(take);
                    modified.values_mut()[global] -= take;
                    extracted.values_mut()[global] += take;
                }
                let offer = build_offer(next_id, &self.cfg, rng, start_t, &energies)?;
                next_id += 1;
                offers.push(offer);
            }
        }
        offers.sort_by_key(|o| o.earliest_start());
        Ok(ExtractionOutput {
            approach: self.name(),
            flex_offers: offers,
            modified_series: modified,
            extracted_series: extracted,
            diagnostics,
        })
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use flextract_series::TimeSeries;
    use flextract_time::{Resolution, Timestamp};
    use rand::SeedableRng;

    fn flat_days(days: usize) -> TimeSeries {
        TimeSeries::constant(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            0.4,
            96 * days,
        )
    }

    fn run(series: &TimeSeries, cfg: ExtractionConfig, seed: u64) -> ExtractionOutput {
        let ex = RandomExtractor::new(cfg);
        ex.extract(
            &ExtractionInput::household(series),
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap()
    }

    #[test]
    fn offers_per_day_and_energy_accounting() {
        let series = flat_days(3);
        let out = run(&series, ExtractionConfig::default(), 7);
        assert_eq!(out.flex_offers.len(), 3 * 4);
        out.check_invariants(&series).unwrap();
        // Extracted ≈ share × total (caps rarely bind on flat data).
        assert!(
            (out.achieved_share() - 0.05).abs() < 0.005,
            "{}",
            out.achieved_share()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let series = flat_days(2);
        let a = run(&series, ExtractionConfig::default(), 1);
        let b = run(&series, ExtractionConfig::default(), 1);
        assert_eq!(a.flex_offers, b.flex_offers);
        assert_eq!(a.modified_series, b.modified_series);
        let c = run(&series, ExtractionConfig::default(), 2);
        assert_ne!(a.flex_offers, c.flex_offers);
    }

    #[test]
    fn start_positions_are_dispersed() {
        // The baseline's defining flaw: uniform dispersion. Over many
        // offers, starts should span most of the day.
        let series = flat_days(30);
        let out = run(&series, ExtractionConfig::default(), 3);
        let hours: std::collections::HashSet<u8> = out
            .flex_offers
            .iter()
            .map(|o| o.earliest_start().time().hour)
            .collect();
        assert!(
            hours.len() > 12,
            "only {} distinct start hours",
            hours.len()
        );
    }

    #[test]
    fn zero_share_yields_empty_offers() {
        let series = flat_days(1);
        let out = run(&series, ExtractionConfig::with_share(0.0), 5);
        assert_eq!(out.flex_offers.len(), 0);
        assert_eq!(out.extracted_energy(), 0.0);
        out.check_invariants(&series).unwrap();
    }

    #[test]
    fn zero_day_is_skipped_with_note() {
        let mut values = vec![0.0; 96];
        values.extend(vec![0.4; 96]);
        let series = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap();
        let out = run(&series, ExtractionConfig::default(), 5);
        assert_eq!(out.flex_offers.len(), 4); // only the second day
        assert!(out
            .diagnostics
            .notes
            .iter()
            .any(|n| n.contains("zero-consumption")));
    }

    #[test]
    fn empty_series_errors() {
        let series = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            vec![],
        )
        .unwrap();
        let ex = RandomExtractor::new(ExtractionConfig::default());
        assert_eq!(
            ex.extract(
                &ExtractionInput::household(&series),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::EmptySeries)
        );
    }

    #[test]
    fn modified_series_never_negative() {
        // High share forces the caps to bind.
        let series = flat_days(2);
        let out = run(&series, ExtractionConfig::with_share(1.0), 11);
        assert!(out.modified_series.values().iter().all(|&v| v >= -1e-12));
        out.check_invariants(&series).unwrap();
    }

    #[test]
    fn invalid_config_is_rejected() {
        let series = flat_days(1);
        let mut cfg = ExtractionConfig::default();
        cfg.flexible_share = 2.0;
        let ex = RandomExtractor::new(cfg);
        assert!(matches!(
            ex.extract(
                &ExtractionInput::household(&series),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::InvalidConfig { .. })
        ));
    }
}
