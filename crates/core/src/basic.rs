//! The basic extraction approach (paper §3.1, Figure 4).
//!
//! "The process of the flexibility extraction starts with the division
//! of input time series into periods, and then one flex-offer is
//! extracted for each of the periods spanning few hours, then the
//! fraction of flexibility within each period is calculated (based on
//! the configuration parameter). Lastly, a flex-offer for each period
//! is extracted. Afterwards, time and energy amount flexibilities are
//! built by applying some randomization to the constructed flex-offers."

use crate::extractor::{build_offer, sample_slice_count, FlexibilityExtractor};
use crate::{Diagnostics, ExtractionConfig, ExtractionError, ExtractionInput, ExtractionOutput};
use flextract_series::segment::split_into_periods;
use flextract_series::TimeSeries;
use rand::rngs::StdRng;

/// Period-based extraction with a fixed flexible share.
#[derive(Debug, Clone)]
pub struct BasicExtractor {
    cfg: ExtractionConfig,
}

impl BasicExtractor {
    /// Build with the given configuration.
    pub fn new(cfg: ExtractionConfig) -> Self {
        BasicExtractor { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExtractionConfig {
        &self.cfg
    }
}

impl FlexibilityExtractor for BasicExtractor {
    fn name(&self) -> &'static str {
        "basic"
    }

    fn extract(
        &self,
        input: &ExtractionInput<'_>,
        rng: &mut StdRng,
    ) -> Result<ExtractionOutput, ExtractionError> {
        self.cfg.validate()?;
        let series = input.series;
        if series.is_empty() {
            return Err(ExtractionError::EmptySeries);
        }
        let mut modified = series.clone();
        let mut extracted = TimeSeries::zeros_like(series);
        let mut offers = Vec::new();
        let mut diagnostics = Diagnostics::default();
        let mut next_id = 1u64;

        for period in split_into_periods(series, self.cfg.period) {
            let period_energy = period.total_energy();
            if period_energy <= 0.0 {
                diagnostics.notes.push(format!(
                    "{}: zero-consumption period skipped",
                    period.start()
                ));
                continue;
            }
            // "the fraction of flexibility within each period is
            // calculated (based on the configuration parameter)".
            let flexible = self.cfg.flexible_share * period_energy;
            if flexible <= 0.0 {
                continue;
            }
            // The profile anchors at the period start and covers the
            // first n slices; the consumption *shape* of those slices is
            // preserved so the offer looks like the load it represents
            // (Figure 4's profiles follow the day's shape).
            let n = sample_slice_count(rng, &self.cfg, period.len());
            let window = &period.values()[..n];
            let window_energy: f64 = window.iter().sum();
            let mut energies: Vec<f64> = if window_energy > 0.0 {
                window
                    .iter()
                    .map(|c| flexible * c / window_energy)
                    .collect()
            } else {
                vec![flexible / n as f64; n]
            };
            // Never extract more than an interval holds.
            let mut shortfall = 0.0;
            for (k, e) in energies.iter_mut().enumerate() {
                let global = modified
                    .index_of(period.timestamp_of(k))
                    .expect("period intervals lie inside the series");
                let available = modified.values()[global].max(0.0);
                if *e > available {
                    shortfall += *e - available;
                    *e = available;
                }
                modified.values_mut()[global] -= *e;
                extracted.values_mut()[global] += *e;
            }
            if shortfall > 1e-9 {
                diagnostics.notes.push(format!(
                    "{}: capped {shortfall:.3} kWh (period consumption too concentrated)",
                    period.start()
                ));
            }
            let offer = build_offer(next_id, &self.cfg, rng, period.start(), &energies)?;
            next_id += 1;
            offers.push(offer);
        }
        Ok(ExtractionOutput {
            approach: self.name(),
            flex_offers: offers,
            modified_series: modified,
            extracted_series: extracted,
            diagnostics,
        })
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use flextract_series::TimeSeries;
    use flextract_time::{Duration, Resolution, Timestamp};
    use rand::SeedableRng;

    fn shaped_day() -> TimeSeries {
        // A day with a morning and an evening hump.
        let values: Vec<f64> = (0..96)
            .map(|i| {
                let h = i as f64 / 4.0;
                0.2 + 0.6 * (-(h - 8.0) * (h - 8.0) / 8.0).exp()
                    + 0.9 * (-(h - 19.0) * (h - 19.0) / 6.0).exp()
            })
            .collect();
        TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap()
    }

    fn run(series: &TimeSeries, cfg: ExtractionConfig, seed: u64) -> ExtractionOutput {
        BasicExtractor::new(cfg)
            .extract(
                &ExtractionInput::household(series),
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap()
    }

    #[test]
    fn one_offer_per_period_like_figure_4() {
        let series = shaped_day();
        let out = run(&series, ExtractionConfig::default(), 1);
        // 24 h / 6 h periods = 4 offers, as in Figure 4.
        assert_eq!(out.flex_offers.len(), 4);
        out.check_invariants(&series).unwrap();
        // Offers anchor at period starts.
        let starts: Vec<String> = out
            .flex_offers
            .iter()
            .map(|o| o.earliest_start().to_string())
            .collect();
        assert_eq!(
            starts,
            vec![
                "2013-03-18 00:00",
                "2013-03-18 06:00",
                "2013-03-18 12:00",
                "2013-03-18 18:00"
            ]
        );
    }

    #[test]
    fn per_period_energy_is_share_of_period() {
        let series = shaped_day();
        let out = run(&series, ExtractionConfig::default(), 2);
        for (offer, period) in out
            .flex_offers
            .iter()
            .zip(split_into_periods(&series, Duration::hours(6)))
        {
            // Extracted energy for the period's intervals equals the
            // flexible fraction of the period ("the total energy amount
            // … is equal to the flexible part extracted from the input
            // time series", §3.1).
            let extracted = out.extracted_series.energy_in(period.range());
            let expect = 0.05 * period.total_energy();
            assert!(
                (extracted - expect).abs() < 1e-9,
                "period {}: {extracted} vs {expect}",
                period.start()
            );
            // The offer's [min, max] band brackets that energy.
            let total = offer.total_energy();
            assert!(total.min <= expect + 1e-9);
            assert!(total.max >= expect - 1e-9);
        }
    }

    #[test]
    fn profile_follows_consumption_shape() {
        let series = shaped_day();
        let mut cfg = ExtractionConfig::default();
        cfg.slices_per_offer = (8, 8);
        let out = run(&series, cfg, 3);
        // Evening period (18:00): consumption is humped around 19:00,
        // so within the profile the 19:00-ish slices must dominate.
        let evening = &out.flex_offers[3];
        let mids: Vec<f64> = evening
            .profile()
            .slices()
            .iter()
            .map(|s| s.midpoint())
            .collect();
        let first = mids[0];
        let at_peak = mids[4]; // 19:00 (4 slices past 18:00)
        assert!(
            at_peak > first,
            "profile should rise into the hump: {mids:?}"
        );
    }

    #[test]
    fn ragged_tail_period_still_extracts() {
        // 26 hours: four 6-h periods + one 2-h tail.
        let values = vec![0.4; 104];
        let series = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap();
        let out = run(&series, ExtractionConfig::default(), 4);
        assert_eq!(out.flex_offers.len(), 5);
        out.check_invariants(&series).unwrap();
    }

    #[test]
    fn share_sweep_scales_linearly() {
        let series = shaped_day();
        let lo = run(&series, ExtractionConfig::with_share(0.001), 5);
        let hi = run(&series, ExtractionConfig::with_share(0.065), 5);
        assert!((lo.achieved_share() - 0.001).abs() < 1e-6);
        assert!((hi.achieved_share() - 0.065).abs() < 1e-6);
        let ratio = hi.extracted_energy() / lo.extracted_energy();
        assert!((ratio - 65.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn zero_period_skipped_with_note() {
        let mut values = vec![0.0; 24];
        values.extend(vec![0.4; 72]);
        let series = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap();
        let out = run(&series, ExtractionConfig::default(), 6);
        assert_eq!(out.flex_offers.len(), 3);
        assert!(out
            .diagnostics
            .notes
            .iter()
            .any(|n| n.contains("zero-consumption")));
    }

    #[test]
    fn empty_series_errors() {
        let series = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            vec![],
        )
        .unwrap();
        let ex = BasicExtractor::new(ExtractionConfig::default());
        assert_eq!(
            ex.extract(
                &ExtractionInput::household(&series),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::EmptySeries)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let series = shaped_day();
        let a = run(&series, ExtractionConfig::default(), 9);
        let b = run(&series, ExtractionConfig::default(), 9);
        assert_eq!(a.flex_offers, b.flex_offers);
    }

    #[test]
    fn all_offers_validate() {
        let series = shaped_day();
        let out = run(&series, ExtractionConfig::default(), 10);
        for o in &out.flex_offers {
            assert!(o.validate().is_ok());
        }
    }
}
