//! Shared extraction configuration — the paper's "context information".
//!
//! §3.1 enumerates the parameters an extractor expects: "the percentage
//! of the flexible demand part in the input time series … the number of
//! intervals in a single flex-offer, interval duration, minimum and
//! maximum percentage of required energy, creation time, acceptance
//! time, assignment time, earliest start time, and latest start time.
//! All these parameters are randomized in controlled variation limits in
//! order to generate non-uniform flex-offers."

use crate::ExtractionError;
use flextract_time::{Duration, Resolution};
use serde::{Deserialize, Serialize};

/// Tunable parameters shared by the extraction approaches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractionConfig {
    /// Fraction of consumption assumed flexible (the MIRACLE trial
    /// found 0.1–6.5 %; default 5 %, the value of the paper's Figure-5
    /// walk-through).
    pub flexible_share: f64,
    /// Flex-offer slice width (the MIRABEL market interval).
    pub slice_resolution: Resolution,
    /// Inclusive range for the number of profile slices per offer.
    pub slices_per_offer: (usize, usize),
    /// Controlled variation of the per-slice *minimum* energy, as a
    /// fraction of the extracted slice energy.
    pub min_energy_fraction: (f64, f64),
    /// Controlled variation of the per-slice *maximum* energy, as a
    /// fraction of the extracted slice energy.
    pub max_energy_fraction: (f64, f64),
    /// Controlled variation of the start-time flexibility
    /// (`latest_start − earliest_start`).
    pub time_flexibility: (Duration, Duration),
    /// How long before the earliest start the offer is created.
    pub creation_lead: Duration,
    /// Offset from creation to the acceptance deadline.
    pub acceptance_offset: Duration,
    /// How long before the earliest start assignment must happen.
    pub assignment_lead: Duration,
    /// Period length for the basic approach ("periods spanning few
    /// hours", §3.1; Figure 4 shows four offers tiling a day).
    pub period: Duration,
    /// Offers per day for the random baseline.
    pub random_offers_per_day: usize,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            flexible_share: 0.05,
            slice_resolution: Resolution::MIN_15,
            slices_per_offer: (4, 8),
            min_energy_fraction: (0.7, 0.95),
            max_energy_fraction: (1.05, 1.3),
            time_flexibility: (Duration::hours(1), Duration::hours(7)),
            creation_lead: Duration::hours(24),
            acceptance_offset: Duration::hours(2),
            assignment_lead: Duration::hours(1),
            period: Duration::hours(6),
            random_offers_per_day: 4,
        }
    }
}

impl ExtractionConfig {
    /// A config with the given flexible share and all other defaults.
    pub fn with_share(share: f64) -> Self {
        ExtractionConfig {
            flexible_share: share,
            ..ExtractionConfig::default()
        }
    }

    /// Check every field's domain.
    pub fn validate(&self) -> Result<(), ExtractionError> {
        if !(0.0..=1.0).contains(&self.flexible_share) {
            return Err(ExtractionError::InvalidConfig {
                what: "flexible_share must be in [0, 1]",
            });
        }
        if self.slices_per_offer.0 == 0 || self.slices_per_offer.0 > self.slices_per_offer.1 {
            return Err(ExtractionError::InvalidConfig {
                what: "slices_per_offer must be a non-empty positive range",
            });
        }
        if self.min_energy_fraction.0 < 0.0
            || self.min_energy_fraction.0 > self.min_energy_fraction.1
        {
            return Err(ExtractionError::InvalidConfig {
                what: "min_energy_fraction must be an ordered non-negative range",
            });
        }
        if self.max_energy_fraction.0 < self.min_energy_fraction.1 {
            return Err(ExtractionError::InvalidConfig {
                what: "max_energy_fraction must start at or above min_energy_fraction's end",
            });
        }
        if self.max_energy_fraction.0 > self.max_energy_fraction.1 {
            return Err(ExtractionError::InvalidConfig {
                what: "max_energy_fraction must be an ordered range",
            });
        }
        if self.time_flexibility.0.is_negative()
            || self.time_flexibility.1 < self.time_flexibility.0
        {
            return Err(ExtractionError::InvalidConfig {
                what: "time_flexibility must be an ordered non-negative range",
            });
        }
        if self.period.as_minutes() < self.slice_resolution.minutes() {
            return Err(ExtractionError::InvalidConfig {
                what: "period must cover at least one slice",
            });
        }
        if self.creation_lead.is_negative()
            || self.acceptance_offset.is_negative()
            || self.assignment_lead.is_negative()
        {
            return Err(ExtractionError::InvalidConfig {
                what: "lifecycle leads must be non-negative",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_walkthrough() {
        let cfg = ExtractionConfig::default();
        cfg.validate().unwrap();
        // Figure 5 uses a 5 % flexible part.
        assert!((cfg.flexible_share - 0.05).abs() < 1e-12);
        assert_eq!(cfg.slice_resolution, Resolution::MIN_15);
        // Figure 4 shows 4 offers per day → 6-hour periods.
        assert_eq!(cfg.period, Duration::hours(6));
    }

    #[test]
    fn with_share_overrides_only_share() {
        let cfg = ExtractionConfig::with_share(0.001);
        cfg.validate().unwrap();
        assert!((cfg.flexible_share - 0.001).abs() < 1e-15);
        assert_eq!(cfg.period, ExtractionConfig::default().period);
    }

    #[test]
    fn share_domain() {
        assert!(ExtractionConfig::with_share(-0.1).validate().is_err());
        assert!(ExtractionConfig::with_share(1.1).validate().is_err());
        assert!(ExtractionConfig::with_share(0.0).validate().is_ok());
        assert!(ExtractionConfig::with_share(1.0).validate().is_ok());
    }

    #[test]
    fn slice_range_domain() {
        let mut cfg = ExtractionConfig::default();
        cfg.slices_per_offer = (0, 4);
        assert!(cfg.validate().is_err());
        cfg.slices_per_offer = (5, 4);
        assert!(cfg.validate().is_err());
        cfg.slices_per_offer = (4, 4);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn energy_fraction_domains() {
        let mut cfg = ExtractionConfig::default();
        cfg.min_energy_fraction = (-0.1, 0.9);
        assert!(cfg.validate().is_err());
        cfg.min_energy_fraction = (0.9, 0.7);
        assert!(cfg.validate().is_err());
        cfg = ExtractionConfig::default();
        cfg.max_energy_fraction = (0.5, 1.2); // overlaps below min range end
        assert!(cfg.validate().is_err());
        cfg.max_energy_fraction = (1.3, 1.2);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn time_and_period_domains() {
        let mut cfg = ExtractionConfig::default();
        cfg.time_flexibility = (Duration::hours(2), Duration::hours(1));
        assert!(cfg.validate().is_err());
        cfg.time_flexibility = (Duration::minutes(-15), Duration::hours(1));
        assert!(cfg.validate().is_err());
        cfg = ExtractionConfig::default();
        cfg.period = Duration::minutes(5);
        assert!(cfg.validate().is_err());
        cfg = ExtractionConfig::default();
        cfg.creation_lead = Duration::minutes(-1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let cfg = ExtractionConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExtractionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
