//! # flextract-core
//!
//! The paper's contribution: **automated extraction of flex-offers from
//! electricity consumption time series** (Kaulakienė, Šikšnys, Pitarch;
//! EDBT/ICDT Workshops 2013).
//!
//! Six extractors implement the taxonomy of the paper's Figure 3 — the
//! status-quo baseline it criticises plus its five proposals, at two
//! levels:
//!
//! **Total-household level** (§3):
//! * [`RandomExtractor`] — the MIRABEL testing baseline: "consumption at
//!   every moment of a day is potentially flexible"; offers land
//!   uniformly in the day.
//! * [`BasicExtractor`] (§3.1) — a fixed share of consumption is
//!   flexible at any time; the day is cut into few-hour periods and one
//!   flex-offer is extracted per period (Figure 4).
//! * [`PeakExtractor`] (§3.2) — flexibility lives in consumption peaks;
//!   peaks above the daily average are detected, filtered by the
//!   flexible-part threshold, and one is chosen with size-proportional
//!   probability (Figure 5); one flex-offer per consumer per day.
//! * [`MultiTariffExtractor`] (§3.3) — compares multi-tariff behaviour
//!   against the same consumer's one-tariff typical day and converts
//!   the appeared/disappeared consumption into time-flexible offers.
//!
//! **Appliance level** (§4), built on `flextract-disagg`:
//! * [`FrequencyBasedExtractor`] (§4.1) — step 1 mines the appliance
//!   shortlist with usage frequencies; step 2 emits one flex-offer per
//!   detected activation, with the catalog's time flexibility.
//! * [`ScheduleBasedExtractor`] (§4.2) — step 1 mines per-day-kind
//!   usage schedules; step 2 emits flex-offers along the schedule.
//!
//! Every extractor implements [`FlexibilityExtractor`]: it consumes an
//! [`ExtractionInput`] and returns an [`ExtractionOutput`] holding the
//! flex-offers, the *modified* series (input minus extracted energy —
//! the paper's "(modified) time series"), the extracted series itself,
//! and rich [`Diagnostics`] (the peak reports reproduce Figure 5's
//! numbers verbatim).
//!
//! ```
//! use flextract_core::{BasicExtractor, ExtractionConfig, ExtractionInput, FlexibilityExtractor};
//! use flextract_series::TimeSeries;
//! use flextract_time::{Resolution, Timestamp};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let day = TimeSeries::constant(
//!     Timestamp::from_ymd_hm(2013, 3, 18, 0, 0).unwrap(),
//!     Resolution::MIN_15,
//!     0.4,
//!     96,
//! );
//! let extractor = BasicExtractor::new(ExtractionConfig::default());
//! let out = extractor
//!     .extract(&ExtractionInput::household(&day), &mut StdRng::seed_from_u64(1))
//!     .unwrap();
//! assert_eq!(out.flex_offers.len(), 4); // one per 6-hour period
//! // Energy accounting: extracted + modified = original.
//! let back = out.modified_series.add(&out.extracted_series).unwrap();
//! assert!((back.total_energy() - day.total_energy()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basic;
mod config;
mod extractor;
mod frequency;
mod io;
mod multi_tariff;
mod peak;
mod production;
mod random;
mod realtime;
mod schedule;

pub use basic::BasicExtractor;
pub use config::ExtractionConfig;
pub use extractor::FlexibilityExtractor;
pub use frequency::FrequencyBasedExtractor;
pub use io::{Diagnostics, ExtractionInput, ExtractionOutput, PeakDayReport, PeakInfo};
pub use multi_tariff::MultiTariffExtractor;
pub use peak::PeakExtractor;
pub use production::{ProducerKind, ProductionExtractor};
pub use random::RandomExtractor;
pub use realtime::{RealTimeGenerator, READING_RESOLUTION};
pub use schedule::ScheduleBasedExtractor;

/// Errors surfaced by the extraction approaches.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractionError {
    /// The input series is empty.
    EmptySeries,
    /// The approach needs the one-tariff reference series (§3.3) and it
    /// was not provided.
    MissingReference,
    /// The approach needs the appliance catalog (§4) and it was not
    /// provided.
    MissingCatalog,
    /// A configuration field is out of its valid domain.
    InvalidConfig {
        /// Which field, and why.
        what: &'static str,
    },
    /// An underlying series operation failed.
    Series(flextract_series::SeriesError),
    /// A constructed flex-offer failed validation (indicates a bug in
    /// an extractor, surfaced instead of panicking).
    FlexOffer(flextract_flexoffer::FlexOfferError),
}

impl std::fmt::Display for ExtractionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractionError::EmptySeries => write!(f, "input series is empty"),
            ExtractionError::MissingReference => {
                write!(
                    f,
                    "multi-tariff extraction requires a one-tariff reference series"
                )
            }
            ExtractionError::MissingCatalog => {
                write!(
                    f,
                    "appliance-level extraction requires an appliance catalog"
                )
            }
            ExtractionError::InvalidConfig { what } => write!(f, "invalid config: {what}"),
            ExtractionError::Series(e) => write!(f, "series error: {e}"),
            ExtractionError::FlexOffer(e) => write!(f, "flex-offer error: {e}"),
        }
    }
}

impl std::error::Error for ExtractionError {}

impl From<flextract_series::SeriesError> for ExtractionError {
    fn from(e: flextract_series::SeriesError) -> Self {
        ExtractionError::Series(e)
    }
}

impl From<flextract_flexoffer::FlexOfferError> for ExtractionError {
    fn from(e: flextract_flexoffer::FlexOfferError) -> Self {
        ExtractionError::FlexOffer(e)
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ExtractionError::EmptySeries.to_string().contains("empty"));
        assert!(ExtractionError::MissingReference
            .to_string()
            .contains("one-tariff"));
        assert!(ExtractionError::MissingCatalog
            .to_string()
            .contains("catalog"));
        assert!(ExtractionError::InvalidConfig { what: "share > 1" }
            .to_string()
            .contains("share > 1"));
        let wrapped: ExtractionError = flextract_series::SeriesError::Empty.into();
        assert!(wrapped.to_string().contains("series error"));
        let wrapped: ExtractionError = flextract_flexoffer::FlexOfferError::EmptyProfile.into();
        assert!(wrapped.to_string().contains("flex-offer error"));
    }
}
