//! Real-time flex-offer generation — the paper's §6 extension,
//! implemented: "the appliance level extraction approaches can be
//! easily extended to the real-time flex-offer generators, which detect
//! flexibilities and formulate flex-offers based on the usual appliance
//! usage or the given (mined) schedule of the household."
//!
//! [`RealTimeGenerator`] is trained offline (step 1: detection +
//! schedule mining over history) and then consumes live 1-minute
//! readings one at a time. It is strictly **causal**: an offer is
//! emitted the moment a cycle *start* is recognised — from the rising
//! power edge matching an appliance's initial phase, gated by the mined
//! schedule — without seeing the rest of the cycle. The profile
//! therefore carries the catalog's full `[min, max]` envelope rather
//! than a fitted intensity.

use crate::{ExtractionConfig, ExtractionError};
use flextract_appliance::{ApplianceSpec, Catalog};
use flextract_disagg::{detect_activations, MatchConfig, MinedSchedule};
use flextract_flexoffer::{EnergyRange, FlexOffer};
use flextract_series::segment::split_whole_days;
use flextract_series::{stats, TimeSeries};
use flextract_time::{Duration, Resolution, Timestamp};

/// Online flex-offer generator (one household).
#[derive(Debug, Clone)]
pub struct RealTimeGenerator {
    cfg: ExtractionConfig,
    catalog: Catalog,
    schedules: Vec<MinedSchedule>,
    /// Minimum mined rate for the current hour before an edge is
    /// trusted (0 disables schedule gating — pure frequency mode).
    min_slot_rate: f64,
    /// Rolling window of recent power readings (kW), newest last.
    window_kw: Vec<f64>,
    window_len: usize,
    /// Last reading instant (readings must arrive minute-by-minute).
    cursor: Option<Timestamp>,
    /// Per-appliance cooldown: no re-trigger until this instant.
    cooldowns: Vec<(String, Timestamp)>,
    next_id: u64,
}

impl RealTimeGenerator {
    /// Assemble a generator from already-mined schedules.
    pub fn new(
        catalog: Catalog,
        schedules: Vec<MinedSchedule>,
        cfg: ExtractionConfig,
    ) -> Result<Self, ExtractionError> {
        cfg.validate()?;
        Ok(RealTimeGenerator {
            cfg,
            catalog,
            schedules,
            min_slot_rate: 0.2,
            window_kw: Vec::with_capacity(240),
            window_len: 240,
            cursor: None,
            cooldowns: Vec::new(),
            next_id: 1,
        })
    }

    /// Train from 1-minute history: run detection and schedule mining
    /// (the offline "step 1"), then build the online generator.
    pub fn train(
        catalog: Catalog,
        history: &TimeSeries,
        cfg: ExtractionConfig,
    ) -> Result<Self, ExtractionError> {
        if history.is_empty() {
            return Err(ExtractionError::EmptySeries);
        }
        let shiftable = catalog.shiftable();
        let (detections, _) = detect_activations(history, &shiftable, &MatchConfig::default());
        let days = split_whole_days(history);
        let workdays = days
            .iter()
            .filter(|d| !d.start().day_of_week().is_weekend())
            .count() as f64;
        let weekend_days = days.len() as f64 - workdays;
        let schedules = MinedSchedule::mine_all(&detections, workdays, weekend_days, 60);
        Self::new(catalog, schedules, cfg)
    }

    /// Adjust the schedule gate (0 = emit on any matching edge).
    pub fn with_min_slot_rate(mut self, rate: f64) -> Self {
        self.min_slot_rate = rate.max(0.0);
        self
    }

    /// The mined schedules backing the generator.
    pub fn schedules(&self) -> &[MinedSchedule] {
        &self.schedules
    }

    /// Feed one 1-minute reading; returns any flex-offers emitted at
    /// this instant (usually none, occasionally one).
    ///
    /// Readings must be contiguous minutes; a gap resets the rolling
    /// window (conservative: no emission across gaps).
    pub fn push(&mut self, t: Timestamp, kwh_per_min: f64) -> Vec<FlexOffer> {
        let kw = kwh_per_min * 60.0;
        match self.cursor {
            Some(prev) if t - prev == Duration::minutes(1) => {}
            Some(_) | None => self.window_kw.clear(),
        }
        self.cursor = Some(t);
        self.window_kw.push(kw);
        if self.window_kw.len() > self.window_len {
            self.window_kw.remove(0);
        }
        if self.window_kw.len() < 2 {
            return Vec::new();
        }

        // Rising edge over the local pre-edge baseline.
        let n = self.window_kw.len();
        let baseline_window = &self.window_kw[..n - 1];
        let baseline = stats::median(&baseline_window[baseline_window.len().saturating_sub(30)..])
            .unwrap_or(0.0);
        let delta = kw - self.window_kw[n - 2];
        let above_base = kw - baseline;

        // One edge, one hypothesis: among the appliances whose initial
        // phase is power-compatible (and not cooling down, and allowed
        // by their mined schedule), the closest initial-power match
        // wins — a single offer per recognised cycle start.
        let shiftable: Vec<ApplianceSpec> = self.catalog.shiftable().into_iter().cloned().collect();
        let mut best: Option<(f64, &ApplianceSpec)> = None;
        for spec in &shiftable {
            let initial_min = spec.profile.power_curve_kw(0.0)[0];
            let initial_max = spec.profile.power_curve_kw(1.0)[0];
            // The step must plausibly be this appliance switching on.
            if delta < 0.6 * initial_min || above_base > 1.6 * initial_max {
                continue;
            }
            if above_base < 0.7 * initial_min || above_base > 1.4 * initial_max {
                continue;
            }
            if self.on_cooldown(&spec.name, t) {
                continue;
            }
            if !self.schedule_allows(&spec.name, t) {
                continue;
            }
            let mid = 0.5 * (initial_min + initial_max);
            let distance = (above_base - mid).abs() / mid.max(1e-9);
            if best.as_ref().is_none_or(|(d, _)| distance < *d) {
                best = Some((distance, spec));
            }
        }
        let mut emitted = Vec::new();
        if let Some((_, spec)) = best {
            if let Some(offer) = self.formulate(spec, t) {
                self.cooldowns.retain(|(name, _)| name != &spec.name);
                self.cooldowns
                    .push((spec.name.clone(), t + spec.profile.duration()));
                emitted.push(offer);
            }
        }
        emitted
    }

    fn on_cooldown(&self, name: &str, t: Timestamp) -> bool {
        self.cooldowns
            .iter()
            .any(|(n, until)| n == name && t < *until)
    }

    fn schedule_allows(&self, name: &str, t: Timestamp) -> bool {
        if self.min_slot_rate <= 0.0 {
            return true;
        }
        let Some(schedule) = self.schedules.iter().find(|s| s.appliance == name) else {
            // Never observed in the training history: with gating on,
            // a real-time emission would be unfounded.
            return false;
        };
        let kind_idx = usize::from(t.day_of_week().is_weekend());
        let bin = (t.minute_of_day() / schedule.bin_minutes) as usize;
        schedule.histograms[kind_idx]
            .get(bin)
            .is_some_and(|&rate| rate >= self.min_slot_rate)
    }

    /// Formulate the offer for a just-started cycle: catalog envelope
    /// profile, window `[now, now + max_delay]`, immediate lifecycle.
    fn formulate(&mut self, spec: &ApplianceSpec, t: Timestamp) -> Option<FlexOffer> {
        let res = self.cfg.slice_resolution;
        let earliest = t.floor_to(res);
        let slice_min = res.minutes() as usize;
        let min_curve = spec.profile.power_curve_kw(0.0);
        let max_curve = spec.profile.power_curve_kw(1.0);
        let slices: Vec<EnergyRange> = min_curve
            .chunks(slice_min)
            .zip(max_curve.chunks(slice_min))
            .map(|(lo, hi)| {
                let e_lo: f64 = lo.iter().map(|kw| kw / 60.0).sum();
                let e_hi: f64 = hi.iter().map(|kw| kw / 60.0).sum();
                EnergyRange::new(e_lo, e_hi).expect("envelope bounds are ordered")
            })
            .collect();
        let flexibility = Duration::minutes(
            (spec.shiftability.max_delay().as_minutes() / res.minutes()) * res.minutes(),
        );
        // Real-time lifecycle: created *now*, decisions due before the
        // cycle would naturally be underway.
        let offer = FlexOffer::builder(self.next_id)
            .start_window(earliest, earliest + flexibility)
            .slices(res, slices)
            .created_at(earliest)
            .acceptance_by(earliest)
            .assignment_by(earliest)
            .build()
            .ok()?;
        self.next_id += 1;
        Some(offer)
    }
}

/// Resolution the generator expects readings at (1 minute).
pub const READING_RESOLUTION: Resolution = Resolution::MIN_1;

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use flextract_time::TimeRange;

    /// History: 14 days, washer at 19:00 daily over a 0.1 kW base.
    fn history() -> TimeSeries {
        let cat = Catalog::extended();
        let start: Timestamp = "2013-03-04".parse().unwrap();
        let range = TimeRange::starting_at(start, Duration::weeks(2)).unwrap();
        let mut fine = TimeSeries::zeros_over(range, Resolution::MIN_1).unwrap();
        for v in fine.values_mut() {
            *v = 0.1 / 60.0;
        }
        let washer = cat
            .find_by_name("Washing Machine from Manufacturer Y")
            .unwrap();
        for d in 0..14 {
            let at = start + Duration::days(d) + Duration::hours(19);
            fine.add_overlapping(&washer.profile.to_energy_series(at, 0.5))
                .unwrap();
        }
        fine
    }

    fn generator() -> RealTimeGenerator {
        RealTimeGenerator::train(Catalog::extended(), &history(), ExtractionConfig::default())
            .unwrap()
    }

    /// Feed a live day containing one washer start at `cycle_at` and
    /// collect emissions.
    fn feed_day(gen: &mut RealTimeGenerator, cycle_at: Timestamp) -> Vec<FlexOffer> {
        let cat = Catalog::extended();
        let washer = cat
            .find_by_name("Washing Machine from Manufacturer Y")
            .unwrap();
        let day_start = cycle_at.start_of_day();
        let range = TimeRange::starting_at(day_start, Duration::days(1)).unwrap();
        let mut live = TimeSeries::zeros_over(range, Resolution::MIN_1).unwrap();
        for v in live.values_mut() {
            *v = 0.1 / 60.0;
        }
        live.add_overlapping(&washer.profile.to_energy_series(cycle_at, 0.5))
            .unwrap();
        let mut out = Vec::new();
        for (t, v) in live.iter() {
            out.extend(gen.push(t, v));
        }
        out
    }

    #[test]
    fn training_mines_the_evening_slot() {
        let gen = generator();
        let washer = gen
            .schedules()
            .iter()
            .find(|s| s.appliance.contains("Washing Machine"))
            .expect("washer schedule mined");
        // Hot bin at hour 19 on workdays.
        assert!(
            washer.histograms[0][19] > 0.5,
            "{:?}",
            &washer.histograms[0][18..21]
        );
    }

    #[test]
    fn emits_one_offer_at_the_scheduled_cycle_start() {
        let mut gen = generator();
        let at: Timestamp = "2013-03-18 19:07".parse().unwrap(); // Monday evening
        let offers = feed_day(&mut gen, at);
        let washers: Vec<&FlexOffer> = offers
            .iter()
            .filter(|o| o.profile().duration() == Duration::hours(2))
            .collect();
        assert_eq!(washers.len(), 1, "offers: {offers:?}");
        let offer = washers[0];
        // Emitted causally at the start of the cycle (floored to 15 min).
        assert_eq!(offer.earliest_start(), at.floor_to(Resolution::MIN_15));
        // Window from the catalog (washer: 8 h).
        assert_eq!(offer.time_flexibility(), Duration::hours(8));
        // Envelope brackets the catalog range.
        let total = offer.total_energy();
        assert!((total.min - 1.2).abs() < 1e-9 && (total.max - 3.0).abs() < 1e-9);
        assert!(offer.validate().is_ok());
    }

    #[test]
    fn schedule_gate_suppresses_out_of_slot_cycles() {
        let mut gen = generator();
        // 03:00 is outside every mined washer slot.
        let at: Timestamp = "2013-03-18 03:00".parse().unwrap();
        let offers = feed_day(&mut gen, at);
        assert!(
            offers
                .iter()
                .all(|o| o.profile().duration() != Duration::hours(2)),
            "gated cycle should not emit: {offers:?}"
        );
        // Disabling the gate lets it through.
        let mut open = generator().with_min_slot_rate(0.0);
        let offers = feed_day(&mut open, at);
        assert!(offers
            .iter()
            .any(|o| o.profile().duration() == Duration::hours(2)));
    }

    #[test]
    fn cooldown_prevents_duplicate_emissions() {
        let mut gen = generator().with_min_slot_rate(0.0);
        let cat = Catalog::extended();
        let washer = cat
            .find_by_name("Washing Machine from Manufacturer Y")
            .unwrap();
        let day_start: Timestamp = "2013-03-18".parse().unwrap();
        let range = TimeRange::starting_at(day_start, Duration::days(1)).unwrap();
        let mut live = TimeSeries::zeros_over(range, Resolution::MIN_1).unwrap();
        for v in live.values_mut() {
            *v = 0.1 / 60.0;
        }
        // Two cycles back-to-back *within* one cycle duration: the
        // second starts 30 min after the first → suppressed.
        let first: Timestamp = "2013-03-18 10:00".parse().unwrap();
        let second: Timestamp = "2013-03-18 10:30".parse().unwrap();
        live.add_overlapping(&washer.profile.to_energy_series(first, 0.5))
            .unwrap();
        live.add_overlapping(&washer.profile.to_energy_series(second, 0.5))
            .unwrap();
        let mut offers = Vec::new();
        for (t, v) in live.iter() {
            offers.extend(gen.push(t, v));
        }
        let washer_offers = offers
            .iter()
            .filter(|o| o.profile().duration() == Duration::hours(2))
            .count();
        assert_eq!(washer_offers, 1, "{offers:?}");
    }

    #[test]
    fn gap_in_readings_resets_the_window() {
        let mut gen = generator().with_min_slot_rate(0.0);
        let t0: Timestamp = "2013-03-18 10:00".parse().unwrap();
        gen.push(t0, 0.1 / 60.0);
        // A 10-minute gap, then a huge step: no emission because the
        // window restarted (single sample, no edge).
        let offers = gen.push(t0 + Duration::minutes(10), 2.6 / 60.0);
        assert!(offers.is_empty());
    }

    #[test]
    fn training_on_empty_history_errors() {
        let empty = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_1,
            vec![],
        )
        .unwrap();
        assert!(matches!(
            RealTimeGenerator::train(Catalog::extended(), &empty, ExtractionConfig::default()),
            Err(ExtractionError::EmptySeries)
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = ExtractionConfig::default();
        cfg.flexible_share = 7.0;
        assert!(matches!(
            RealTimeGenerator::new(Catalog::extended(), vec![], cfg),
            Err(ExtractionError::InvalidConfig { .. })
        ));
    }
}
