//! Extraction inputs, outputs and diagnostics.

use flextract_appliance::Catalog;
use flextract_flexoffer::FlexOffer;
use flextract_series::TimeSeries;
use flextract_time::Timestamp;
use serde::{Deserialize, Serialize};

/// Everything an extraction approach may consume (the paper's Figure 2:
/// historical time series + context information).
///
/// Only [`ExtractionInput::series`] is mandatory; the optional fields
/// unlock the approaches that need them.
#[derive(Debug, Clone, Copy)]
pub struct ExtractionInput<'a> {
    /// Total household consumption at market granularity (15 min) —
    /// the input of every §3 approach.
    pub series: &'a TimeSeries,
    /// The same consumer's consumption under a *flat* tariff — the
    /// reference the multi-tariff approach compares against (§3.3).
    pub reference_series: Option<&'a TimeSeries>,
    /// A finer-granularity version of `series` (1-min from the
    /// simulator) for the appliance-level approaches, which need
    /// sub-15-min signal (§4, §6).
    pub fine_series: Option<&'a TimeSeries>,
    /// The appliance specification catalog (§4's context information).
    pub catalog: Option<&'a Catalog>,
}

impl<'a> ExtractionInput<'a> {
    /// An input with only the household series (enough for random,
    /// basic and peak-based extraction).
    pub fn household(series: &'a TimeSeries) -> Self {
        ExtractionInput {
            series,
            reference_series: None,
            fine_series: None,
            catalog: None,
        }
    }

    /// Attach the one-tariff reference (enables multi-tariff
    /// extraction).
    pub fn with_reference(mut self, reference: &'a TimeSeries) -> Self {
        self.reference_series = Some(reference);
        self
    }

    /// Attach a fine-granularity series (improves appliance-level
    /// extraction).
    pub fn with_fine_series(mut self, fine: &'a TimeSeries) -> Self {
        self.fine_series = Some(fine);
        self
    }

    /// Attach the appliance catalog (enables appliance-level
    /// extraction).
    pub fn with_catalog(mut self, catalog: &'a Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }
}

/// One candidate peak in a [`PeakDayReport`] — the rows of the paper's
/// Figure-5 annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeakInfo {
    /// 1-based peak number in time order (Figure 5 numbers peaks 1–8).
    pub number: usize,
    /// Start instant of the peak.
    pub start: Timestamp,
    /// Number of intervals in the peak.
    pub intervals: usize,
    /// Peak size: total energy in kWh (Figure 5's "size=…").
    pub size_kwh: f64,
    /// Whether the peak survived the filtering phase.
    pub survived_filter: bool,
    /// Selection probability among survivors (Figure 5's
    /// "probability = …"); zero for filtered-out peaks.
    pub probability: f64,
}

/// Per-day diagnostics of the peak-based approach — everything needed
/// to regenerate Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeakDayReport {
    /// Midnight of the analysed day.
    pub day: Timestamp,
    /// Total consumption of the day (Figure 5's 39.02 kWh).
    pub day_total_kwh: f64,
    /// The detection threshold (the "thick horizontal line").
    pub threshold_kwh: f64,
    /// The filtering threshold: `flexible_share × day_total`
    /// (Figure 5's 1.951 kWh).
    pub min_peak_energy_kwh: f64,
    /// All detected peaks in time order.
    pub peaks: Vec<PeakInfo>,
    /// The number (1-based) of the selected peak, if any survived.
    pub selected: Option<usize>,
}

/// Free-form extraction diagnostics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Human-readable notes (skipped days, degenerate periods, …).
    pub notes: Vec<String>,
    /// Peak-approach day reports (empty for other approaches).
    pub peak_reports: Vec<PeakDayReport>,
    /// Appliance-level step-1 summary (frequency/schedule approaches).
    pub shortlist: Vec<String>,
}

/// The result of one extraction run — the paper's Figure 2 outputs:
/// "flex-offers" plus the "(modified) time series".
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionOutput {
    /// Which approach produced this output.
    pub approach: &'static str,
    /// The extracted flex-offers, in earliest-start order.
    pub flex_offers: Vec<FlexOffer>,
    /// The input series with the extracted flexible energy subtracted.
    pub modified_series: TimeSeries,
    /// The extracted flexible energy itself, on the input grid
    /// (`modified + extracted = input`, exactly).
    pub extracted_series: TimeSeries,
    /// Run diagnostics.
    pub diagnostics: Diagnostics,
}

impl ExtractionOutput {
    /// Total extracted flexible energy (kWh).
    pub fn extracted_energy(&self) -> f64 {
        self.extracted_series.total_energy()
    }

    /// Achieved flexible share relative to the original input.
    pub fn achieved_share(&self) -> f64 {
        let original = self.modified_series.total_energy() + self.extracted_series.total_energy();
        if original <= 0.0 {
            0.0
        } else {
            self.extracted_energy() / original
        }
    }

    /// Validate every offer and the energy-accounting invariant; used
    /// by tests and by callers that persist extraction results.
    pub fn check_invariants(&self, original: &TimeSeries) -> Result<(), String> {
        for offer in &self.flex_offers {
            offer
                .validate()
                .map_err(|e| format!("offer {} invalid: {e}", offer.id()))?;
        }
        let back = self
            .modified_series
            .add(&self.extracted_series)
            .map_err(|e| format!("grid mismatch: {e}"))?;
        if back.len() != original.len() {
            return Err(format!(
                "length drift: {} vs {}",
                back.len(),
                original.len()
            ));
        }
        for (i, (a, b)) in back.values().iter().zip(original.values()).enumerate() {
            if (a - b).abs() > 1e-6 {
                return Err(format!(
                    "energy accounting broken at interval {i}: {a} vs {b}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Resolution;

    fn series(vals: Vec<f64>) -> TimeSeries {
        TimeSeries::new("2013-03-18".parse().unwrap(), Resolution::MIN_15, vals).unwrap()
    }

    #[test]
    fn input_builders_attach_optionals() {
        let s = series(vec![1.0; 96]);
        let r = series(vec![0.9; 96]);
        let cat = Catalog::table1();
        let input = ExtractionInput::household(&s)
            .with_reference(&r)
            .with_catalog(&cat);
        assert!(input.reference_series.is_some());
        assert!(input.catalog.is_some());
        assert!(input.fine_series.is_none());
        let plain = ExtractionInput::household(&s);
        assert!(plain.reference_series.is_none());
    }

    #[test]
    fn achieved_share_matches_energy_split() {
        let out = ExtractionOutput {
            approach: "test",
            flex_offers: vec![],
            modified_series: series(vec![0.95; 96]),
            extracted_series: series(vec![0.05; 96]),
            diagnostics: Diagnostics::default(),
        };
        assert!((out.achieved_share() - 0.05).abs() < 1e-9);
        assert!((out.extracted_energy() - 4.8).abs() < 1e-9);
    }

    #[test]
    fn invariant_check_catches_imbalance() {
        let original = series(vec![1.0; 96]);
        let bad = ExtractionOutput {
            approach: "test",
            flex_offers: vec![],
            modified_series: series(vec![0.95; 96]),
            extracted_series: series(vec![0.1; 96]), // 0.95 + 0.1 != 1.0
            diagnostics: Diagnostics::default(),
        };
        assert!(bad.check_invariants(&original).is_err());
        let good = ExtractionOutput {
            approach: "test",
            flex_offers: vec![],
            modified_series: series(vec![0.95; 96]),
            extracted_series: series(vec![0.05; 96]),
            diagnostics: Diagnostics::default(),
        };
        assert!(good.check_invariants(&original).is_ok());
    }

    #[test]
    fn zero_energy_share_is_zero() {
        let out = ExtractionOutput {
            approach: "test",
            flex_offers: vec![],
            modified_series: series(vec![0.0; 4]),
            extracted_series: series(vec![0.0; 4]),
            diagnostics: Diagnostics::default(),
        };
        assert_eq!(out.achieved_share(), 0.0);
    }

    #[test]
    fn peak_report_serde() {
        let report = PeakDayReport {
            day: "2013-03-18".parse().unwrap(),
            day_total_kwh: 39.02,
            threshold_kwh: 0.4065,
            min_peak_energy_kwh: 1.951,
            peaks: vec![PeakInfo {
                number: 7,
                start: "2013-03-18 18:00".parse().unwrap(),
                intervals: 6,
                size_kwh: 5.47,
                survived_filter: true,
                probability: 0.71,
            }],
            selected: Some(7),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: PeakDayReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
