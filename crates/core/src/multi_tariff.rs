//! The multi-tariff extraction approach (paper §3.3).
//!
//! "The multi-tariff approach firstly analyzes one tariff time series to
//! estimate the usual consumption of a consumer. It can calculate the
//! typical behavior during the work days, weekends … Then, the
//! extraction approach takes multi-tariff time series and detects the
//! flexible consumption in it by comparing with the typical consumption
//! in one tariff."
//!
//! The paper could not evaluate this approach for lack of data; with the
//! simulator's tariff-response mode it runs here. Detection is purely
//! data-driven — no tariff windows are given to the extractor:
//!
//! * intervals where the multi-tariff day *exceeds* the typical
//!   one-tariff day (beyond a noise band) are **arrivals** — flexible
//!   load that was delayed to cheap hours;
//! * earlier intervals where consumption *fell below* typical are the
//!   matching **departures**, and give the offer its earliest start
//!   (the load evidently used to run there).

use crate::extractor::FlexibilityExtractor;
use crate::{Diagnostics, ExtractionConfig, ExtractionError, ExtractionInput, ExtractionOutput};
use flextract_flexoffer::{EnergyRange, FlexOffer};
use flextract_series::segment::{day_profile_std, split_whole_days, typical_day_profile, DayKind};
use flextract_series::TimeSeries;
use flextract_time::Duration;
use rand::rngs::StdRng;
use rand::Rng;

/// Reference-vs-observed comparison extraction.
#[derive(Debug, Clone)]
pub struct MultiTariffExtractor {
    cfg: ExtractionConfig,
    /// Noise band width in standard deviations of the reference profile.
    sigma_band: f64,
    /// Absolute noise floor in kWh per interval.
    noise_floor_kwh: f64,
}

impl MultiTariffExtractor {
    /// Build with the default noise band (1 σ, 0.02 kWh floor).
    pub fn new(cfg: ExtractionConfig) -> Self {
        MultiTariffExtractor {
            cfg,
            sigma_band: 1.0,
            noise_floor_kwh: 0.02,
        }
    }

    /// Override the noise band (ablation knob).
    pub fn with_band(cfg: ExtractionConfig, sigma_band: f64, noise_floor_kwh: f64) -> Self {
        MultiTariffExtractor {
            cfg,
            sigma_band,
            noise_floor_kwh,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExtractionConfig {
        &self.cfg
    }

    fn day_kind(day_start: flextract_time::Timestamp) -> DayKind {
        if day_start.day_of_week().is_weekend() {
            DayKind::Weekend
        } else {
            DayKind::Workday
        }
    }
}

impl FlexibilityExtractor for MultiTariffExtractor {
    fn name(&self) -> &'static str {
        "multi-tariff"
    }

    fn extract(
        &self,
        input: &ExtractionInput<'_>,
        rng: &mut StdRng,
    ) -> Result<ExtractionOutput, ExtractionError> {
        self.cfg.validate()?;
        let series = input.series;
        if series.is_empty() {
            return Err(ExtractionError::EmptySeries);
        }
        let reference = input
            .reference_series
            .ok_or(ExtractionError::MissingReference)?;
        if reference.is_empty() {
            return Err(ExtractionError::MissingReference);
        }

        // Typical behaviour per day kind, with an "all days" fallback
        // when the reference lacks one kind entirely.
        let typical_all = typical_day_profile(reference, DayKind::All)?;
        let std_all = day_profile_std(reference, DayKind::All)?;
        let per_kind = |kind: DayKind| -> (Vec<f64>, Vec<f64>) {
            match (
                typical_day_profile(reference, kind),
                day_profile_std(reference, kind),
            ) {
                (Ok(t), Ok(s)) => (t, s),
                _ => (typical_all.clone(), std_all.clone()),
            }
        };
        let (typ_work, std_work) = per_kind(DayKind::Workday);
        let (typ_week, std_week) = per_kind(DayKind::Weekend);

        let mut modified = series.clone();
        let mut extracted = TimeSeries::zeros_like(series);
        let mut offers: Vec<FlexOffer> = Vec::new();
        let mut diagnostics = Diagnostics::default();
        diagnostics.notes.push(format!(
            "reference: {} whole days analysed",
            split_whole_days(reference).len()
        ));
        let mut next_id = 1u64;
        let slice_min = self.cfg.slice_resolution.minutes();

        for day in split_whole_days(series) {
            let (typical, sigma) = match Self::day_kind(day.start()) {
                DayKind::Weekend => (&typ_week, &std_week),
                _ => (&typ_work, &std_work),
            };
            let n = day.len();
            if typical.len() != n {
                return Err(ExtractionError::Series(
                    flextract_series::SeriesError::LengthMismatch {
                        left: typical.len(),
                        right: n,
                    },
                ));
            }
            // Signed anomaly vs the noise band.
            let mut arrivals: Vec<(usize, usize)> = Vec::new(); // [start, end)
            let mut departures: Vec<(usize, usize)> = Vec::new();
            let band = |i: usize| (self.sigma_band * sigma[i]).max(self.noise_floor_kwh);
            let mut i = 0;
            while i < n {
                let diff = day.values()[i] - typical[i];
                if diff > band(i) {
                    let s = i;
                    while i < n && day.values()[i] - typical[i] > band(i) {
                        i += 1;
                    }
                    arrivals.push((s, i));
                } else if diff < -band(i) {
                    let s = i;
                    while i < n && day.values()[i] - typical[i] < -band(i) {
                        i += 1;
                    }
                    departures.push((s, i));
                } else {
                    i += 1;
                }
            }

            for (a_start, a_end) in arrivals {
                // The flexible energy is the excess over typical,
                // bounded by actual consumption.
                let energies: Vec<f64> = day.values()[a_start..a_end]
                    .iter()
                    .zip(&typical[a_start..a_end])
                    .map(|(&c, &t)| (c - t).min(c).max(0.0))
                    .collect();
                if energies.iter().sum::<f64>() <= 0.0 {
                    continue;
                }
                // Earliest start: the largest earlier departure of the
                // same day (where the load evidently used to run);
                // fall back to a sampled backward flexibility.
                let arrival_t = day.timestamp_of(a_start);
                let earliest = departures
                    .iter()
                    .filter(|(d_start, _)| *d_start < a_start)
                    .max_by(|(s1, e1), (s2, e2)| {
                        let w1: f64 = day.values()[*s1..*e1]
                            .iter()
                            .zip(&typical[*s1..*e1])
                            .map(|(c, t)| t - c)
                            .sum();
                        let w2: f64 = day.values()[*s2..*e2]
                            .iter()
                            .zip(&typical[*s2..*e2])
                            .map(|(c, t)| t - c)
                            .sum();
                        w1.partial_cmp(&w2).expect("sums of finite values")
                    })
                    .map(|(d_start, _)| day.timestamp_of(*d_start))
                    .unwrap_or_else(|| {
                        let back = rng.gen_range(
                            self.cfg.time_flexibility.0.as_minutes()
                                ..=self
                                    .cfg
                                    .time_flexibility
                                    .1
                                    .as_minutes()
                                    .max(self.cfg.time_flexibility.0.as_minutes() + 1),
                        );
                        arrival_t - Duration::minutes((back / slice_min) * slice_min)
                    });

                // Subtract from the modified series.
                for (k, e) in energies.iter().enumerate() {
                    let global = modified
                        .index_of(day.timestamp_of(a_start + k))
                        .expect("day intervals lie inside the series");
                    modified.values_mut()[global] -= e;
                    extracted.values_mut()[global] += e;
                }

                let slices: Vec<EnergyRange> = energies
                    .iter()
                    .map(|&e| {
                        let min_f = rng.gen_range(
                            self.cfg.min_energy_fraction.0..=self.cfg.min_energy_fraction.1,
                        );
                        let max_f = rng.gen_range(
                            self.cfg.max_energy_fraction.0..=self.cfg.max_energy_fraction.1,
                        );
                        EnergyRange::new(e * min_f, e * max_f)
                    })
                    .collect::<Result<_, _>>()?;
                let creation = earliest - self.cfg.creation_lead;
                let acceptance = (creation + self.cfg.acceptance_offset).min(earliest);
                let assignment = (earliest - self.cfg.assignment_lead).max(acceptance);
                let offer = FlexOffer::builder(next_id)
                    .start_window(earliest, arrival_t)
                    .slices(self.cfg.slice_resolution, slices)
                    .created_at(creation)
                    .acceptance_by(acceptance)
                    .assignment_by(assignment)
                    .build()?;
                next_id += 1;
                offers.push(offer);
            }
        }
        diagnostics.notes.push(format!(
            "{} flex-offers from tariff-shift anomalies",
            offers.len()
        ));
        Ok(ExtractionOutput {
            approach: self.name(),
            flex_offers: offers,
            modified_series: modified,
            extracted_series: extracted,
            diagnostics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_series::TimeSeries;
    use flextract_time::{Resolution, Timestamp};
    use rand::SeedableRng;

    /// Reference: 14 identical flat days. Observed: same, but on each
    /// day 1.2 kWh moved from 18:00-19:00 into 23:00-24:00.
    fn reference() -> TimeSeries {
        TimeSeries::constant(
            "2013-03-04".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            0.4,
            96 * 14,
        )
    }

    fn shifted_observed(days: usize) -> TimeSeries {
        let mut values = Vec::with_capacity(96 * days);
        for _ in 0..days {
            let mut day = vec![0.4; 96];
            for v in day.iter_mut().skip(72).take(4) {
                *v = 0.1; // departure 18:00-19:00
            }
            for v in day.iter_mut().skip(92).take(4) {
                *v = 0.7; // arrival 23:00-24:00
            }
            values.extend(day);
        }
        TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap()
    }

    fn run(observed: &TimeSeries, reference: &TimeSeries, seed: u64) -> ExtractionOutput {
        MultiTariffExtractor::new(ExtractionConfig::default())
            .extract(
                &ExtractionInput::household(observed).with_reference(reference),
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap()
    }

    #[test]
    fn detects_the_shifted_block() {
        let obs = shifted_observed(3);
        let refr = reference();
        let out = run(&obs, &refr, 1);
        assert_eq!(out.flex_offers.len(), 3, "one arrival per day");
        out.check_invariants(&obs).unwrap();
        for offer in &out.flex_offers {
            // Arrival (latest start) at 23:00, departure (earliest) at 18:00.
            assert_eq!(offer.latest_start().time().hour, 23);
            assert_eq!(offer.earliest_start().time().hour, 18);
            assert_eq!(offer.time_flexibility(), Duration::hours(5));
            // ~1.2 kWh of shifted energy bracketed by the band.
            let total = offer.total_energy();
            assert!(total.min < 1.2 && 1.2 < total.max + 0.4, "{total:?}");
        }
        // Extracted energy ≈ 3 days × 1.2 kWh.
        assert!(
            (out.extracted_energy() - 3.6).abs() < 0.2,
            "{}",
            out.extracted_energy()
        );
    }

    #[test]
    fn requires_a_reference() {
        let obs = shifted_observed(1);
        let ex = MultiTariffExtractor::new(ExtractionConfig::default());
        let err = ex
            .extract(
                &ExtractionInput::household(&obs),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap_err();
        assert_eq!(err, ExtractionError::MissingReference);
    }

    #[test]
    fn unshifted_behaviour_extracts_nothing() {
        let refr = reference();
        let obs = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            vec![0.4; 96 * 2],
        )
        .unwrap();
        let out = run(&obs, &refr, 2);
        assert!(out.flex_offers.is_empty());
        assert_eq!(out.extracted_energy(), 0.0);
    }

    #[test]
    fn noisy_reference_widens_the_band() {
        // Reference with per-interval noise → large σ → the small shift
        // disappears inside the band.
        let mut values = Vec::new();
        let mut flip = false;
        for _ in 0..14 {
            for i in 0..96 {
                values.push(if (i % 2 == 0) ^ flip { 0.0 } else { 0.8 });
            }
            flip = !flip;
        }
        let noisy_ref = TimeSeries::new(
            "2013-03-04".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap();
        let obs = shifted_observed(2);
        let out = run(&obs, &noisy_ref, 3);
        // σ per interval is 0.4, comfortably above the 0.3 kWh arrival
        // excess → the shift disappears inside the noise band.
        assert!(out.flex_offers.is_empty(), "{:?}", out.flex_offers.len());
    }

    #[test]
    fn arrival_without_departure_uses_sampled_backward_window() {
        // Observed adds energy without removing any.
        let refr = reference();
        let mut day = vec![0.4; 96];
        for v in day.iter_mut().skip(92).take(4) {
            *v = 0.9;
        }
        let obs = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            day,
        )
        .unwrap();
        let out = run(&obs, &refr, 4);
        assert_eq!(out.flex_offers.len(), 1);
        let offer = &out.flex_offers[0];
        assert_eq!(offer.latest_start().time().hour, 23);
        assert!(offer.time_flexibility() >= ExtractionConfig::default().time_flexibility.0);
    }

    #[test]
    fn weekend_days_use_weekend_typical() {
        // Reference: weekends flat 0.8, workdays flat 0.4, two weeks.
        let start: Timestamp = "2013-03-04".parse().unwrap(); // Monday
        let mut values = Vec::new();
        for d in 0..14 {
            let t = start + Duration::days(d);
            let level = if t.day_of_week().is_weekend() {
                0.8
            } else {
                0.4
            };
            values.extend(vec![level; 96]);
        }
        let refr = TimeSeries::new(start, Resolution::MIN_15, values).unwrap();
        // Observed Saturday flat 0.8 → no anomaly (despite 0.4 workday
        // typical being very different).
        let sat: Timestamp = "2013-03-23".parse().unwrap();
        assert!(sat.day_of_week().is_weekend());
        let obs = TimeSeries::new(sat, Resolution::MIN_15, vec![0.8; 96]).unwrap();
        let out = run(&obs, &refr, 5);
        assert!(out.flex_offers.is_empty(), "weekend typical must apply");
    }

    #[test]
    fn deterministic_per_seed() {
        let obs = shifted_observed(2);
        let refr = reference();
        let a = run(&obs, &refr, 9);
        let b = run(&obs, &refr, 9);
        assert_eq!(a.flex_offers, b.flex_offers);
    }

    #[test]
    fn empty_inputs_error() {
        let empty = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            vec![],
        )
        .unwrap();
        let refr = reference();
        let ex = MultiTariffExtractor::new(ExtractionConfig::default());
        assert_eq!(
            ex.extract(
                &ExtractionInput::household(&empty).with_reference(&refr),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::EmptySeries)
        );
        let obs = shifted_observed(1);
        assert_eq!(
            ex.extract(
                &ExtractionInput::household(&obs).with_reference(&empty),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::MissingReference)
        );
    }
}
