//! The frequency-based appliance-level approach (paper §4.1).
//!
//! Step 1 "derives the shortlist of the possibly used appliances and
//! their frequency usage table" (delegated to `flextract-disagg`);
//! step 2 "outputs a set of extracted flex-offers, each of them
//! corresponding to one usage of a specific appliance at a specific
//! time period", subtracting the flexible energy from the series.
//!
//! The flex-offer bands come from the *catalog envelope*, not from
//! configured percentages: a detected washer cycle at intensity 0.6
//! yields a profile bracketed by the washer's own min/max energy — the
//! reason the paper calls appliance-level offers "very realistic".

use crate::extractor::{extract_cycle, FlexibilityExtractor};
use crate::{Diagnostics, ExtractionConfig, ExtractionError, ExtractionInput, ExtractionOutput};
use flextract_disagg::{detect_activations, FrequencyTable, MatchConfig};
use flextract_flexoffer::{EnergyRange, FlexOffer};
use flextract_series::TimeSeries;
use flextract_time::Duration;
use rand::rngs::StdRng;

/// Detection-driven per-activation extraction.
#[derive(Debug, Clone)]
pub struct FrequencyBasedExtractor {
    cfg: ExtractionConfig,
    match_cfg: MatchConfig,
}

impl FrequencyBasedExtractor {
    /// Build with default matching parameters.
    pub fn new(cfg: ExtractionConfig) -> Self {
        FrequencyBasedExtractor {
            cfg,
            match_cfg: MatchConfig::default(),
        }
    }

    /// Build with custom matching parameters (ablation knob).
    pub fn with_matching(cfg: ExtractionConfig, match_cfg: MatchConfig) -> Self {
        FrequencyBasedExtractor { cfg, match_cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExtractionConfig {
        &self.cfg
    }
}

impl FlexibilityExtractor for FrequencyBasedExtractor {
    fn name(&self) -> &'static str {
        "frequency"
    }

    fn extract(
        &self,
        input: &ExtractionInput<'_>,
        rng: &mut StdRng,
    ) -> Result<ExtractionOutput, ExtractionError> {
        let _ = rng; // detection is deterministic; rng reserved for parity with the trait
        self.cfg.validate()?;
        let series = input.series;
        if series.is_empty() {
            return Err(ExtractionError::EmptySeries);
        }
        let catalog = input.catalog.ok_or(ExtractionError::MissingCatalog)?;
        let fine = input.fine_series.unwrap_or(series);

        // ---- Step 1: appliance detection + frequency table.
        let shiftable = catalog.shiftable();
        let (detections, _fine_residual) = detect_activations(fine, &shiftable, &self.match_cfg);
        let observed_days = (fine.range().duration().as_minutes() as f64 / 1440.0).max(1.0 / 96.0);
        let table = FrequencyTable::mine(&detections, observed_days, catalog);

        let mut diagnostics = Diagnostics::default();
        for row in table.shortlist() {
            diagnostics.shortlist.push(format!(
                "{}: {:.2}/day, flexibility {}",
                row.appliance, row.mean_daily_rate, row.time_flexibility
            ));
        }

        // ---- Step 2: one flex-offer per detected flexible activation.
        let mut modified = series.clone();
        let mut extracted = TimeSeries::zeros_like(series);
        let mut offers: Vec<FlexOffer> = Vec::new();
        let mut next_id = 1u64;
        let slice_min = self.cfg.slice_resolution.minutes();

        for det in &detections {
            let Some(spec) = catalog.find_by_name(&det.appliance) else {
                continue;
            };
            let flexibility = spec.shiftability.max_delay();
            if flexibility <= Duration::ZERO {
                continue;
            }
            // Realise the detected cycle on the fine grid and move its
            // energy from the household series into the extraction.
            let cycle = spec.profile.to_energy_series(det.start, det.intensity);
            let Some((lo, energies)) = extract_cycle(&mut modified, &mut extracted, &cycle) else {
                diagnostics.notes.push(format!(
                    "{} @ {}: no residual energy to extract",
                    det.appliance, det.start
                ));
                continue;
            };
            // The catalog envelope brackets the profile globally: scale
            // each slice by the spec's min/max-to-realised energy ratio.
            let realised = spec.profile.cycle_energy_kwh(det.intensity);
            if realised <= 0.0 {
                continue;
            }
            let (env_lo, env_hi) = spec.profile.energy_range_kwh();
            let lo_ratio = (env_lo / realised).min(1.0);
            let hi_ratio = (env_hi / realised).max(1.0);
            let slices: Vec<EnergyRange> = energies
                .iter()
                .map(|&e| EnergyRange::new(e * lo_ratio, e * hi_ratio))
                .collect::<Result<_, _>>()?;

            let earliest = modified.timestamp_of(lo);
            let latest =
                earliest + Duration::minutes((flexibility.as_minutes() / slice_min) * slice_min);
            let creation = earliest - self.cfg.creation_lead;
            let acceptance = (creation + self.cfg.acceptance_offset).min(earliest);
            let assignment = (earliest - self.cfg.assignment_lead).max(acceptance);
            let offer = FlexOffer::builder(next_id)
                .start_window(earliest, latest)
                .slices(self.cfg.slice_resolution, slices)
                .created_at(creation)
                .acceptance_by(acceptance)
                .assignment_by(assignment)
                .build()?;
            next_id += 1;
            offers.push(offer);
        }
        diagnostics.notes.push(format!(
            "{} detections over {:.1} days, {} flex-offers emitted",
            detections.len(),
            observed_days,
            offers.len()
        ));
        Ok(ExtractionOutput {
            approach: self.name(),
            flex_offers: offers,
            modified_series: modified,
            extracted_series: extracted,
            diagnostics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_appliance::Catalog;
    use flextract_series::{resample, TimeSeries};
    use flextract_time::{Resolution, TimeRange, Timestamp};
    use rand::SeedableRng;

    /// A day with a clean staged washer cycle plus flat base load, at
    /// 1-min granularity, and its 15-min aggregate.
    fn staged() -> (TimeSeries, TimeSeries, Timestamp) {
        let cat = Catalog::extended();
        let start: Timestamp = "2013-03-18".parse().unwrap();
        let range = TimeRange::starting_at(start, flextract_time::Duration::days(1)).unwrap();
        let mut fine = TimeSeries::zeros_over(range, Resolution::MIN_1).unwrap();
        for v in fine.values_mut() {
            *v = 0.1 / 60.0;
        }
        let washer = cat
            .find_by_name("Washing Machine from Manufacturer Y")
            .unwrap();
        let at: Timestamp = "2013-03-18 19:00".parse().unwrap();
        fine.add_overlapping(&washer.profile.to_energy_series(at, 0.5))
            .unwrap();
        let market = resample::downsample(&fine, Resolution::MIN_15).unwrap();
        (fine, market, at)
    }

    #[test]
    fn emits_one_offer_per_detected_cycle() {
        let (fine, market, at) = staged();
        let cat = Catalog::extended();
        let ex = FrequencyBasedExtractor::new(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&market)
                    .with_fine_series(&fine)
                    .with_catalog(&cat),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        let washers: Vec<&FlexOffer> = out
            .flex_offers
            .iter()
            .filter(|o| o.profile().len() >= 7)
            .collect();
        assert!(!washers.is_empty(), "offers: {:?}", out.flex_offers.len());
        // Offer anchored at the cycle (floored to the 15-min grid).
        let offer = washers[0];
        assert_eq!(offer.earliest_start(), at.floor_to(Resolution::MIN_15));
        // Time flexibility comes from the catalog (washer: 8 h).
        assert_eq!(offer.time_flexibility(), flextract_time::Duration::hours(8));
        out.check_invariants(&market).unwrap();
    }

    #[test]
    fn profile_band_comes_from_the_catalog_envelope() {
        let (fine, market, _) = staged();
        let cat = Catalog::extended();
        let ex = FrequencyBasedExtractor::new(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&market)
                    .with_fine_series(&fine)
                    .with_catalog(&cat),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        let offer = &out.flex_offers[0];
        let total = offer.total_energy();
        // Washer envelope is 1.2-3.0 kWh; the detected cycle sits inside.
        assert!(total.min >= 0.5 && total.min <= 2.2, "{total:?}");
        assert!(total.max >= total.min && total.max <= 3.5, "{total:?}");
        // Extracted energy is inside the offer band.
        let e = out.extracted_energy();
        assert!(
            total.min <= e + 1e-9 && e <= total.max + 1e-9,
            "{e} vs {total:?}"
        );
    }

    #[test]
    fn shortlist_appears_in_diagnostics() {
        let (fine, market, _) = staged();
        let cat = Catalog::extended();
        let ex = FrequencyBasedExtractor::new(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&market)
                    .with_fine_series(&fine)
                    .with_catalog(&cat),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        assert!(!out.diagnostics.shortlist.is_empty());
        assert!(out
            .diagnostics
            .shortlist
            .iter()
            .any(|s| s.contains("Washing Machine")));
    }

    #[test]
    fn requires_catalog() {
        let (_, market, _) = staged();
        let ex = FrequencyBasedExtractor::new(ExtractionConfig::default());
        assert_eq!(
            ex.extract(
                &ExtractionInput::household(&market),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::MissingCatalog)
        );
    }

    #[test]
    fn works_without_fine_series_but_finds_less() {
        let (fine, market, _) = staged();
        let cat = Catalog::extended();
        let ex = FrequencyBasedExtractor::new(ExtractionConfig::default());
        let with_fine = ex
            .extract(
                &ExtractionInput::household(&market)
                    .with_fine_series(&fine)
                    .with_catalog(&cat),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        let coarse_only = ex
            .extract(
                &ExtractionInput::household(&market).with_catalog(&cat),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        // The paper's point exactly: 15-min granularity is not
        // sufficient — it can never beat the fine input.
        assert!(coarse_only.flex_offers.len() <= with_fine.flex_offers.len());
        coarse_only.check_invariants(&market).unwrap();
    }

    #[test]
    fn quiet_series_emits_nothing() {
        let start: Timestamp = "2013-03-18".parse().unwrap();
        let market = TimeSeries::constant(start, Resolution::MIN_15, 0.025, 96);
        let cat = Catalog::extended();
        let ex = FrequencyBasedExtractor::new(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&market).with_catalog(&cat),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        assert!(out.flex_offers.is_empty());
        assert_eq!(out.extracted_energy(), 0.0);
    }

    #[test]
    fn empty_series_errors() {
        let start: Timestamp = "2013-03-18".parse().unwrap();
        let empty = TimeSeries::new(start, Resolution::MIN_15, vec![]).unwrap();
        let cat = Catalog::extended();
        let ex = FrequencyBasedExtractor::new(ExtractionConfig::default());
        assert_eq!(
            ex.extract(
                &ExtractionInput::household(&empty).with_catalog(&cat),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::EmptySeries)
        );
    }
}
