//! Production flex-offers — the paper's second §6 future-work item,
//! implemented: "the RES producer could issue a production flex-offer
//! specifying that the start of electricity production can be either in
//! 2 hours or 3 hours ahead, depending on the flex-offer schedule.
//! Traditional electricity producers are even more flexible, thus, they
//! can issue production flex-offers for almost all of their
//! production."
//!
//! A production flex-offer is structurally an ordinary [`FlexOffer`]
//! whose profile is *generation* rather than consumption; MIRABEL's
//! market layer treats both sides uniformly, which is exactly the
//! paper's point ("shift [the] current trading model based on bids to
//! the explicit flexibility trading model").

use crate::extractor::FlexibilityExtractor;
use crate::{Diagnostics, ExtractionConfig, ExtractionError, ExtractionInput, ExtractionOutput};
use flextract_flexoffer::{EnergyRange, FlexOffer};
use flextract_series::peaks::{detect_peaks, filter_peaks};
use flextract_series::PeakThreshold;
use flextract_time::Duration;
use rand::rngs::StdRng;

/// What kind of producer issues the offers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProducerKind {
    /// Weather-driven (wind/solar): only *forecast ramps* are offered,
    /// with a small start window derived from forecast timing
    /// uncertainty (the paper's "either in 2 hours or 3 hours ahead").
    Renewable {
        /// Half-width of the start window around the forecast ramp
        /// start.
        timing_uncertainty: Duration,
        /// Relative band on the energy amounts (`0.2` = ±20 %),
        /// reflecting forecast magnitude error.
        magnitude_uncertainty: f64,
    },
    /// Dispatchable (conventional): "almost all of their production" is
    /// flexible; one offer per day covering the whole forecast with a
    /// wide start window.
    Dispatchable {
        /// How far the producer can shift its daily program.
        shift_window: Duration,
    },
}

/// Extracts production flex-offers from a *production forecast* series.
///
/// The [`ExtractionInput::series`] is interpreted as forecast
/// generation (kWh per interval), e.g. from
/// [`flextract_series::forecast`] over simulated wind.
#[derive(Debug, Clone)]
pub struct ProductionExtractor {
    cfg: ExtractionConfig,
    kind: ProducerKind,
}

impl ProductionExtractor {
    /// A renewable producer with the paper's illustrative 1-hour timing
    /// window and ±20 % magnitude band.
    pub fn renewable(cfg: ExtractionConfig) -> Self {
        ProductionExtractor {
            cfg,
            kind: ProducerKind::Renewable {
                timing_uncertainty: Duration::hours(1),
                magnitude_uncertainty: 0.2,
            },
        }
    }

    /// A dispatchable producer that can shift its program by
    /// `shift_window`.
    pub fn dispatchable(cfg: ExtractionConfig, shift_window: Duration) -> Self {
        ProductionExtractor {
            cfg,
            kind: ProducerKind::Dispatchable { shift_window },
        }
    }

    /// Build with an explicit kind.
    pub fn new(cfg: ExtractionConfig, kind: ProducerKind) -> Self {
        ProductionExtractor { cfg, kind }
    }

    /// The producer kind.
    pub fn kind(&self) -> &ProducerKind {
        &self.kind
    }
}

impl FlexibilityExtractor for ProductionExtractor {
    fn name(&self) -> &'static str {
        match self.kind {
            ProducerKind::Renewable { .. } => "production-res",
            ProducerKind::Dispatchable { .. } => "production-dispatchable",
        }
    }

    fn extract(
        &self,
        input: &ExtractionInput<'_>,
        _rng: &mut StdRng,
    ) -> Result<ExtractionOutput, ExtractionError> {
        self.cfg.validate()?;
        let forecast = input.series;
        if forecast.is_empty() {
            return Err(ExtractionError::EmptySeries);
        }
        let res = forecast.resolution();
        let slice_min = res.minutes();
        let mut offers: Vec<FlexOffer> = Vec::new();
        let mut extracted = forecast.scale(0.0);
        let mut diagnostics = Diagnostics::default();
        let mut next_id = 1u64;

        match self.kind {
            ProducerKind::Renewable {
                timing_uncertainty,
                magnitude_uncertainty,
            } => {
                // Offer the forecast *ramps*: contiguous runs above the
                // series mean, filtered to meaningful energy.
                let (thr, ramps) = detect_peaks(forecast, PeakThreshold::Mean)?;
                let min_energy = self.cfg.flexible_share.max(0.01) * forecast.total_energy();
                let kept = filter_peaks(ramps, min_energy);
                diagnostics.notes.push(format!(
                    "{} forecast ramps above {thr:.2} kWh/interval, {} offered",
                    diagnostics.notes.len(),
                    kept.len()
                ));
                let slack =
                    Duration::minutes((timing_uncertainty.as_minutes() / slice_min) * slice_min);
                for ramp in kept {
                    let window = &forecast.values()[ramp.start_index..ramp.end_index()];
                    let slices: Vec<EnergyRange> = window
                        .iter()
                        .map(|&e| {
                            EnergyRange::new(
                                (e * (1.0 - magnitude_uncertainty)).max(0.0),
                                e * (1.0 + magnitude_uncertainty),
                            )
                        })
                        .collect::<Result<_, _>>()?;
                    for (k, &e) in window.iter().enumerate() {
                        let idx = ramp.start_index + k;
                        extracted.values_mut()[idx] += e;
                    }
                    // "start … either in 2 hours or 3 hours ahead": the
                    // window straddles the forecast start by ±slack
                    // (clipped at the horizon start).
                    let earliest = (ramp.range.start() - slack).max(forecast.start());
                    let latest = ramp.range.start() + slack;
                    let creation = earliest - self.cfg.creation_lead;
                    let acceptance = (creation + self.cfg.acceptance_offset).min(earliest);
                    let assignment = (earliest - self.cfg.assignment_lead).max(acceptance);
                    offers.push(
                        FlexOffer::builder(next_id)
                            .start_window(earliest, latest)
                            .slices(res, slices)
                            .created_at(creation)
                            .acceptance_by(acceptance)
                            .assignment_by(assignment)
                            .build()?,
                    );
                    next_id += 1;
                }
            }
            ProducerKind::Dispatchable { shift_window } => {
                // One offer per whole day covering (almost) all
                // production, with a wide shift window.
                for day in flextract_series::segment::split_whole_days(forecast) {
                    if day.total_energy() <= 0.0 {
                        diagnostics
                            .notes
                            .push(format!("{}: no production", day.start().date()));
                        continue;
                    }
                    let slices: Vec<EnergyRange> = day
                        .values()
                        .iter()
                        .map(|&e| EnergyRange::new(0.0, e))
                        .collect::<Result<_, _>>()?;
                    for (k, &e) in day.values().iter().enumerate() {
                        let idx = forecast
                            .index_of(day.timestamp_of(k))
                            .expect("day lies inside the forecast");
                        extracted.values_mut()[idx] += e;
                    }
                    let earliest = day.start();
                    let flex =
                        Duration::minutes((shift_window.as_minutes() / slice_min) * slice_min);
                    let creation = earliest - self.cfg.creation_lead;
                    let acceptance = (creation + self.cfg.acceptance_offset).min(earliest);
                    let assignment = (earliest - self.cfg.assignment_lead).max(acceptance);
                    offers.push(
                        FlexOffer::builder(next_id)
                            .start_window(earliest, earliest + flex)
                            .slices(res, slices)
                            .created_at(creation)
                            .acceptance_by(acceptance)
                            .assignment_by(assignment)
                            .build()?,
                    );
                    next_id += 1;
                }
            }
        }
        let modified = forecast.sub(&extracted)?;
        Ok(ExtractionOutput {
            approach: self.name(),
            flex_offers: offers,
            modified_series: modified,
            extracted_series: extracted,
            diagnostics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_series::TimeSeries;
    use flextract_time::{Resolution, Timestamp};
    use rand::SeedableRng;

    /// A day of forecast wind: calm, a 6-h production block, calm.
    fn forecast_day() -> TimeSeries {
        let mut values = vec![0.5; 96];
        for v in values.iter_mut().skip(40).take(24) {
            *v = 60.0;
        }
        TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap()
    }

    #[test]
    fn renewable_offers_cover_the_ramp() {
        let fc = forecast_day();
        let ex = ProductionExtractor::renewable(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&fc),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        assert_eq!(out.flex_offers.len(), 1);
        let offer = &out.flex_offers[0];
        // Ramp runs 10:00–16:00; window straddles its start by ±1 h.
        assert_eq!(offer.earliest_start().to_string(), "2013-03-18 09:00");
        assert_eq!(offer.latest_start().to_string(), "2013-03-18 11:00");
        assert_eq!(offer.time_flexibility(), Duration::hours(2));
        assert_eq!(offer.profile().len(), 24);
        // ±20 % magnitude band around the forecast energy.
        let total = offer.total_energy();
        let ramp_energy = 24.0 * 60.0;
        assert!((total.min - ramp_energy * 0.8).abs() < 1e-6);
        assert!((total.max - ramp_energy * 1.2).abs() < 1e-6);
        out.check_invariants(&fc).unwrap();
    }

    #[test]
    fn dispatchable_offers_almost_all_production() {
        let fc = forecast_day();
        let ex =
            ProductionExtractor::dispatchable(ExtractionConfig::default(), Duration::hours(12));
        let out = ex
            .extract(
                &ExtractionInput::household(&fc),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        assert_eq!(out.flex_offers.len(), 1); // one per day
        let offer = &out.flex_offers[0];
        assert_eq!(offer.profile().len(), 96);
        assert_eq!(offer.time_flexibility(), Duration::hours(12));
        // "almost all of their production": max band = the whole forecast.
        assert!((offer.total_energy().max - fc.total_energy()).abs() < 1e-9);
        assert_eq!(offer.total_energy().min, 0.0);
        // Everything moved into the extracted series.
        assert!((out.extracted_energy() - fc.total_energy()).abs() < 1e-9);
        assert!(out.modified_series.total_energy().abs() < 1e-9);
    }

    #[test]
    fn calm_forecast_yields_no_res_offers() {
        let flat = TimeSeries::constant(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            0.5,
            96,
        );
        let ex = ProductionExtractor::renewable(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&flat),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        assert!(out.flex_offers.is_empty());
    }

    #[test]
    fn offers_schedule_in_the_market_layer() {
        // The paper's uniformity claim: production offers are ordinary
        // flex-offers — they validate and enumerate starts like any
        // demand offer.
        let fc = forecast_day();
        let ex = ProductionExtractor::renewable(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&fc),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        let offer = &out.flex_offers[0];
        assert!(offer.validate().is_ok());
        assert_eq!(offer.candidate_starts().len(), 9); // ±1 h at 15 min
    }

    #[test]
    fn window_clips_at_the_horizon_start() {
        // Ramp at the very beginning: earliest start cannot precede the
        // forecast.
        let mut values = vec![50.0; 8];
        values.extend(vec![0.5; 88]);
        let fc = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap();
        let ex = ProductionExtractor::renewable(ExtractionConfig::default());
        let out = ex
            .extract(
                &ExtractionInput::household(&fc),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        assert_eq!(out.flex_offers[0].earliest_start(), fc.start());
    }

    #[test]
    fn empty_forecast_errors() {
        let empty = TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            vec![],
        )
        .unwrap();
        let ex = ProductionExtractor::renewable(ExtractionConfig::default());
        assert_eq!(
            ex.extract(
                &ExtractionInput::household(&empty),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(ExtractionError::EmptySeries)
        );
    }

    #[test]
    fn names_distinguish_producer_kinds() {
        let cfg = ExtractionConfig::default();
        assert_eq!(
            ProductionExtractor::renewable(cfg.clone()).name(),
            "production-res"
        );
        assert_eq!(
            ProductionExtractor::dispatchable(cfg, Duration::hours(6)).name(),
            "production-dispatchable"
        );
    }
}
