//! The extraction trait and shared offer-construction helpers.

use crate::{ExtractionConfig, ExtractionError, ExtractionInput, ExtractionOutput};
use flextract_flexoffer::{EnergyRange, FlexOffer};
use flextract_time::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::Rng;

/// A flexibility-extraction approach (one branch of the paper's
/// Figure-3 taxonomy).
///
/// Implementations are deterministic given the input and the caller's
/// RNG state, so experiments are reproducible end-to-end. They must be
/// `Send + Sync`: one extractor instance is shared by reference across
/// the scenario runner's consumer worker threads (extractors are plain
/// configuration data — all per-run state lives in the caller's RNG).
pub trait FlexibilityExtractor: Send + Sync {
    /// Short machine-friendly name (used in diagnostics and reports).
    fn name(&self) -> &'static str;

    /// Run the approach over `input`.
    fn extract(
        &self,
        input: &ExtractionInput<'_>,
        rng: &mut StdRng,
    ) -> Result<ExtractionOutput, ExtractionError>;
}

/// Sample a duration uniformly from an inclusive range, rounded **down**
/// to whole slices of `slice_minutes`.
pub(crate) fn sample_flexibility(
    rng: &mut StdRng,
    range: (Duration, Duration),
    slice_minutes: i64,
) -> Duration {
    let lo = range.0.as_minutes();
    let hi = range.1.as_minutes();
    let raw = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
    Duration::minutes((raw / slice_minutes) * slice_minutes)
}

/// Build a validated flex-offer whose profile extracts exactly
/// `slice_energies` from the series (the *average* of each slice's
/// `[min, max]` band is **not** required to equal the extracted energy —
/// the band brackets it per the config's controlled variation, the
/// paper's "minimum and maximum percentage of required energy").
///
/// `earliest_start` anchors the profile; the offer's latest start is
/// `earliest_start + flexibility` (sampled from the config range).
pub(crate) fn build_offer(
    id: u64,
    cfg: &ExtractionConfig,
    rng: &mut StdRng,
    earliest_start: Timestamp,
    slice_energies: &[f64],
) -> Result<FlexOffer, ExtractionError> {
    debug_assert!(!slice_energies.is_empty());
    let slices: Vec<EnergyRange> = slice_energies
        .iter()
        .map(|&e| {
            let e = e.max(0.0);
            let min_f = sample_fraction(rng, cfg.min_energy_fraction);
            let max_f = sample_fraction(rng, cfg.max_energy_fraction);
            EnergyRange::new(e * min_f, e * max_f)
        })
        .collect::<Result<_, _>>()?;

    let flexibility = sample_flexibility(rng, cfg.time_flexibility, cfg.slice_resolution.minutes());
    let latest_start = earliest_start + flexibility;
    let creation = earliest_start - cfg.creation_lead;
    let acceptance = (creation + cfg.acceptance_offset).min(earliest_start);
    let assignment = (earliest_start - cfg.assignment_lead).max(acceptance);

    Ok(FlexOffer::builder(id)
        .start_window(earliest_start, latest_start)
        .slices(cfg.slice_resolution, slices)
        .created_at(creation)
        .acceptance_by(acceptance)
        .assignment_by(assignment)
        .build()?)
}

/// Re-bin a fine-resolution cycle series onto `modified`'s grid,
/// capping at the energy each target interval still holds, subtracting
/// the capped amounts from `modified` and accumulating them into
/// `extracted`.
///
/// Returns `(first_target_index, per_interval_energies)` for the span
/// the cycle actually touched, or `None` when the cycle lies entirely
/// outside the series (or extracted nothing).
pub(crate) fn extract_cycle(
    modified: &mut flextract_series::TimeSeries,
    extracted: &mut flextract_series::TimeSeries,
    cycle_fine: &flextract_series::TimeSeries,
) -> Option<(usize, Vec<f64>)> {
    // Accumulate the cycle's energy per target interval.
    let mut lo: Option<usize> = None;
    let mut hi: Option<usize> = None;
    for (t, _) in cycle_fine.iter() {
        if let Some(i) = modified.index_of(t) {
            lo = Some(lo.map_or(i, |l: usize| l.min(i)));
            hi = Some(hi.map_or(i, |h: usize| h.max(i)));
        }
    }
    let (lo, hi) = (lo?, hi?);
    let mut energies = vec![0.0; hi - lo + 1];
    for (t, v) in cycle_fine.iter() {
        if let Some(i) = modified.index_of(t) {
            energies[i - lo] += v;
        }
    }
    // Cap, subtract, accumulate.
    let mut any = false;
    for (k, e) in energies.iter_mut().enumerate() {
        let available = modified.values()[lo + k].max(0.0);
        *e = e.min(available).max(0.0);
        if *e > 0.0 {
            any = true;
        }
        modified.values_mut()[lo + k] -= *e;
        extracted.values_mut()[lo + k] += *e;
    }
    if any {
        Some((lo, energies))
    } else {
        None
    }
}

fn sample_fraction(rng: &mut StdRng, range: (f64, f64)) -> f64 {
    if range.1 > range.0 {
        rng.gen_range(range.0..=range.1)
    } else {
        range.0
    }
}

/// Sample a slice count from the config range, clamped to `available`.
pub(crate) fn sample_slice_count(
    rng: &mut StdRng,
    cfg: &ExtractionConfig,
    available: usize,
) -> usize {
    let hi = cfg.slices_per_offer.1.min(available.max(1));
    let lo = cfg.slices_per_offer.0.min(hi);
    if hi > lo {
        rng.gen_range(lo..=hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn built_offers_always_validate() {
        let cfg = ExtractionConfig::default();
        let mut r = rng();
        let start: Timestamp = "2013-03-18 18:00".parse().unwrap();
        for i in 0..100 {
            let energies = vec![0.3; 1 + (i % 7)];
            let offer = build_offer(i as u64, &cfg, &mut r, start, &energies).unwrap();
            assert!(offer.validate().is_ok());
            assert_eq!(offer.profile().len(), energies.len());
            // Band brackets the extracted energy.
            for (slice, &e) in offer.profile().slices().iter().zip(&energies) {
                assert!(slice.min <= e * 0.95 + 1e-9);
                assert!(slice.max >= e * 1.05 - 1e-9);
            }
        }
    }

    #[test]
    fn flexibility_is_slice_aligned_and_in_range() {
        let cfg = ExtractionConfig::default();
        let mut r = rng();
        for _ in 0..100 {
            let f = sample_flexibility(&mut r, cfg.time_flexibility, 15);
            assert_eq!(f.as_minutes() % 15, 0);
            assert!(f >= Duration::ZERO);
            assert!(f <= cfg.time_flexibility.1);
        }
        // Degenerate range collapses to the low bound.
        let f = sample_flexibility(&mut r, (Duration::hours(2), Duration::hours(2)), 15);
        assert_eq!(f, Duration::hours(2));
    }

    #[test]
    fn zero_energy_slices_are_legal() {
        let cfg = ExtractionConfig::default();
        let mut r = rng();
        let start: Timestamp = "2013-03-18 06:00".parse().unwrap();
        let offer = build_offer(1, &cfg, &mut r, start, &[0.0, 0.0]).unwrap();
        assert_eq!(offer.total_energy().min, 0.0);
        // Negative inputs are clamped, not propagated.
        let offer = build_offer(2, &cfg, &mut r, start, &[-0.5]).unwrap();
        assert_eq!(offer.total_energy().min, 0.0);
    }

    #[test]
    fn slice_count_respects_bounds() {
        let cfg = ExtractionConfig::default(); // range (4, 8)
        let mut r = rng();
        for _ in 0..50 {
            let n = sample_slice_count(&mut r, &cfg, 100);
            assert!((4..=8).contains(&n));
            // Clamped by availability.
            let n = sample_slice_count(&mut r, &cfg, 3);
            assert!((1..=3).contains(&n));
            let n = sample_slice_count(&mut r, &cfg, 0);
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn lifecycle_of_built_offers_is_ordered() {
        let cfg = ExtractionConfig {
            // Pathological: acceptance offset longer than creation lead.
            acceptance_offset: Duration::hours(48),
            ..ExtractionConfig::default()
        };
        let mut r = rng();
        let start: Timestamp = "2013-03-18 06:00".parse().unwrap();
        let offer = build_offer(1, &cfg, &mut r, start, &[1.0]).unwrap();
        assert!(offer.creation_time() <= offer.acceptance_deadline());
        assert!(offer.acceptance_deadline() <= offer.assignment_deadline());
        assert!(offer.assignment_deadline() <= offer.earliest_start());
    }

    #[test]
    fn unaligned_start_is_rejected() {
        let cfg = ExtractionConfig::default();
        let mut r = rng();
        let start: Timestamp = "2013-03-18 06:07".parse().unwrap();
        assert!(matches!(
            build_offer(1, &cfg, &mut r, start, &[1.0]),
            Err(ExtractionError::FlexOffer(_))
        ));
    }
}
