//! Property tests for flex-offer invariants.

use flextract_flexoffer::{EnergyRange, FlexOffer, ScheduledFlexOffer};
use flextract_time::{Duration, Resolution, Timestamp};
use proptest::prelude::*;

/// Generates a valid flex-offer with up to 12 slices and up to 12 h of
/// time flexibility.
fn arb_offer() -> impl Strategy<Value = FlexOffer> {
    (
        1_u64..1000,
        0_i64..(365 * 96), // earliest start, in 15-min steps from epoch
        0_i64..48,         // time flexibility in 15-min steps
        prop::collection::vec((0.0_f64..3.0, 0.0_f64..2.0), 1..12),
    )
        .prop_map(|(id, est_steps, flex_steps, raw_slices)| {
            let est = Timestamp::from_minutes(est_steps * 15);
            let lst = est + Duration::minutes(flex_steps * 15);
            let slices = raw_slices
                .into_iter()
                .map(|(min, width)| EnergyRange::new(min, min + width).unwrap())
                .collect();
            FlexOffer::builder(id)
                .start_window(est, lst)
                .slices(Resolution::MIN_15, slices)
                .build()
                .expect("generated parameters are always valid")
        })
}

proptest! {
    #[test]
    fn built_offers_always_validate(offer in arb_offer()) {
        prop_assert!(offer.validate().is_ok());
        prop_assert!(offer.time_flexibility() >= Duration::ZERO);
        prop_assert!(offer.latest_end() >= offer.latest_start());
        let total = offer.total_energy();
        prop_assert!(total.min <= total.max + 1e-12);
        prop_assert!((offer.energy_flexibility() - (total.max - total.min)).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip(offer in arb_offer()) {
        let json = serde_json::to_string(&offer).unwrap();
        let back: FlexOffer = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &offer);
        prop_assert!(back.validate().is_ok());
    }

    #[test]
    fn candidate_starts_are_admissible(offer in arb_offer()) {
        let starts = offer.candidate_starts();
        prop_assert_eq!(
            starts.len() as i64,
            offer.time_flexibility().as_minutes() / 15 + 1
        );
        for &s in &starts {
            prop_assert!(s >= offer.earliest_start() && s <= offer.latest_start());
            prop_assert!(s.is_aligned(Resolution::MIN_15));
        }
    }

    #[test]
    fn every_candidate_start_schedules(offer in arb_offer()) {
        // Midpoint energies are always within bounds.
        let energies: Vec<f64> = offer
            .profile()
            .slices()
            .iter()
            .map(EnergyRange::midpoint)
            .collect();
        for s in offer.candidate_starts() {
            let sched = ScheduledFlexOffer::new(offer.clone(), s, energies.clone());
            prop_assert!(sched.is_ok());
            let sched = sched.unwrap();
            // Execution stays inside the execution window.
            prop_assert!(offer
                .execution_window()
                .contains_range(sched.execution_range()));
            // Series round-trip conserves the energy choice.
            prop_assert!(
                (sched.to_series().total_energy() - sched.total_energy()).abs() < 1e-9
            );
        }
    }

    #[test]
    fn baseline_schedule_is_minimal(offer in arb_offer()) {
        let b = ScheduledFlexOffer::baseline(offer.clone());
        prop_assert_eq!(b.start(), offer.earliest_start());
        prop_assert!((b.total_energy() - offer.total_energy().min).abs() < 1e-9);
        prop_assert_eq!(b.remaining_flexibility(), offer.time_flexibility());
    }

    #[test]
    fn out_of_window_starts_are_rejected(offer in arb_offer()) {
        let energies: Vec<f64> =
            offer.profile().slices().iter().map(|s| s.min).collect();
        let before = offer.earliest_start() - Duration::minutes(15);
        let after = offer.latest_start() + Duration::minutes(15);
        prop_assert!(ScheduledFlexOffer::new(offer.clone(), before, energies.clone()).is_err());
        prop_assert!(ScheduledFlexOffer::new(offer, after, energies).is_err());
    }
}
