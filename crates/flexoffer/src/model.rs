//! The flex-offer data model: energy ranges, profiles, and the offer
//! itself with its lifecycle attributes and validation invariants.

use crate::FlexOfferError;
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};

/// Identifier of a flex-offer (unique within one extraction run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FlexOfferId(pub u64);

impl std::fmt::Display for FlexOfferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fo#{}", self.0)
    }
}

/// An inclusive `[min, max]` energy bound for one profile slice, in kWh.
///
/// Figure 1 renders `min` as the solid area ("minimum required energy")
/// and `max − min` as the dotted area ("energy flexibility").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyRange {
    /// Minimum required energy (kWh), non-negative.
    pub min: f64,
    /// Maximum usable energy (kWh), at least `min`.
    pub max: f64,
}

impl EnergyRange {
    /// A validated range; requires `0 ≤ min ≤ max` and finite bounds.
    pub fn new(min: f64, max: f64) -> Result<Self, FlexOfferError> {
        if !(min.is_finite() && max.is_finite()) || min < 0.0 || max < min {
            return Err(FlexOfferError::InvalidEnergyRange { min, max });
        }
        Ok(EnergyRange { min, max })
    }

    /// A degenerate range with `min == max == amount` (no energy
    /// flexibility).
    pub fn exact(amount: f64) -> Result<Self, FlexOfferError> {
        Self::new(amount, amount)
    }

    /// Width of the range — the slice's energy flexibility (kWh).
    pub fn flexibility(&self) -> f64 {
        self.max - self.min
    }

    /// Midpoint of the range.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.min + self.max)
    }

    /// `true` if `e` lies within the bounds (inclusive, with a small
    /// numeric tolerance).
    pub fn contains(&self, e: f64) -> bool {
        e >= self.min - 1e-9 && e <= self.max + 1e-9
    }

    /// Clamp `e` into the bounds.
    pub fn clamp(&self, e: f64) -> f64 {
        e.clamp(self.min, self.max)
    }

    /// Slice-wise sum of two ranges (used by aggregation).
    pub fn sum(&self, other: &EnergyRange) -> EnergyRange {
        EnergyRange {
            min: self.min + other.min,
            max: self.max + other.max,
        }
    }
}

/// A flex-offer's energy profile: consecutive slices of one resolution,
/// each carrying an [`EnergyRange`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    resolution: Resolution,
    slices: Vec<EnergyRange>,
}

impl Profile {
    /// A validated profile; requires at least one slice.
    pub fn new(resolution: Resolution, slices: Vec<EnergyRange>) -> Result<Self, FlexOfferError> {
        if slices.is_empty() {
            return Err(FlexOfferError::EmptyProfile);
        }
        Ok(Profile { resolution, slices })
    }

    /// Slice width.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The slices in order.
    pub fn slices(&self) -> &[EnergyRange] {
        &self.slices
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// `false` — profiles are never empty once constructed; provided for
    /// idiomatic completeness.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Total wall-clock duration of the profile.
    pub fn duration(&self) -> Duration {
        self.resolution.interval() * self.slices.len() as i64
    }

    /// Sum of the slice bounds: the offer-level `[min, max]` energy.
    pub fn total_energy(&self) -> EnergyRange {
        EnergyRange {
            min: self.slices.iter().map(|s| s.min).sum(),
            max: self.slices.iter().map(|s| s.max).sum(),
        }
    }

    /// Total energy flexibility: `Σ (max − min)` over slices (kWh).
    pub fn energy_flexibility(&self) -> f64 {
        self.slices.iter().map(EnergyRange::flexibility).sum()
    }
}

/// A MIRABEL flex-offer (paper Figure 1).
///
/// Invariants enforced by [`FlexOfferBuilder::build`]:
///
/// * the profile is non-empty with valid slice ranges;
/// * `earliest_start ≤ latest_start`, both aligned to the profile
///   resolution;
/// * lifecycle ordering `creation ≤ acceptance ≤ assignment ≤
///   earliest_start`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlexOffer {
    id: FlexOfferId,
    profile: Profile,
    earliest_start: Timestamp,
    latest_start: Timestamp,
    creation_time: Timestamp,
    acceptance_deadline: Timestamp,
    assignment_deadline: Timestamp,
}

impl FlexOffer {
    /// Start building a flex-offer with the given id.
    pub fn builder(id: u64) -> FlexOfferBuilder {
        FlexOfferBuilder::new(FlexOfferId(id))
    }

    /// The offer id.
    pub fn id(&self) -> FlexOfferId {
        self.id
    }

    /// The energy profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Earliest admissible start instant.
    pub fn earliest_start(&self) -> Timestamp {
        self.earliest_start
    }

    /// Latest admissible start instant.
    pub fn latest_start(&self) -> Timestamp {
        self.latest_start
    }

    /// Latest end: `latest_start + profile duration` (Figure 1's
    /// "latest end time").
    pub fn latest_end(&self) -> Timestamp {
        self.latest_start + self.profile.duration()
    }

    /// When the offer was created.
    pub fn creation_time(&self) -> Timestamp {
        self.creation_time
    }

    /// Deadline by which the market must accept the offer.
    pub fn acceptance_deadline(&self) -> Timestamp {
        self.acceptance_deadline
    }

    /// Deadline by which a start time must be assigned.
    pub fn assignment_deadline(&self) -> Timestamp {
        self.assignment_deadline
    }

    /// Start-time flexibility: `latest_start − earliest_start`
    /// (Figure 1's "start time flexibility").
    pub fn time_flexibility(&self) -> Duration {
        self.latest_start - self.earliest_start
    }

    /// Total `[min, max]` energy of the profile.
    pub fn total_energy(&self) -> EnergyRange {
        self.profile.total_energy()
    }

    /// Total energy flexibility (kWh).
    pub fn energy_flexibility(&self) -> f64 {
        self.profile.energy_flexibility()
    }

    /// The whole window in which the offer may execute:
    /// `[earliest_start, latest_end)`.
    pub fn execution_window(&self) -> TimeRange {
        TimeRange::new(self.earliest_start, self.latest_end())
            .expect("latest_end is never before earliest_start")
    }

    /// All admissible start instants on the profile's resolution grid.
    pub fn candidate_starts(&self) -> Vec<Timestamp> {
        let step = self.profile.resolution().minutes();
        let n = (self.latest_start - self.earliest_start).as_minutes() / step + 1;
        (0..n)
            .map(|i| self.earliest_start + Duration::minutes(i * step))
            .collect()
    }

    /// Re-check every invariant (useful after deserialisation).
    pub fn validate(&self) -> Result<(), FlexOfferError> {
        for s in self.profile.slices() {
            EnergyRange::new(s.min, s.max)?;
        }
        if self.profile.is_empty() {
            return Err(FlexOfferError::EmptyProfile);
        }
        if self.latest_start < self.earliest_start {
            return Err(FlexOfferError::InvertedStartWindow);
        }
        if !self.earliest_start.is_aligned(self.profile.resolution())
            || !self.latest_start.is_aligned(self.profile.resolution())
        {
            return Err(FlexOfferError::UnalignedStart);
        }
        if self.creation_time > self.acceptance_deadline {
            return Err(FlexOfferError::LifecycleOutOfOrder {
                what: "creation after acceptance deadline",
            });
        }
        if self.acceptance_deadline > self.assignment_deadline {
            return Err(FlexOfferError::LifecycleOutOfOrder {
                what: "acceptance deadline after assignment deadline",
            });
        }
        if self.assignment_deadline > self.earliest_start {
            return Err(FlexOfferError::LifecycleOutOfOrder {
                what: "assignment deadline after earliest start",
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for FlexOffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total_energy();
        write!(
            f,
            "{} [{} .. {}] +{} flex, {} × {}, {:.2}-{:.2} kWh",
            self.id,
            self.earliest_start,
            self.latest_start,
            self.time_flexibility(),
            self.profile.len(),
            self.profile.resolution(),
            total.min,
            total.max,
        )
    }
}

/// Builder for [`FlexOffer`] enforcing all invariants at `build`.
///
/// Lifecycle instants default to sensible MIRABEL offsets when omitted:
/// creation 24 h before earliest start, acceptance 2 h after creation,
/// assignment 1 h before earliest start.
#[derive(Debug, Clone)]
pub struct FlexOfferBuilder {
    id: FlexOfferId,
    profile: Option<Profile>,
    earliest_start: Option<Timestamp>,
    latest_start: Option<Timestamp>,
    creation_time: Option<Timestamp>,
    acceptance_deadline: Option<Timestamp>,
    assignment_deadline: Option<Timestamp>,
}

impl FlexOfferBuilder {
    fn new(id: FlexOfferId) -> Self {
        FlexOfferBuilder {
            id,
            profile: None,
            earliest_start: None,
            latest_start: None,
            creation_time: None,
            acceptance_deadline: None,
            assignment_deadline: None,
        }
    }

    /// Set the admissible start window `[earliest, latest]` (inclusive).
    pub fn start_window(mut self, earliest: Timestamp, latest: Timestamp) -> Self {
        self.earliest_start = Some(earliest);
        self.latest_start = Some(latest);
        self
    }

    /// Provide the profile as raw slices.
    pub fn slices(mut self, resolution: Resolution, slices: Vec<EnergyRange>) -> Self {
        self.profile = Profile::new(resolution, slices).ok();
        self
    }

    /// Provide a ready profile.
    pub fn profile(mut self, profile: Profile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Set the creation time.
    pub fn created_at(mut self, t: Timestamp) -> Self {
        self.creation_time = Some(t);
        self
    }

    /// Set the acceptance deadline.
    pub fn acceptance_by(mut self, t: Timestamp) -> Self {
        self.acceptance_deadline = Some(t);
        self
    }

    /// Set the assignment deadline.
    pub fn assignment_by(mut self, t: Timestamp) -> Self {
        self.assignment_deadline = Some(t);
        self
    }

    /// Validate and produce the offer.
    pub fn build(self) -> Result<FlexOffer, FlexOfferError> {
        let profile = self.profile.ok_or(FlexOfferError::EmptyProfile)?;
        let earliest_start = self
            .earliest_start
            .ok_or(FlexOfferError::InvertedStartWindow)?;
        let latest_start = self
            .latest_start
            .ok_or(FlexOfferError::InvertedStartWindow)?;
        let creation_time = self
            .creation_time
            .unwrap_or(earliest_start - Duration::hours(24));
        let acceptance_deadline = self
            .acceptance_deadline
            .unwrap_or_else(|| (creation_time + Duration::hours(2)).min(earliest_start));
        let assignment_deadline = self
            .assignment_deadline
            .unwrap_or_else(|| (earliest_start - Duration::hours(1)).max(acceptance_deadline));
        let offer = FlexOffer {
            id: self.id,
            profile,
            earliest_start,
            latest_start,
            creation_time,
            acceptance_deadline,
            assignment_deadline,
        };
        offer.validate()?;
        Ok(offer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn slice(min: f64, max: f64) -> EnergyRange {
        EnergyRange::new(min, max).unwrap()
    }

    /// The paper's Figure-1 EV offer.
    fn fig1() -> FlexOffer {
        let per = 50.0 / 8.0;
        FlexOffer::builder(1)
            .start_window(ts("2013-03-18 22:00"), ts("2013-03-19 05:00"))
            .slices(Resolution::MIN_15, vec![slice(per * 0.9, per); 8])
            .build()
            .unwrap()
    }

    #[test]
    fn energy_range_invariants() {
        assert!(EnergyRange::new(1.0, 2.0).is_ok());
        assert!(EnergyRange::new(-0.1, 2.0).is_err());
        assert!(EnergyRange::new(2.0, 1.0).is_err());
        assert!(EnergyRange::new(f64::NAN, 1.0).is_err());
        assert!(EnergyRange::new(0.0, f64::INFINITY).is_err());
        let r = slice(1.0, 3.0);
        assert!((r.flexibility() - 2.0).abs() < 1e-12);
        assert!((r.midpoint() - 2.0).abs() < 1e-12);
        assert!(r.contains(1.0) && r.contains(3.0) && !r.contains(3.5));
        assert_eq!(r.clamp(5.0), 3.0);
        assert_eq!(r.clamp(0.0), 1.0);
        let s = r.sum(&slice(0.5, 0.5));
        assert_eq!((s.min, s.max), (1.5, 3.5));
        let e = EnergyRange::exact(2.0).unwrap();
        assert_eq!(e.flexibility(), 0.0);
    }

    #[test]
    fn profile_accessors() {
        let p = Profile::new(Resolution::MIN_15, vec![slice(1.0, 2.0); 8]).unwrap();
        assert_eq!(p.len(), 8);
        assert!(!p.is_empty());
        assert_eq!(p.duration(), Duration::hours(2));
        let total = p.total_energy();
        assert!((total.min - 8.0).abs() < 1e-12);
        assert!((total.max - 16.0).abs() < 1e-12);
        assert!((p.energy_flexibility() - 8.0).abs() < 1e-12);
        assert!(Profile::new(Resolution::MIN_15, vec![]).is_err());
    }

    #[test]
    fn figure_1_attributes() {
        let offer = fig1();
        // "the charging … should start between 10PM and 5AM"
        assert_eq!(offer.time_flexibility(), Duration::hours(7));
        // "the charging takes 2 hours in total"
        assert_eq!(offer.profile().duration(), Duration::hours(2));
        // "7am, latest end time"
        assert_eq!(offer.latest_end(), ts("2013-03-19 07:00"));
        // "it requires 50kWh to be fully charged"
        assert!((offer.total_energy().max - 50.0).abs() < 1e-9);
        assert!(offer.energy_flexibility() > 0.0);
        assert_eq!(
            offer.execution_window(),
            TimeRange::new(ts("2013-03-18 22:00"), ts("2013-03-19 07:00")).unwrap()
        );
        assert!(offer.validate().is_ok());
    }

    #[test]
    fn candidate_starts_enumerate_the_window() {
        let offer = fig1();
        let starts = offer.candidate_starts();
        // 7 h window at 15-min steps, inclusive: 29 candidates.
        assert_eq!(starts.len(), 29);
        assert_eq!(starts[0], offer.earliest_start());
        assert_eq!(*starts.last().unwrap(), offer.latest_start());
        // Degenerate window: single start.
        let fixed = FlexOffer::builder(2)
            .start_window(ts("2013-03-18 22:00"), ts("2013-03-18 22:00"))
            .slices(Resolution::MIN_15, vec![slice(1.0, 1.0)])
            .build()
            .unwrap();
        assert_eq!(fixed.candidate_starts().len(), 1);
        assert_eq!(fixed.time_flexibility(), Duration::ZERO);
    }

    #[test]
    fn builder_defaults_respect_lifecycle() {
        let offer = fig1();
        assert!(offer.creation_time() <= offer.acceptance_deadline());
        assert!(offer.acceptance_deadline() <= offer.assignment_deadline());
        assert!(offer.assignment_deadline() <= offer.earliest_start());
    }

    #[test]
    fn builder_rejects_inverted_window() {
        let res = FlexOffer::builder(1)
            .start_window(ts("2013-03-19 05:00"), ts("2013-03-18 22:00"))
            .slices(Resolution::MIN_15, vec![slice(1.0, 2.0)])
            .build();
        assert_eq!(res.unwrap_err(), FlexOfferError::InvertedStartWindow);
    }

    #[test]
    fn builder_rejects_missing_profile() {
        let res = FlexOffer::builder(1)
            .start_window(ts("2013-03-18 22:00"), ts("2013-03-19 05:00"))
            .build();
        assert_eq!(res.unwrap_err(), FlexOfferError::EmptyProfile);
    }

    #[test]
    fn builder_rejects_unaligned_window() {
        let res = FlexOffer::builder(1)
            .start_window(ts("2013-03-18 22:07"), ts("2013-03-19 05:00"))
            .slices(Resolution::MIN_15, vec![slice(1.0, 2.0)])
            .build();
        assert_eq!(res.unwrap_err(), FlexOfferError::UnalignedStart);
    }

    #[test]
    fn builder_rejects_bad_lifecycle() {
        let res = FlexOffer::builder(1)
            .start_window(ts("2013-03-18 22:00"), ts("2013-03-19 05:00"))
            .slices(Resolution::MIN_15, vec![slice(1.0, 2.0)])
            .created_at(ts("2013-03-18 23:00")) // after earliest start
            .build();
        assert!(matches!(
            res,
            Err(FlexOfferError::LifecycleOutOfOrder { .. })
        ));
        let res = FlexOffer::builder(1)
            .start_window(ts("2013-03-18 22:00"), ts("2013-03-19 05:00"))
            .slices(Resolution::MIN_15, vec![slice(1.0, 2.0)])
            .created_at(ts("2013-03-18 08:00"))
            .acceptance_by(ts("2013-03-18 06:00")) // before creation
            .build();
        assert!(matches!(
            res,
            Err(FlexOfferError::LifecycleOutOfOrder { .. })
        ));
    }

    #[test]
    fn serde_round_trip_preserves_validity() {
        let offer = fig1();
        let json = serde_json::to_string(&offer).unwrap();
        let back: FlexOffer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, offer);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn display_summarises() {
        let shown = fig1().to_string();
        assert!(shown.contains("fo#1"), "{shown}");
        assert!(shown.contains("7h00m"), "{shown}");
        assert!(shown.contains("8 × 15min"), "{shown}");
    }
}
