//! Scheduled (instantiated) flex-offers.
//!
//! Scheduling "fixes" a flex-offer: the scheduler picks a concrete start
//! inside the start window and a concrete energy inside each slice's
//! bounds (paper refs \[2\]\[5\]). The result can be converted back into a
//! [`TimeSeries`] so the balance between scheduled demand and RES
//! production can be measured.

use crate::{FlexOffer, FlexOfferError};
use flextract_series::TimeSeries;
use flextract_time::{TimeRange, Timestamp};
use serde::{Deserialize, Serialize};

/// A flex-offer with its start time and slice energies decided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFlexOffer {
    offer: FlexOffer,
    start: Timestamp,
    energies: Vec<f64>,
}

impl ScheduledFlexOffer {
    /// Schedule `offer` at `start` with the given per-slice energies.
    ///
    /// Validates that `start` lies in the admissible window on the
    /// profile grid and every energy is inside its slice bounds.
    pub fn new(
        offer: FlexOffer,
        start: Timestamp,
        energies: Vec<f64>,
    ) -> Result<Self, FlexOfferError> {
        if start < offer.earliest_start() || start > offer.latest_start() {
            return Err(FlexOfferError::StartOutsideWindow);
        }
        if !start.is_aligned(offer.profile().resolution()) {
            return Err(FlexOfferError::UnalignedStart);
        }
        if energies.len() != offer.profile().len() {
            return Err(FlexOfferError::EnergyLengthMismatch {
                expected: offer.profile().len(),
                got: energies.len(),
            });
        }
        for (i, (e, slice)) in energies.iter().zip(offer.profile().slices()).enumerate() {
            if !slice.contains(*e) {
                return Err(FlexOfferError::EnergyOutOfBounds { slice: i });
            }
        }
        Ok(ScheduledFlexOffer {
            offer,
            start,
            energies,
        })
    }

    /// The *default schedule*: start at the earliest admissible instant
    /// with every slice at its minimum energy. This is MIRABEL's
    /// fall-back when no RES surplus re-schedules the offer.
    pub fn baseline(offer: FlexOffer) -> Self {
        let start = offer.earliest_start();
        let energies = offer.profile().slices().iter().map(|s| s.min).collect();
        ScheduledFlexOffer {
            offer,
            start,
            energies,
        }
    }

    /// The underlying offer.
    pub fn offer(&self) -> &FlexOffer {
        &self.offer
    }

    /// The chosen start instant.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// The chosen per-slice energies (kWh).
    pub fn energies(&self) -> &[f64] {
        &self.energies
    }

    /// Total scheduled energy (kWh).
    pub fn total_energy(&self) -> f64 {
        self.energies.iter().sum()
    }

    /// The concrete execution span `[start, start + duration)`.
    pub fn execution_range(&self) -> TimeRange {
        TimeRange::starting_at(self.start, self.offer.profile().duration())
            .expect("profile duration is non-negative")
    }

    /// Remaining slack: how much later the offer could still start.
    pub fn remaining_flexibility(&self) -> flextract_time::Duration {
        self.offer.latest_start() - self.start
    }

    /// Materialise as an energy series on the profile's resolution.
    pub fn to_series(&self) -> TimeSeries {
        TimeSeries::new(
            self.start,
            self.offer.profile().resolution(),
            self.energies.clone(),
        )
        .expect("schedule start is validated as aligned")
    }

    /// Re-start the same schedule at a different instant, keeping the
    /// energies (used by the scheduler's local search moves).
    pub fn with_start(&self, start: Timestamp) -> Result<Self, FlexOfferError> {
        Self::new(self.offer.clone(), start, self.energies.clone())
    }
}

impl std::fmt::Display for ScheduledFlexOffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ {} ({:.2} kWh)",
            self.offer.id(),
            self.start,
            self.total_energy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnergyRange;
    use flextract_time::{Duration, Resolution};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn offer() -> FlexOffer {
        FlexOffer::builder(7)
            .start_window(ts("2013-03-18 22:00"), ts("2013-03-19 05:00"))
            .slices(
                Resolution::MIN_15,
                vec![EnergyRange::new(5.0, 7.0).unwrap(); 8],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn valid_schedule_round_trips_to_series() {
        let s = ScheduledFlexOffer::new(offer(), ts("2013-03-19 01:00"), vec![6.0; 8]).unwrap();
        assert!((s.total_energy() - 48.0).abs() < 1e-9);
        let series = s.to_series();
        assert_eq!(series.start(), ts("2013-03-19 01:00"));
        assert_eq!(series.len(), 8);
        assert!((series.total_energy() - 48.0).abs() < 1e-9);
        assert_eq!(
            s.execution_range(),
            TimeRange::new(ts("2013-03-19 01:00"), ts("2013-03-19 03:00")).unwrap()
        );
        assert_eq!(s.remaining_flexibility(), Duration::hours(4));
    }

    #[test]
    fn baseline_uses_earliest_and_minimums() {
        let b = ScheduledFlexOffer::baseline(offer());
        assert_eq!(b.start(), ts("2013-03-18 22:00"));
        assert!((b.total_energy() - 40.0).abs() < 1e-9);
        assert_eq!(b.remaining_flexibility(), Duration::hours(7));
    }

    #[test]
    fn start_window_is_enforced() {
        let early = ScheduledFlexOffer::new(offer(), ts("2013-03-18 21:45"), vec![6.0; 8]);
        assert_eq!(early.unwrap_err(), FlexOfferError::StartOutsideWindow);
        let late = ScheduledFlexOffer::new(offer(), ts("2013-03-19 05:15"), vec![6.0; 8]);
        assert_eq!(late.unwrap_err(), FlexOfferError::StartOutsideWindow);
        // Boundary instants are admissible.
        assert!(ScheduledFlexOffer::new(offer(), ts("2013-03-18 22:00"), vec![6.0; 8]).is_ok());
        assert!(ScheduledFlexOffer::new(offer(), ts("2013-03-19 05:00"), vec![6.0; 8]).is_ok());
    }

    #[test]
    fn alignment_is_enforced() {
        let res = ScheduledFlexOffer::new(offer(), ts("2013-03-18 22:07"), vec![6.0; 8]);
        assert_eq!(res.unwrap_err(), FlexOfferError::UnalignedStart);
    }

    #[test]
    fn energy_bounds_are_enforced() {
        let res = ScheduledFlexOffer::new(offer(), ts("2013-03-18 22:00"), vec![4.0; 8]);
        assert_eq!(
            res.unwrap_err(),
            FlexOfferError::EnergyOutOfBounds { slice: 0 }
        );
        let mut mixed = vec![6.0; 8];
        mixed[5] = 7.5;
        let res = ScheduledFlexOffer::new(offer(), ts("2013-03-18 22:00"), mixed);
        assert_eq!(
            res.unwrap_err(),
            FlexOfferError::EnergyOutOfBounds { slice: 5 }
        );
    }

    #[test]
    fn length_mismatch_is_reported() {
        let res = ScheduledFlexOffer::new(offer(), ts("2013-03-18 22:00"), vec![6.0; 7]);
        assert_eq!(
            res.unwrap_err(),
            FlexOfferError::EnergyLengthMismatch {
                expected: 8,
                got: 7
            }
        );
    }

    #[test]
    fn with_start_moves_inside_window_only() {
        let s = ScheduledFlexOffer::baseline(offer());
        let moved = s.with_start(ts("2013-03-19 02:00")).unwrap();
        assert_eq!(moved.start(), ts("2013-03-19 02:00"));
        assert_eq!(moved.energies(), s.energies());
        assert!(s.with_start(ts("2013-03-19 06:00")).is_err());
    }

    #[test]
    fn display_summarises() {
        let s = ScheduledFlexOffer::baseline(offer());
        let shown = s.to_string();
        assert!(shown.contains("fo#7"), "{shown}");
        assert!(shown.contains("40.00 kWh"), "{shown}");
    }

    #[test]
    fn serde_round_trip() {
        let s = ScheduledFlexOffer::baseline(offer());
        let json = serde_json::to_string(&s).unwrap();
        let back: ScheduledFlexOffer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
