//! # flextract-flexoffer
//!
//! The MIRABEL **flex-offer** object model — the core concept of the
//! paper ("the flex-offer concept is the basis of the project", §1).
//!
//! A flex-offer captures a shiftable unit of energy demand (or supply):
//!
//! * a **profile** ([`Profile`]) — consecutive fixed-width slices, each
//!   with a `[min, max]` energy bound ([`EnergyRange`]) — "at each
//!   (15 min) time interval it states the minimum and maximum required
//!   energy";
//! * **time flexibility** — the start may be chosen anywhere in
//!   `[earliest_start, latest_start]`;
//! * lifecycle instants — creation time, acceptance deadline and
//!   assignment deadline, in that order before the earliest start.
//!
//! The paper's Figure 1 is reproducible directly from the builder:
//!
//! ```
//! use flextract_flexoffer::{EnergyRange, FlexOffer};
//! use flextract_time::{Duration, Resolution, Timestamp};
//!
//! // EV charging: start between 10 PM and 5 AM, 2 h profile, 50 kWh.
//! let ten_pm = Timestamp::from_ymd_hm(2013, 3, 18, 22, 0).unwrap();
//! let five_am = Timestamp::from_ymd_hm(2013, 3, 19, 5, 0).unwrap();
//! let per_slice = 50.0 / 8.0; // 8 quarter-hour slices
//! let offer = FlexOffer::builder(1)
//!     .start_window(ten_pm, five_am)
//!     .slices(Resolution::MIN_15, vec![EnergyRange::new(per_slice * 0.9, per_slice).unwrap(); 8])
//!     .created_at(ten_pm - Duration::hours(12))
//!     .build()
//!     .unwrap();
//!
//! assert_eq!(offer.time_flexibility(), Duration::hours(7));
//! assert_eq!(offer.latest_end(), five_am + Duration::hours(2));
//! assert!((offer.total_energy().max - 50.0).abs() < 1e-9);
//! ```
//!
//! [`ScheduledFlexOffer`] fixes a start time and per-slice energies —
//! the downstream scheduler's output (refs \[4\]\[5\]) — and converts back
//! to a [`TimeSeries`](flextract_series::TimeSeries) for grid-balance
//! accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod schedule;

pub use model::{EnergyRange, FlexOffer, FlexOfferBuilder, FlexOfferId, Profile};
pub use schedule::ScheduledFlexOffer;

/// Validation errors for flex-offers and their schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum FlexOfferError {
    /// A slice energy range had `min > max` or a negative bound.
    InvalidEnergyRange {
        /// Offending minimum (kWh).
        min: f64,
        /// Offending maximum (kWh).
        max: f64,
    },
    /// The profile has no slices.
    EmptyProfile,
    /// `latest_start` precedes `earliest_start`.
    InvertedStartWindow,
    /// The lifecycle instants are out of order
    /// (creation ≤ acceptance ≤ assignment ≤ earliest start).
    LifecycleOutOfOrder {
        /// Which relation was violated.
        what: &'static str,
    },
    /// A start window instant is not aligned to the profile resolution.
    UnalignedStart,
    /// A schedule chose a start outside `[earliest_start, latest_start]`.
    StartOutsideWindow,
    /// A schedule's energy vector length differs from the profile.
    EnergyLengthMismatch {
        /// Number of profile slices.
        expected: usize,
        /// Number of scheduled energies.
        got: usize,
    },
    /// A scheduled slice energy violates its `[min, max]` bound.
    EnergyOutOfBounds {
        /// Index of the offending slice.
        slice: usize,
    },
}

impl std::fmt::Display for FlexOfferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlexOfferError::InvalidEnergyRange { min, max } => {
                write!(f, "invalid energy range [{min}, {max}]")
            }
            FlexOfferError::EmptyProfile => write!(f, "flex-offer profile has no slices"),
            FlexOfferError::InvertedStartWindow => {
                write!(f, "latest start precedes earliest start")
            }
            FlexOfferError::LifecycleOutOfOrder { what } => {
                write!(f, "lifecycle instants out of order: {what}")
            }
            FlexOfferError::UnalignedStart => {
                write!(f, "start window is not aligned to the profile resolution")
            }
            FlexOfferError::StartOutsideWindow => {
                write!(f, "scheduled start outside [earliest, latest] window")
            }
            FlexOfferError::EnergyLengthMismatch { expected, got } => {
                write!(f, "schedule has {got} energies for {expected} slices")
            }
            FlexOfferError::EnergyOutOfBounds { slice } => {
                write!(f, "scheduled energy for slice {slice} violates its bounds")
            }
        }
    }
}

impl std::error::Error for FlexOfferError {}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_messages_are_specific() {
        assert!(FlexOfferError::InvalidEnergyRange { min: 2.0, max: 1.0 }
            .to_string()
            .contains("[2, 1]"));
        assert!(FlexOfferError::EmptyProfile
            .to_string()
            .contains("no slices"));
        assert!(FlexOfferError::EnergyLengthMismatch {
            expected: 8,
            got: 7
        }
        .to_string()
        .contains("7 energies for 8 slices"));
        assert!(FlexOfferError::EnergyOutOfBounds { slice: 3 }
            .to_string()
            .contains('3'));
        assert!(FlexOfferError::LifecycleOutOfOrder {
            what: "acceptance after assignment"
        }
        .to_string()
        .contains("acceptance"));
    }
}
