//! # flextract
//!
//! Automated extraction of **flexibilities** (MIRABEL flex-offers) from
//! electricity consumption time series — a complete, executable
//! reproduction of:
//!
//! > D. Kaulakienė, L. Šikšnys, Y. Pitarch. *Towards the Automated
//! > Extraction of Flexibilities from Electricity Time Series.*
//! > Proceedings of the Joint EDBT/ICDT 2013 Workshops (EnDM),
//! > pp. 267–272. DOI 10.1145/2457317.2457361.
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`time`] | `flextract-time` | timestamps, durations, calendar, ranges |
//! | [`series`] | `flextract-series` | the energy time-series engine |
//! | [`flexoffer`] | `flextract-flexoffer` | the flex-offer object model |
//! | [`appliance`] | `flextract-appliance` | the Table-1 appliance catalog |
//! | [`sim`] | `flextract-sim` | household/RES simulation with ground truth |
//! | [`disagg`] | `flextract-disagg` | NILM-style appliance detection |
//! | [`core`] | `flextract-core` | **the five extraction approaches** |
//! | [`agg`] | `flextract-agg` | flex-offer aggregation & RES scheduling |
//! | [`eval`] | `flextract-eval` | realism metrics, ground truth, experiments |
//! | [`frame`] | `flextract-frame` | columnar chunk-stat frames (FXM2) + lazy scans |
//! | [`dataset`] | `flextract-dataset` | metered-series store, degradation, cleaning |
//! | [`scenario`] | `flextract-scenario` | declarative scenario corpus + parallel runner |
//! | [`analyze`] | `flextract-analyze` | workspace lint engine (static invariant gate) |
//!
//! ## Quickstart
//!
//! ```
//! use flextract::core::{ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor};
//! use flextract::sim::{simulate_household, HouseholdArchetype, HouseholdConfig};
//! use flextract::time::{Duration, Resolution, TimeRange};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. A week of 15-min household consumption (simulated stand-in for
//! //    the paper's metering data).
//! let cfg = HouseholdConfig::new(1, HouseholdArchetype::FamilyWithChildren);
//! let week = TimeRange::starting_at("2013-03-18".parse().unwrap(), Duration::weeks(1)).unwrap();
//! let sim = simulate_household(&cfg, week);
//! let market = sim.series_at(Resolution::MIN_15);
//!
//! // 2. Peak-based extraction (§3.2): one flex-offer per day.
//! let extractor = PeakExtractor::new(ExtractionConfig::default());
//! let out = extractor
//!     .extract(&ExtractionInput::household(&market), &mut StdRng::seed_from_u64(42))
//!     .unwrap();
//! assert!(out.flex_offers.len() <= 7);
//! out.check_invariants(&market).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Flex-offer aggregation and RES-matching scheduling (refs \[4\]\[5\]).
pub mod agg {
    pub use flextract_agg::*;
}

/// The workspace lint engine (`flextract analyze`): static enforcement
/// of the determinism and panic-safety invariants.
pub mod analyze {
    pub use flextract_analyze::*;
}

/// The appliance catalog (paper Table 1, made executable).
pub mod appliance {
    pub use flextract_appliance::*;
}

/// The paper's contribution: the flexibility-extraction approaches.
pub mod core {
    pub use flextract_core::*;
}

/// Metered-series datasets: columnar store, degradation, cleaning.
pub mod dataset {
    pub use flextract_dataset::*;
}

/// Appliance-level load disaggregation (§4 step 1).
pub mod disagg {
    pub use flextract_disagg::*;
}

/// Realism metrics, ground-truth scoring and the E5–E9 experiments.
pub mod eval {
    pub use flextract_eval::*;
}

/// The MIRABEL flex-offer object model (Figure 1).
pub mod flexoffer {
    pub use flextract_flexoffer::*;
}

/// Columnar chunk-stat frames: the FXM2 codec and lazy pushdown scans.
pub mod frame {
    pub use flextract_frame::*;
}

/// Declarative scenario corpus + parallel pipeline runner.
pub mod scenario {
    pub use flextract_scenario::*;
}

/// The fixed-interval energy time-series engine.
pub mod series {
    pub use flextract_series::*;
}

/// Synthetic household consumption and wind production.
pub mod sim {
    pub use flextract_sim::*;
}

/// Civil-time substrate.
pub mod time {
    pub use flextract_time::*;
}
