//! `flextract` — command-line front end.
//!
//! ```text
//! flextract simulate  --households 5 --days 7 --seed 1 --out data/
//! flextract extract   --approach peak --input data/household_0.csv --share 0.05
//! flextract fig5
//! flextract experiment e6 --households 10 --days 14
//! ```
//!
//! Series files are either the workspace CSV layout
//! (`interval_start,kwh` rows, as written by `simulate`) or the `.fxt`
//! binary codec.

use flextract::core::{
    BasicExtractor, ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor,
    RandomExtractor,
};
use flextract::dataset::{
    Aggregates, CleaningConfig, Dataset, Degradation, Predicate, ResidentStore, Scan, ScanReport,
    SeriesCodec,
};
use flextract::eval::experiments::{
    aggregation_study, approach_comparison, granularity, share_sweep, tariff_study,
    threshold_ablation, ExperimentParams,
};
use flextract::eval::fig5_day;
use flextract::flexoffer::FlexOffer;
use flextract::scenario::shard::ordered_parallel_map;
use flextract::scenario::{load_dir, load_file, ExportOptions, Scenario, ScenarioRunner};
use flextract::series::{codec, missing::FillStrategy, TimeSeries};
use flextract::sim::{simulate_fleet, FleetConfig};
use flextract::time::{Duration, Resolution, TimeRange, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
flextract — flex-offer extraction from electricity time series

USAGE:
  flextract simulate   [--households N] [--days D] [--seed S] --out DIR
  flextract extract    --input FILE [--approach peak|basic|random]
                       [--share F] [--seed S] [--out FILE.json]
  flextract fig5
  flextract experiment e5|e6|e7|e8|e9|e10 [--households N] [--days D] [--seed S]
  flextract scenario list [--dir DIR]
  flextract scenario run (--all | --name NAME) [--dir DIR] [--threads N]
                       [--consumer-threads N] [--json]
  flextract dataset export  --scenario FILE --out DIR
                       [--codec fxm3|fxm2|fxm1|csv]
                       [--shard-capacity N] [--resolution-min N] [--noise F]
                       [--gap-rate F] [--mean-gap-len F] [--anomaly-rate F]
                       [--anomaly-factor F] [--anomaly-len N]
                       [--quantize-kwh F] [--seed S] [--no-truth]
  flextract dataset inspect --dataset DIR [--consumer N]
  flextract dataset compact --dataset DIR
  flextract dataset ingest  --dataset DIR [--fill linear|previous|seasonal|zero]
                       [--screen-anomalies] [--consumer N]
  flextract query      --dataset DIR [--consumer N] [--from TS] [--to TS]
                       [--agg stats|sum|mean|peak|gaps]
                       [--where gaps|min-below:F|max-above:F]
                       [--resolution-min N] [--threads N] [--repeat N] [--json]
  flextract query      --offers FILE.json [--from TS] [--to TS] [--json]
  flextract analyze    [--root DIR] [--config FILE] [--json] [--sarif FILE]
                       [--no-cache]
  flextract help

The scenario corpus lives in scenarios/ (one JSON spec per scenario);
datasets are directories with a manifest.json plus one series file per
consumer, or — with `--shard-capacity` — a sharded store (root.json over
shards/NNNN/ sub-datasets carrying statistics roll-ups). `query` runs
time-sliced aggregate queries over a dataset directory (FXM2/FXM3 files
answer from chunk statistics, skipping non-matching chunks; sharded
stores additionally prune whole shards from their roll-ups) or over an
exported flex-offer set. Dataset queries run through a process-resident
store handle (parsed indexes, decoded frames and chunk payloads stay
cached between passes); `--repeat N` re-runs the query N times so the
printed pass reports the warm path's cache hits and bytes saved.
`dataset compact` rewrites an append-fragmented sharded store into
canonical capacity-aligned shards. See the README for the spec and
dataset formats and the golden-file workflow.
";

/// Minimal flag parser: `--key value` pairs after the positionals.
#[derive(Debug, Default)]
struct Flags {
    entries: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        Self::parse_with_switches(args, &[])
    }

    /// Like [`Flags::parse`], but flags named in `switches` take no
    /// value (`--all`) and are recorded as `true`.
    fn parse_with_switches(args: &[String], switches: &[&str]) -> Result<Flags, String> {
        let mut entries = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("unexpected argument '{key}'"));
            };
            if switches.contains(&name) {
                entries.push((name.to_string(), "true".to_string()));
                continue;
            }
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            entries.push((name.to_string(), value.clone()));
        }
        Ok(Flags { entries })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for --{name}")),
        }
    }
}

/// A command failure with an explicit process exit code.
///
/// The exit-code contract (pinned by `cli_smoke`): 1 means the command
/// ran and judged — bad flags, failed extraction, unsuppressed analyze
/// findings; 2 means the tool itself could not do its job (unreadable
/// file, malformed `analyze.toml`), with a message naming the path.
struct Failure {
    code: u8,
    msg: String,
    usage: bool,
}

impl From<String> for Failure {
    fn from(msg: String) -> Failure {
        Failure {
            code: 1,
            msg,
            usage: true,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("error: {}", failure.msg);
            if failure.usage {
                eprintln!("{USAGE}");
            }
            ExitCode::from(failure.code)
        }
    }
}

fn run(args: &[String]) -> Result<(), Failure> {
    let Some(command) = args.first() else {
        return Err(Failure::from(String::from("no command given")));
    };
    if command == "analyze" {
        let flags = Flags::parse_with_switches(&args[1..], &["json", "no-cache"])?;
        return cmd_analyze(&flags);
    }
    run_simple(command, args).map_err(Failure::from)
}

fn run_simple(command: &str, args: &[String]) -> Result<(), String> {
    match command {
        "simulate" => cmd_simulate(&Flags::parse(&args[1..])?),
        "extract" => cmd_extract(&Flags::parse(&args[1..])?),
        "fig5" => cmd_fig5(),
        "experiment" => {
            let Some(which) = args.get(1) else {
                return Err("experiment needs a name (e5..e10)".into());
            };
            cmd_experiment(which, &Flags::parse(&args[2..])?)
        }
        "scenario" => {
            let Some(action) = args.get(1) else {
                return Err("scenario needs an action (list|run)".into());
            };
            cmd_scenario(
                action,
                &Flags::parse_with_switches(&args[2..], &["all", "json"])?,
            )
        }
        "dataset" => {
            let Some(action) = args.get(1) else {
                return Err("dataset needs an action (export|inspect|compact|ingest)".into());
            };
            cmd_dataset(
                action,
                &Flags::parse_with_switches(&args[2..], &["screen-anomalies", "no-truth"])?,
            )
        }
        "query" => cmd_query(&Flags::parse_with_switches(&args[1..], &["json"])?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Parse and validate the fleet-shaped flags shared by `simulate` and
/// `experiment`.
fn fleet_flags(
    flags: &Flags,
    default_households: usize,
    default_days: i64,
) -> Result<(usize, i64, u64), String> {
    let households: usize = flags.get_parsed("households", default_households)?;
    if households == 0 {
        return Err("--households must be at least 1".into());
    }
    let days: i64 = flags.get_parsed("days", default_days)?;
    if days < 1 {
        return Err("--days must be at least 1".into());
    }
    let seed: u64 = flags.get_parsed("seed", 2013)?;
    Ok((households, days, seed))
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let (households, days, seed) = fleet_flags(flags, 5, 7)?;
    let out = flags.get("out").ok_or("simulate needs --out DIR")?;
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {out}: {e}"))?;

    let start: Timestamp = "2013-03-18".parse().expect("static date");
    let horizon = TimeRange::starting_at(start, Duration::days(days)).expect("days >= 0");
    let fleet = simulate_fleet(
        &FleetConfig {
            households,
            base_seed: seed,
            threads: 4,
            ..FleetConfig::default()
        },
        horizon,
    );
    for h in &fleet.households {
        let market = h.series_at(Resolution::MIN_15);
        let base = Path::new(out).join(format!("household_{}", h.config.id));
        std::fs::write(base.with_extension("csv"), market.to_csv())
            .map_err(|e| format!("write csv: {e}"))?;
        std::fs::write(base.with_extension("fxt"), codec::encode(&market))
            .map_err(|e| format!("write fxt: {e}"))?;
    }
    let total = Path::new(out).join("fleet_total");
    std::fs::write(total.with_extension("csv"), fleet.total.to_csv())
        .map_err(|e| format!("write csv: {e}"))?;
    println!(
        "simulated {households} households × {days} days → {out}/ ({:.0} kWh total, {:.1} % truly flexible)",
        fleet.total.total_energy(),
        fleet.true_flexible_share() * 100.0
    );
    Ok(())
}

fn cmd_extract(flags: &Flags) -> Result<(), String> {
    let input = flags.get("input").ok_or("extract needs --input FILE")?;
    let approach = flags.get("approach").unwrap_or("peak");
    let share: f64 = flags.get_parsed("share", 0.05)?;
    let seed: u64 = flags.get_parsed("seed", 2013)?;

    let series = read_series(Path::new(input))?;
    let cfg = ExtractionConfig::with_share(share);
    let extractor: Box<dyn FlexibilityExtractor> = match approach {
        "peak" => Box::new(PeakExtractor::new(cfg)),
        "basic" => Box::new(BasicExtractor::new(cfg)),
        "random" => Box::new(RandomExtractor::new(cfg)),
        other => return Err(format!("unknown approach '{other}' (peak|basic|random)")),
    };
    let out = extractor
        .extract(
            &ExtractionInput::household(&series),
            &mut StdRng::seed_from_u64(seed),
        )
        .map_err(|e| format!("extraction failed: {e}"))?;
    println!(
        "{}: {} flex-offers, {:.2} kWh extracted ({:.2} % of {:.2} kWh)",
        out.approach,
        out.flex_offers.len(),
        out.extracted_energy(),
        out.achieved_share() * 100.0,
        series.total_energy()
    );
    for offer in &out.flex_offers {
        println!("  {offer}");
    }
    if let Some(path) = flags.get("out") {
        let json = serde_json::to_string_pretty(&out.flex_offers)
            .map_err(|e| format!("serialise offers: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!("offers written to {path}");
    }
    Ok(())
}

fn cmd_fig5() -> Result<(), String> {
    let day = fig5_day();
    let out = PeakExtractor::new(ExtractionConfig::default())
        .extract(
            &ExtractionInput::household(&day),
            &mut StdRng::seed_from_u64(5),
        )
        .map_err(|e| format!("{e}"))?;
    let report = &out.diagnostics.peak_reports[0];
    println!(
        "Figure-5 day: total {:.2} kWh, threshold {:.4}, filter {:.3} kWh",
        report.day_total_kwh, report.threshold_kwh, report.min_peak_energy_kwh
    );
    for p in &report.peaks {
        println!(
            "  peak {}: size {:.2} kWh — {}",
            p.number,
            p.size_kwh,
            if p.survived_filter {
                format!("survives (p = {:.0} %)", p.probability * 100.0)
            } else {
                "discarded".into()
            }
        );
    }
    Ok(())
}

fn cmd_experiment(which: &str, flags: &Flags) -> Result<(), String> {
    let (households, days, seed) = fleet_flags(flags, 10, 14)?;
    let params = ExperimentParams {
        households,
        days,
        seed,
    };
    let rendered = match which {
        "e5" => share_sweep(&[0.001, 0.005, 0.01, 0.02, 0.05, 0.065], params).render(),
        "e6" => approach_comparison(params).render(),
        "e7" => granularity(params).render(),
        "e8" => aggregation_study(params).render(),
        "e9" => tariff_study(&[0.0, 0.25, 0.5, 0.75, 1.0], params).render(),
        "e10" => threshold_ablation(params).render(),
        other => return Err(format!("unknown experiment '{other}' (e5..e10)")),
    };
    print!("{rendered}");
    Ok(())
}

/// Parse a `--threads`-shaped flag, rejecting 0 with a clear message.
fn thread_flag(flags: &Flags, name: &str, default: usize) -> Result<usize, String> {
    let value: usize = flags.get_parsed(name, default)?;
    if value == 0 {
        return Err(format!("--{name} must be at least 1"));
    }
    Ok(value)
}

/// Clamp an over-sized thread count to what the workload can actually
/// use. An explicitly passed flag is clamped loudly on stderr; a
/// default is adjusted silently (defaults are a convenience, not a
/// user statement about the corpus).
fn clamp_with_warning(
    value: usize,
    available: usize,
    explicit: bool,
    flag: &str,
    unit: &str,
) -> usize {
    let available = available.max(1);
    if value > available {
        if explicit {
            eprintln!(
                "warning: {flag} {value} exceeds the {available} {unit}; clamping to {available}"
            );
        }
        return available;
    }
    value
}

fn cmd_scenario(action: &str, flags: &Flags) -> Result<(), String> {
    let dir = flags.get("dir").unwrap_or("scenarios");
    match action {
        "list" => {
            let corpus = load_dir(Path::new(dir)).map_err(|e| e.to_string())?;
            if corpus.is_empty() {
                println!("no scenarios in {dir}/");
                return Ok(());
            }
            println!(
                "{:<28} {:>9} {:>5} {:>7} {:<12} description",
                "name", "consumers", "days", "res", "extractor"
            );
            for s in &corpus {
                println!(
                    "{:<28} {:>9} {:>5} {:>6}m {:<12} {}",
                    s.name,
                    s.workload.consumers(),
                    s.days,
                    s.resolution_min,
                    s.extractor.label(),
                    s.description
                );
            }
            Ok(())
        }
        "run" => {
            let selected: Vec<Scenario> = if flags.get("all").is_some() {
                load_dir(Path::new(dir)).map_err(|e| e.to_string())?
            } else if let Some(name) = flags.get("name") {
                // Load only the requested spec (file stem == scenario
                // name by corpus convention), so one broken unrelated
                // file cannot block a valid scenario from running.
                let path = Path::new(dir).join(format!("{name}.json"));
                if !path.is_file() {
                    return Err(format!("no scenario named '{name}' in {dir}/"));
                }
                vec![load_file(&path).map_err(|e| e.to_string())?]
            } else {
                return Err("scenario run needs --all or --name NAME".into());
            };
            if selected.is_empty() {
                return Err(format!("no scenarios in {dir}/ — nothing to run"));
            }
            // Both thread counts are validated here, at the CLI layer,
            // so a bad value gets a message instead of a silent clamp
            // deep inside the runner: zero is an error, and anything
            // beyond what the corpus/fleet can use is clamped loudly.
            let threads = thread_flag(flags, "threads", 4)?;
            let consumer_threads = thread_flag(flags, "consumer-threads", 1)?;
            let threads = clamp_with_warning(
                threads,
                selected.len(),
                flags.get("threads").is_some(),
                "--threads",
                "scenario(s)",
            );
            let largest_fleet = selected
                .iter()
                .map(|s| s.workload.consumers())
                .max()
                .unwrap_or(1);
            let consumer_threads = clamp_with_warning(
                consumer_threads,
                largest_fleet,
                flags.get("consumer-threads").is_some(),
                "--consumer-threads",
                "consumers in the largest workload",
            );
            let json_mode = flags.get("json").is_some();
            let runner =
                ScenarioRunner::with_threads(threads).with_consumer_threads(consumer_threads);
            let results = runner.run_all(&selected);
            let mut failures = Vec::new();
            let mut reports = Vec::new();
            for (scenario, result) in selected.iter().zip(results) {
                match result {
                    Ok(outcome) => {
                        let line =
                            format!("{} [{} ms]", outcome.report.summary(), outcome.wall_time_ms);
                        // With --json, stdout carries only the JSON
                        // array so it pipes cleanly into jq and co.
                        if json_mode {
                            eprintln!("{line}");
                        } else {
                            println!("{line}");
                        }
                        reports.push(outcome.report);
                    }
                    Err(e) => failures.push(format!("{}: {e}", scenario.name)),
                }
            }
            if json_mode {
                let json = serde_json::to_string_pretty(&reports)
                    .map_err(|e| format!("serialise reports: {e}"))?;
                println!("{json}");
            }
            if failures.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "{} scenario(s) failed:\n  {}",
                    failures.len(),
                    failures.join("\n  ")
                ))
            }
        }
        other => Err(format!("unknown scenario action '{other}' (list|run)")),
    }
}

fn cmd_dataset(action: &str, flags: &Flags) -> Result<(), String> {
    match action {
        "export" => cmd_dataset_export(flags),
        "inspect" => cmd_dataset_inspect(flags),
        "compact" => cmd_dataset_compact(flags),
        "ingest" => cmd_dataset_ingest(flags),
        other => Err(format!(
            "unknown dataset action '{other}' (export|inspect|compact|ingest)"
        )),
    }
}

fn cmd_dataset_export(flags: &Flags) -> Result<(), String> {
    let spec = flags
        .get("scenario")
        .ok_or("dataset export needs --scenario FILE")?;
    let out = flags.get("out").ok_or("dataset export needs --out DIR")?;
    let scenario = load_file(Path::new(spec)).map_err(|e| e.to_string())?;
    // FXM3 is the default: the same per-chunk statistics + footer
    // index as FXM2, with payloads XOR-compressed losslessly, so the
    // exported dataset supports ranged reads and pushdown queries on a
    // smaller file. `fxm2` keeps uncompressed payloads, `fxm1` is the
    // legacy escape hatch, `csv` the readable one.
    let codec = match flags.get("codec").unwrap_or("fxm3") {
        "csv" => SeriesCodec::Csv,
        "fxm3" => SeriesCodec::BinaryV3,
        "binary" | "fxm" | "fxm2" => SeriesCodec::Binary,
        "fxm1" => SeriesCodec::BinaryV1,
        other => return Err(format!("unknown codec '{other}' (fxm3|fxm2|fxm1|csv)")),
    };
    let mut degradation = Degradation::default();
    if let Some(raw) = flags.get("resolution-min") {
        degradation.resolution_min = Some(
            raw.parse()
                .map_err(|_| format!("invalid value '{raw}' for --resolution-min"))?,
        );
    }
    degradation.noise_std = flags.get_parsed("noise", degradation.noise_std)?;
    degradation.gap_rate = flags.get_parsed("gap-rate", degradation.gap_rate)?;
    degradation.mean_gap_len = flags.get_parsed("mean-gap-len", degradation.mean_gap_len)?;
    degradation.anomaly_rate = flags.get_parsed("anomaly-rate", degradation.anomaly_rate)?;
    degradation.anomaly_factor = flags.get_parsed("anomaly-factor", degradation.anomaly_factor)?;
    degradation.anomaly_len = flags.get_parsed("anomaly-len", degradation.anomaly_len)?;
    degradation.quantize_kwh = flags.get_parsed("quantize-kwh", degradation.quantize_kwh)?;
    let seed = flags
        .get("seed")
        .map(|raw| {
            raw.parse::<u64>()
                .map_err(|_| format!("invalid value '{raw}' for --seed"))
        })
        .transpose()?;
    let shard_capacity = flags
        .get("shard-capacity")
        .map(|raw| {
            let n: usize = raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for --shard-capacity"))?;
            if n == 0 {
                return Err("--shard-capacity must be at least 1".to_string());
            }
            Ok(n)
        })
        .transpose()?;
    let options = ExportOptions {
        degradation,
        codec,
        seed,
        include_truth: flags.get("no-truth").is_none(),
        shard_capacity,
    };
    let summary = flextract::scenario::export_dataset(&scenario, Path::new(out), &options)
        .map_err(|e| e.to_string())?;
    let layout = match shard_capacity {
        None => String::new(),
        Some(c) => format!(", sharded at {c} consumers/shard"),
    };
    println!(
        "exported `{}`: {} consumers × {} intervals @ {} min → {} ({} gaps injected{layout})",
        scenario.name,
        summary.consumers,
        summary.intervals,
        summary.resolution_min,
        summary.dir.display(),
        summary.gap_count
    );
    Ok(())
}

fn cmd_dataset_compact(flags: &Flags) -> Result<(), String> {
    let dir = flags
        .get("dataset")
        .ok_or("dataset compact needs --dataset DIR")?;
    let summary = flextract::dataset::compact(Path::new(dir)).map_err(|e| e.to_string())?;
    println!(
        "compacted {dir}: {} consumer(s), {} shard(s) → {} shard(s) at {} consumers/shard",
        summary.consumers, summary.shards_before, summary.shards_after, summary.root.shard_capacity
    );
    Ok(())
}

fn cmd_dataset_inspect(flags: &Flags) -> Result<(), String> {
    let dir = flags
        .get("dataset")
        .ok_or("dataset inspect needs --dataset DIR")?;
    let ds = Dataset::open(Path::new(dir)).map_err(|e| e.to_string())?;
    println!(
        "{}: {} consumers × {} intervals @ {} min from {} ({} codec) — {}",
        ds.name(),
        ds.len(),
        ds.intervals(),
        ds.resolution_min(),
        ds.start_str(),
        ds.codec().label(),
        ds.description()
    );
    if let Some(src) = ds.source_scenario() {
        println!(
            "  exported from scenario `{src}` (degradation seed {})",
            ds.seed().map_or("?".to_string(), |s| s.to_string())
        );
    }
    let truth_suffix = |c: &flextract::dataset::ConsumerEntry| {
        if c.truth_total.is_some() {
            ", carries ground truth"
        } else {
            ""
        }
    };
    // `--consumer N`: one consumer's summary line, any layout. An
    // out-of-range index surfaces the store's typed error, which names
    // the valid range and the dataset directory.
    if let Some(raw) = flags.get("consumer") {
        let idx: usize = raw
            .parse()
            .map_err(|_| format!("invalid value '{raw}' for --consumer"))?;
        let entry = ds.consumer_entry(idx).map_err(|e| e.to_string())?;
        let (agg, report) = ds
            .consumer_aggregates(idx, &Scan::new())
            .map_err(|e| e.to_string())?;
        println!(
            "  [{idx}] {} ({:?}): {} gap(s){} — {:.2} kWh observed, min {} max {} per interval \
             ({}/{} chunks from statistics alone)",
            entry.id,
            entry.kind,
            agg.gaps,
            truth_suffix(&entry),
            agg.sum_kwh,
            agg.min.map_or("-".to_string(), |v| format!("{v:.3}")),
            agg.max.map_or("-".to_string(), |v| format!("{v:.3}")),
            report.chunks_stats_only,
            report.chunks_total,
        );
        return Ok(());
    }
    // A sharded store summarises from the root roll-ups alone: no
    // shard manifest and no series file is opened, so inspecting a
    // million-consumer store stays O(shards).
    if let Some(root) = ds.root() {
        println!(
            "  sharded store: {} shard(s) at {} consumers/shard capacity",
            root.shards.len(),
            root.shard_capacity
        );
        println!(
            "  {:>5} {:>9} {:>9} {:>8} {:>12} {:>8} {:>8}",
            "shard", "consumers", "w/ truth", "gaps", "sum kWh", "min", "max"
        );
        for s in &root.shards {
            println!(
                "  {:>5} {:>9} {:>9} {:>8} {:>12.2} {:>8} {:>8}",
                s.dir_name(),
                s.consumers,
                s.with_truth,
                s.gap_count,
                s.sum_kwh,
                s.min_kwh.map_or("-".to_string(), |v| format!("{v:.3}")),
                s.max_kwh.map_or("-".to_string(), |v| format!("{v:.3}")),
            );
        }
        println!("  (roll-ups only — no shard was opened; use --consumer N for one series)");
        return Ok(());
    }
    let m = ds.manifest().ok_or("unreachable: legacy layout")?;
    if matches!(m.codec, SeriesCodec::Binary | SeriesCodec::BinaryV3) {
        // FXM2/FXM3: per-consumer stats are *streamed*, one consumer
        // at a time, straight from the chunk statistics headers — no
        // payload ever decodes and nothing is materialized. Each line
        // also carries the consumer's on-disk footprint and the codec
        // the file actually sniffs as (legacy files keep loading by
        // magic whatever the manifest declares).
        let mut stat_only_chunks = 0usize;
        let mut total_chunks = 0usize;
        for (i, c) in m.consumers.iter().enumerate() {
            let (agg, report) = ds
                .consumer_aggregates(i, &Scan::new())
                .map_err(|e| e.to_string())?;
            stat_only_chunks += report.chunks_stats_only;
            total_chunks += report.chunks_total;
            println!(
                "  [{i}] {} ({:?}): {} gap(s){} — {:.2} kWh observed, min {} max {} per \
                 interval [{} B on disk, {}]",
                c.id,
                c.kind,
                agg.gaps,
                truth_suffix(c),
                agg.sum_kwh,
                agg.min.map_or("-".to_string(), |v| format!("{v:.3}")),
                agg.max.map_or("-".to_string(), |v| format!("{v:.3}")),
                report.bytes_read,
                sniffed_codec_label(&ds, &c.measured),
            );
        }
        println!(
            "  {stat_only_chunks}/{total_chunks} chunks summarised from statistics alone \
             (no payload decode)"
        );
    } else {
        // Stat-less codecs would need a full decode per consumer just
        // to print a summary line; answer from the manifest instead
        // and leave per-interval statistics to `flextract query`.
        for (i, c) in m.consumers.iter().enumerate() {
            println!(
                "  [{i}] {} ({:?}): {} gap(s){}",
                c.id,
                c.kind,
                c.gap_count,
                truth_suffix(c)
            );
        }
        println!(
            "  (per-interval statistics need the fxm3 or fxm2 codec; this {} dataset is \
             summarised from the manifest — use `flextract query` to scan it)",
            m.codec.label()
        );
    }
    Ok(())
}

/// The codec a series file actually carries, sniffed from its first
/// bytes (reads 4 bytes — never the payload). Falls back to "csv" for
/// non-binary files and "?" when the file cannot be read.
fn sniffed_codec_label(ds: &Dataset, file: &str) -> &'static str {
    let path = ds.dir().join(file);
    let mut magic = [0u8; 4];
    let ok = std::fs::File::open(&path)
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut magic))
        .is_ok();
    if !ok {
        return "?";
    }
    match flextract::dataset::codec::sniff(&magic) {
        Some(flextract::dataset::codec::FxmVersion::V1) => "fxm1",
        Some(flextract::dataset::codec::FxmVersion::V2) => "fxm2",
        Some(flextract::dataset::codec::FxmVersion::V3) => "fxm3",
        None => "csv",
    }
}

fn cmd_dataset_ingest(flags: &Flags) -> Result<(), String> {
    let dir = flags
        .get("dataset")
        .ok_or("dataset ingest needs --dataset DIR")?;
    let fill = match flags.get("fill").unwrap_or("linear") {
        "linear" => FillStrategy::Linear,
        "previous" => FillStrategy::Previous,
        "seasonal" => FillStrategy::SeasonalDaily,
        "zero" => FillStrategy::Zero,
        other => {
            return Err(format!(
                "unknown fill strategy '{other}' (linear|previous|seasonal|zero)"
            ))
        }
    };
    let cfg = CleaningConfig {
        fill,
        screen_anomalies: flags.get("screen-anomalies").is_some(),
        ..CleaningConfig::default()
    };
    let ds = Dataset::open(Path::new(dir)).map_err(|e| e.to_string())?;
    let indices: Vec<usize> = match flags.get("consumer") {
        Some(raw) => {
            let idx: usize = raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for --consumer"))?;
            if idx >= ds.len() {
                return Err(format!(
                    "--consumer {idx} out of range (dataset has {} consumers)",
                    ds.len()
                ));
            }
            vec![idx]
        }
        None => (0..ds.len()).collect(),
    };
    for idx in indices {
        let record = ds.consumer(idx).map_err(|e| e.to_string())?;
        let id = record.entry.id.clone();
        let (series, report) =
            flextract::dataset::ingest::clean(record.measured, &cfg).map_err(|e| e.to_string())?;
        println!(
            "  [{idx}] {id}: {} gap(s) filled, {} anomaly run(s) screened \
             ({} interval(s), {:.3} kWh adjusted) → {:.2} kWh clean",
            report.gaps_filled,
            report.anomalies_screened,
            report.anomalous_intervals,
            report.screened_kwh,
            series.total_energy()
        );
    }
    Ok(())
}

/// One consumer's row in a `flextract query` result.
#[derive(Serialize)]
struct QueryRow {
    consumer: String,
    intervals: usize,
    observed: usize,
    gaps: usize,
    sum_kwh: f64,
    mean_kwh: Option<f64>,
    min_kwh: Option<f64>,
    max_kwh: Option<f64>,
    peak_at: Option<String>,
    peak_kwh: Option<f64>,
    chunks_total: usize,
    chunks_decoded: usize,
    chunks_skipped: usize,
    chunks_stats_only: usize,
    bytes_read: usize,
    bytes_decoded: usize,
    bytes_read_index: usize,
    cache_hits: usize,
    bytes_saved: usize,
}

/// Parse `--from`/`--to` into a time slice over `[default_from,
/// default_to)`; errors name the offending flag.
fn parse_slice(
    flags: &Flags,
    default_from: Timestamp,
    default_to: Timestamp,
) -> Result<TimeRange, String> {
    let parse = |name: &str, default: Timestamp| -> Result<Timestamp, String> {
        match flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("invalid value '{raw}' for --{name}: {e}")),
        }
    };
    let from = parse("from", default_from)?;
    let to = parse("to", default_to)?;
    TimeRange::new(from, to)
        .map_err(|_| format!("--to {to} lies before --from {from} (empty query range)"))
}

/// `flextract analyze`: run the workspace lint engine and report
/// structured findings. Exit status is the gate — unsuppressed
/// findings exit 1; a failure of the analysis itself (unreadable file,
/// malformed config) exits 2 with a message naming the path.
fn cmd_analyze(flags: &Flags) -> Result<(), Failure> {
    let internal = |msg: String| Failure {
        code: 2,
        msg,
        usage: false,
    };
    let root = Path::new(flags.get("root").unwrap_or("."));
    let allowlist = match flags.get("config") {
        Some(path) => flextract::analyze::Allowlist::load(Path::new(path)).map_err(internal)?,
        None => flextract::analyze::load_allowlist(root).map_err(internal)?,
    };
    let opts = flextract::analyze::AnalyzeOptions {
        cache_path: if flags.get("no-cache").is_some() {
            None
        } else {
            Some(flextract::analyze::default_cache_path(root))
        },
    };
    let analysis =
        flextract::analyze::analyze_tree_with(root, &allowlist, &opts).map_err(internal)?;
    if let Some(path) = flags.get("sarif") {
        std::fs::write(path, analysis.render_sarif())
            .map_err(|e| internal(format!("cannot write {path}: {e}")))?;
    }
    if flags.get("json").is_some() {
        print!("{}", analysis.render_json());
    } else {
        print!("{}", analysis.render_text());
    }
    if analysis.is_clean() {
        Ok(())
    } else {
        Err(Failure {
            code: 1,
            usage: false,
            msg: format!(
                "analyze: {} unsuppressed finding(s) — fix them or add a justified \
                 suppression to analyze.toml",
                analysis.findings.len()
            ),
        })
    }
}

fn cmd_query(flags: &Flags) -> Result<(), String> {
    match (flags.get("dataset"), flags.get("offers")) {
        (Some(_), Some(_)) => Err("query takes --dataset DIR or --offers FILE, not both".into()),
        (Some(dir), None) => query_dataset(dir, flags),
        (None, Some(file)) => query_offers(file, flags),
        (None, None) => Err("query needs --dataset DIR or --offers FILE".into()),
    }
}

/// Parse the `--where` predicate, naming the flag in errors.
fn parse_predicate(raw: &str) -> Result<Predicate, String> {
    let invalid = |what: String| {
        format!("invalid value '{raw}' for --where: {what} (gaps|min-below:F|max-above:F)")
    };
    if raw == "gaps" {
        return Ok(Predicate::HasGaps);
    }
    let threshold = |rest: &str| -> Result<f64, String> {
        let v: f64 = rest
            .parse()
            .map_err(|_| invalid(format!("threshold `{rest}` is not a number")))?;
        if !v.is_finite() {
            return Err(invalid("threshold must be finite".into()));
        }
        Ok(v)
    };
    if let Some(rest) = raw.strip_prefix("min-below:") {
        return Ok(Predicate::MinBelow(threshold(rest)?));
    }
    if let Some(rest) = raw.strip_prefix("max-above:") {
        return Ok(Predicate::MaxAbove(threshold(rest)?));
    }
    Err(invalid("unknown predicate".into()))
}

fn query_dataset(dir: &str, flags: &Flags) -> Result<(), String> {
    let want_agg = flags.get("agg").unwrap_or("stats");
    if !["stats", "sum", "mean", "peak", "gaps"].contains(&want_agg) {
        return Err(format!(
            "invalid value '{want_agg}' for --agg (stats|sum|mean|peak|gaps)"
        ));
    }
    let predicate = flags.get("where").map(parse_predicate).transpose()?;
    let resample = flags
        .get("resolution-min")
        .map(|raw| -> Result<Resolution, String> {
            let minutes: i64 = raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for --resolution-min"))?;
            Resolution::from_minutes(minutes)
                .map_err(|e| format!("invalid value '{raw}' for --resolution-min: {e}"))
        })
        .transpose()?;
    if resample.is_some() && predicate.is_some() {
        return Err(
            "--where cannot combine with --resolution-min (a filtered selection \
                    is not a contiguous series to resample)"
                .into(),
        );
    }

    let repeat: usize = flags.get_parsed("repeat", 1)?;
    if repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }

    // All dataset queries run through the process-resident handle:
    // indexes are parsed once per process, and repeat passes (or later
    // queries in the same process) reuse cached frames and decoded
    // chunk payloads. Answers are bit-identical to a fresh open by
    // construction.
    let store = ResidentStore::shared(Path::new(dir)).map_err(|e| e.to_string())?;
    let ds = store.dataset().map_err(|e| e.to_string())?;
    let ds_start = ds.start_timestamp().map_err(|e| e.to_string())?;
    let ds_end = ds_start + Duration::minutes(ds.intervals() as i64 * ds.resolution_min());
    let slice = parse_slice(flags, ds_start, ds_end)?;
    let mut scan = Scan::new().time_slice(slice);
    if let Some(p) = predicate {
        scan = scan.with_predicate(p);
    }

    // An out-of-range index is *not* rejected here: the store's typed
    // error names the valid range and the dataset directory, which is
    // strictly more useful than anything the CLI could synthesise.
    let consumer_flag: Option<usize> = flags
        .get("consumer")
        .map(|raw| {
            raw.parse()
                .map_err(|_| format!("invalid value '{raw}' for --consumer"))
        })
        .transpose()?;

    if ds.is_sharded() && consumer_flag.is_none() {
        return query_sharded_fleet(
            &store,
            &scan,
            slice,
            want_agg,
            resample.is_some(),
            repeat,
            flags,
        );
    }

    let indices: Vec<usize> = match consumer_flag {
        Some(idx) => vec![idx],
        None => (0..ds.len()).collect(),
    };

    let mut rows = Vec::with_capacity(indices.len());
    let mut scratch = Vec::new();
    for pass in 0..repeat {
        rows.clear();
        for &idx in &indices {
            let id = ds.consumer_entry(idx).map_err(|e| e.to_string())?.id;
            let idx_bytes = ds.consumer_index_bytes(idx).map_err(|e| e.to_string())?;
            let (agg, report, resampled) = match resample {
                None => {
                    let (agg, mut report) = store
                        .consumer_aggregates_with(idx, &scan, &mut scratch)
                        .map_err(|e| e.to_string())?;
                    // The resident handle was opened by this process,
                    // so the first pass genuinely paid the index
                    // parse: charge it as read there; later passes
                    // keep reporting it saved.
                    if pass == 0 && report.bytes_read_index == 0 {
                        report.bytes_saved = report.bytes_saved.saturating_sub(idx_bytes);
                        report.bytes_read_index = idx_bytes;
                    }
                    (agg, report, None)
                }
                Some(target) => {
                    // Materialization reads through the cached frame
                    // but keeps its own counters (a resampled series
                    // has no chunk-level reuse to account).
                    let frame = store.consumer_frame(idx).map_err(|e| e.to_string())?;
                    let (series, mut report) = scan
                        .materialize_resampled(&frame, target)
                        .map_err(|e| e.to_string())?;
                    if pass == 0 {
                        report.bytes_read_index = idx_bytes;
                    } else {
                        report.bytes_saved += idx_bytes;
                    }
                    (
                        Aggregates::from_values(series.values()),
                        report,
                        Some(series),
                    )
                }
            };
            let peak = if want_agg == "peak" {
                match &resampled {
                    // The audit row keeps the aggregate scan's counters;
                    // the peak pass is a second scan with its own (small)
                    // decode cost, not folded in.
                    None => {
                        let frame = store.consumer_frame(idx).map_err(|e| e.to_string())?;
                        scan.peak(&frame).map_err(|e| e.to_string())?.0
                    }
                    Some(series) => series
                        .values()
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| !v.is_nan())
                        .fold(None::<(usize, f64)>, |best, (i, &v)| match best {
                            Some((_, bv)) if v <= bv => best,
                            _ => Some((i, v)),
                        })
                        .map(|(i, v)| (series.timestamp_of(i), v)),
                }
            } else {
                None
            };
            rows.push(QueryRow {
                consumer: id,
                intervals: agg.intervals,
                observed: agg.observed,
                gaps: agg.gaps,
                sum_kwh: agg.sum_kwh,
                mean_kwh: agg.mean(),
                min_kwh: agg.min,
                max_kwh: agg.max,
                peak_at: peak.map(|(t, _)| t.to_string()),
                peak_kwh: peak.map(|(_, v)| v),
                chunks_total: report.chunks_total,
                chunks_decoded: report.chunks_decoded,
                chunks_skipped: report.chunks_skipped_slice + report.chunks_skipped_stats,
                chunks_stats_only: report.chunks_stats_only,
                bytes_read: report.bytes_read,
                bytes_decoded: report.bytes_decoded,
                bytes_read_index: report.bytes_read_index,
                cache_hits: report.cache_hits,
                bytes_saved: report.bytes_saved,
            });
        }
    }

    if flags.get("json").is_some() {
        let json = serde_json::to_string_pretty(&rows)
            .map_err(|e| format!("serialise query rows: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    // The chosen aggregate selects the printed columns (JSON rows
    // always carry every field — scripts pick what they need).
    println!("query over {slice} ({want_agg}):");
    let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.3}"));
    // The audit column pairs chunk counts with the payload bytes the
    // decodes actually touched — 0 B whenever statistics answered.
    let audit = |r: &QueryRow| {
        format!(
            "{}/{}/{} ({} B)",
            r.chunks_decoded, r.chunks_skipped, r.chunks_stats_only, r.bytes_decoded
        )
    };
    match want_agg {
        "sum" => {
            println!(
                "{:<10} {:>9} {:>12} {:>22}",
                "consumer", "intervals", "sum kWh", "chunks dec/skip/stat (B)"
            );
            for r in &rows {
                println!(
                    "{:<10} {:>9} {:>12.3} {:>22}",
                    r.consumer,
                    r.intervals,
                    r.sum_kwh,
                    audit(r)
                );
            }
        }
        "mean" => {
            println!(
                "{:<10} {:>9} {:>9} {:>22}",
                "consumer", "observed", "mean", "chunks dec/skip/stat (B)"
            );
            for r in &rows {
                println!(
                    "{:<10} {:>9} {:>9} {:>22}",
                    r.consumer,
                    r.observed,
                    fmt_opt(r.mean_kwh),
                    audit(r)
                );
            }
        }
        "gaps" => {
            println!(
                "{:<10} {:>9} {:>6} {:>7} {:>22}",
                "consumer", "intervals", "gaps", "gap %", "chunks dec/skip/stat (B)"
            );
            for r in &rows {
                let pct = if r.intervals > 0 {
                    100.0 * r.gaps as f64 / r.intervals as f64
                } else {
                    0.0
                };
                println!(
                    "{:<10} {:>9} {:>6} {:>6.1}% {:>22}",
                    r.consumer,
                    r.intervals,
                    r.gaps,
                    pct,
                    audit(r)
                );
            }
        }
        // "stats" and "peak" print the full row (peak adds its line).
        _ => {
            println!(
                "{:<10} {:>9} {:>9} {:>6} {:>12} {:>9} {:>8} {:>8} {:>22}",
                "consumer",
                "intervals",
                "observed",
                "gaps",
                "sum kWh",
                "mean",
                "min",
                "max",
                "chunks dec/skip/stat (B)"
            );
            for r in &rows {
                println!(
                    "{:<10} {:>9} {:>9} {:>6} {:>12.3} {:>9} {:>8} {:>8} {:>22}",
                    r.consumer,
                    r.intervals,
                    r.observed,
                    r.gaps,
                    r.sum_kwh,
                    fmt_opt(r.mean_kwh),
                    fmt_opt(r.min_kwh),
                    fmt_opt(r.max_kwh),
                    audit(r),
                );
                if let (Some(at), Some(kwh)) = (&r.peak_at, r.peak_kwh) {
                    println!("{:<10}   peak {kwh:.3} kWh at {at}", "");
                }
            }
        }
    }
    let decoded: usize = rows.iter().map(|r| r.chunks_decoded).sum();
    let total: usize = rows.iter().map(|r| r.chunks_total).sum();
    let bytes_read: usize = rows.iter().map(|r| r.bytes_read).sum();
    let bytes_decoded: usize = rows.iter().map(|r| r.bytes_decoded).sum();
    let bytes_read_index: usize = rows.iter().map(|r| r.bytes_read_index).sum();
    let cache_hits: usize = rows.iter().map(|r| r.cache_hits).sum();
    let bytes_saved: usize = rows.iter().map(|r| r.bytes_saved).sum();
    println!(
        "{} consumer(s); decoded {decoded}/{total} chunks ({:.0} % skipped); \
         read {bytes_read} B + {bytes_read_index} B of index, \
         decoded {bytes_decoded} B of payload; \
         {cache_hits} cache hit(s), {bytes_saved} B saved",
        rows.len(),
        if total > 0 {
            100.0 * (1.0 - decoded as f64 / total as f64)
        } else {
            0.0
        }
    );
    Ok(())
}

/// Fleet-level result row for a query over a sharded store.
#[derive(Serialize)]
struct FleetQueryRow {
    consumers: usize,
    intervals: usize,
    observed: usize,
    gaps: usize,
    sum_kwh: f64,
    mean_kwh: Option<f64>,
    min_kwh: Option<f64>,
    max_kwh: Option<f64>,
    shards_total: usize,
    shards_pruned: usize,
    shards_stats_only: usize,
    shards_opened: usize,
    chunks_total: usize,
    chunks_decoded: usize,
    bytes_read: usize,
    bytes_decoded: usize,
    bytes_read_index: usize,
    cache_hits: usize,
    bytes_saved: usize,
}

/// Fleet mode: a query over a sharded store without `--consumer`
/// answers from shard roll-ups where it can, opens only the shards the
/// statistics cannot exclude, and merges in shard-index order so the
/// output is byte-identical at any `--threads` value. Repeat passes
/// run against the same resident snapshot, so parsed shard manifests
/// (and opened shard handles) are reused; the printed pass moves the
/// index bytes it did not re-read into `bytes_saved`.
fn query_sharded_fleet(
    store: &ResidentStore,
    scan: &Scan,
    slice: TimeRange,
    want_agg: &str,
    resample: bool,
    repeat: usize,
    flags: &Flags,
) -> Result<(), String> {
    if want_agg == "peak" {
        return Err(
            "--agg peak needs --consumer N on a sharded store (the fleet \
             roll-up keeps no per-interval values to locate a peak in)"
                .into(),
        );
    }
    if resample {
        return Err(
            "--resolution-min needs --consumer N on a sharded store (only a \
             single series materializes for resampling)"
                .into(),
        );
    }
    let threads = thread_flag(flags, "threads", 4)?;
    // One revalidated snapshot for every pass: each pass answers from
    // a single generation, and warm passes reuse the parsed indexes.
    let ds = store.dataset().map_err(|e| e.to_string())?;
    let n = ds.shard_count();
    let mut agg = Aggregates::default();
    let mut report = ScanReport::default();
    for pass in 0..repeat {
        agg = Aggregates::default();
        report = ScanReport::default();
        // Each worker scans whole shards with its own decode scratch;
        // the consume callback runs on this thread in strict shard
        // order, so the merge association — and therefore every float
        // — is the same one `fleet_aggregates` produces serially.
        ordered_parallel_map(
            n,
            threads,
            |k| {
                let mut scratch = Vec::new();
                ds.shard_aggregates(k, scan, &mut scratch)
                    .map_err(|e| e.to_string())
            },
            |_, (a, r)| {
                agg.merge(&a);
                report.absorb(&r);
                Ok(())
            },
        )?;
        // Shard scans charge the manifests they consulted; the root
        // index is charged once per query on top. Warm passes did not
        // re-read any of it — the bytes move to the saved column.
        let index_total = report.bytes_read_index + ds.index_bytes();
        if pass == 0 {
            report.bytes_read_index = index_total;
        } else {
            report.bytes_read_index = 0;
            report.bytes_saved += index_total;
            report.cache_hits += 1;
        }
    }
    let row = FleetQueryRow {
        consumers: ds.len(),
        intervals: agg.intervals,
        observed: agg.observed,
        gaps: agg.gaps,
        sum_kwh: agg.sum_kwh,
        mean_kwh: agg.mean(),
        min_kwh: agg.min,
        max_kwh: agg.max,
        shards_total: report.shards_total,
        shards_pruned: report.shards_pruned,
        shards_stats_only: report.shards_stats_only,
        shards_opened: report.shards_opened(),
        chunks_total: report.chunks_total,
        chunks_decoded: report.chunks_decoded,
        bytes_read: report.bytes_read,
        bytes_decoded: report.bytes_decoded,
        bytes_read_index: report.bytes_read_index,
        cache_hits: report.cache_hits,
        bytes_saved: report.bytes_saved,
    };
    if flags.get("json").is_some() {
        let json = serde_json::to_string_pretty(&row)
            .map_err(|e| format!("serialise fleet query row: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.3}"));
    println!("fleet query over {slice} ({want_agg}):");
    println!(
        "{:<10} {:>9} {:>9} {:>6} {:>14} {:>9} {:>8} {:>8}",
        "consumers", "intervals", "observed", "gaps", "sum kWh", "mean", "min", "max"
    );
    println!(
        "{:<10} {:>9} {:>9} {:>6} {:>14.3} {:>9} {:>8} {:>8}",
        row.consumers,
        row.intervals,
        row.observed,
        row.gaps,
        row.sum_kwh,
        fmt_opt(row.mean_kwh),
        fmt_opt(row.min_kwh),
        fmt_opt(row.max_kwh),
    );
    let pruned_pct = if row.shards_total > 0 {
        100.0 * (row.shards_total - row.shards_opened) as f64 / row.shards_total as f64
    } else {
        0.0
    };
    println!(
        "opened {}/{} shard(s) ({pruned_pct:.0} % answered without opening: \
         {} pruned, {} stats-only); decoded {}/{} chunks; \
         read {} B + {} B of index, decoded {} B of payload; \
         {} cache hit(s), {} B saved",
        row.shards_opened,
        row.shards_total,
        row.shards_pruned,
        row.shards_stats_only,
        row.chunks_decoded,
        row.chunks_total,
        row.bytes_read,
        row.bytes_read_index,
        row.bytes_decoded,
        row.cache_hits,
        row.bytes_saved,
    );
    Ok(())
}

/// Summary of an offer-set query.
#[derive(Serialize)]
struct OfferQuerySummary {
    offers: usize,
    selected: usize,
    energy_min_kwh: f64,
    energy_max_kwh: f64,
    energy_flexibility_kwh: f64,
    time_flexibility_h: f64,
    earliest_start: Option<String>,
    latest_end: Option<String>,
}

fn query_offers(file: &str, flags: &Flags) -> Result<(), String> {
    if flags.get("agg").is_some() || flags.get("where").is_some() {
        return Err(
            "--agg/--where apply to --dataset queries only (an offer set has \
                    no interval series to aggregate)"
                .into(),
        );
    }
    let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
    let offers: Vec<FlexOffer> = serde_json::from_str(&text)
        .map_err(|e| format!("{file}: not a flex-offer JSON array: {e}"))?;
    let far_past = Timestamp::from_minutes(i64::MIN / 4);
    let far_future = Timestamp::from_minutes(i64::MAX / 4);
    let slice = parse_slice(flags, far_past, far_future)?;
    let selected: Vec<&FlexOffer> = offers
        .iter()
        .filter(|o| o.execution_window().overlaps(slice))
        .collect();
    let mut summary = OfferQuerySummary {
        offers: offers.len(),
        selected: selected.len(),
        energy_min_kwh: 0.0,
        energy_max_kwh: 0.0,
        energy_flexibility_kwh: 0.0,
        time_flexibility_h: 0.0,
        earliest_start: None,
        latest_end: None,
    };
    let mut earliest: Option<Timestamp> = None;
    let mut latest: Option<Timestamp> = None;
    for o in &selected {
        let energy = o.total_energy();
        summary.energy_min_kwh += energy.min;
        summary.energy_max_kwh += energy.max;
        summary.energy_flexibility_kwh += o.energy_flexibility();
        summary.time_flexibility_h += o.time_flexibility().as_hours_f64();
        earliest = Some(earliest.map_or(o.earliest_start(), |t| t.min(o.earliest_start())));
        latest = Some(latest.map_or(o.latest_end(), |t| t.max(o.latest_end())));
    }
    summary.earliest_start = earliest.map(|t| t.to_string());
    summary.latest_end = latest.map(|t| t.to_string());
    if flags.get("json").is_some() {
        let json = serde_json::to_string_pretty(&summary)
            .map_err(|e| format!("serialise offer summary: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    println!(
        "{}/{} offer(s) overlap the query window",
        summary.selected, summary.offers
    );
    println!(
        "  energy {:.3}..{:.3} kWh ({:.3} kWh flexible), {:.1} h total time flexibility",
        summary.energy_min_kwh,
        summary.energy_max_kwh,
        summary.energy_flexibility_kwh,
        summary.time_flexibility_h
    );
    if let (Some(a), Some(b)) = (&summary.earliest_start, &summary.latest_end) {
        println!("  execution span [{a} .. {b})");
    }
    Ok(())
}

/// Read a series from `.fxt` (binary codec) or `.csv`
/// (`interval_start,kwh` rows).
fn read_series(path: &Path) -> Result<TimeSeries, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    if bytes.starts_with(&codec::MAGIC) {
        return codec::decode(bytes.as_slice()).map_err(|e| format!("decode fxt: {e}"));
    }
    let text = String::from_utf8(bytes).map_err(|_| "CSV is not valid UTF-8".to_string())?;
    parse_csv_series(&text)
}

fn parse_csv_series(text: &str) -> Result<TimeSeries, String> {
    let mut rows: Vec<(Timestamp, f64)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("interval_start") {
            continue;
        }
        let (ts_part, kwh_part) = line
            .rsplit_once(',')
            .ok_or_else(|| format!("line {}: expected 'timestamp,kwh'", lineno + 1))?;
        let t: Timestamp = ts_part
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad timestamp: {e}", lineno + 1))?;
        let v: f64 = kwh_part
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad kWh value '{kwh_part}'", lineno + 1))?;
        rows.push((t, v));
    }
    if rows.len() < 2 {
        return Err("CSV needs at least two data rows".into());
    }
    let step = (rows[1].0 - rows[0].0).as_minutes();
    let resolution = Resolution::from_minutes(step)
        .map_err(|_| format!("rows are {step} min apart, which does not divide a day"))?;
    for (i, pair) in rows.windows(2).enumerate() {
        if (pair[1].0 - pair[0].0).as_minutes() != step {
            return Err(format!("row {}: series has gaps or uneven spacing", i + 2));
        }
    }
    TimeSeries::new(
        rows[0].0,
        resolution,
        rows.into_iter().map(|(_, v)| v).collect(),
    )
    .map_err(|e| format!("invalid series: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_pairs_and_reject_garbage() {
        let ok = Flags::parse(&["--days".into(), "7".into(), "--seed".into(), "1".into()]).unwrap();
        assert_eq!(ok.get("days"), Some("7"));
        assert_eq!(ok.get_parsed("seed", 0u64).unwrap(), 1);
        assert_eq!(ok.get_parsed("missing", 42i64).unwrap(), 42);
        assert!(ok.get_parsed::<u64>("days", 0).is_ok());
        assert!(Flags::parse(&["days".into()]).is_err());
        assert!(Flags::parse(&["--days".into()]).is_err());
        let bad = Flags::parse(&["--days".into(), "x".into()]).unwrap();
        assert!(bad.get_parsed::<i64>("days", 0).is_err());
    }

    #[test]
    fn csv_round_trip_through_parser() {
        let series = TimeSeries::new(
            "2013-03-18".parse().unwrap(),
            Resolution::MIN_15,
            vec![0.25, 0.5, 0.75],
        )
        .unwrap();
        let parsed = parse_csv_series(&series.to_csv()).unwrap();
        assert_eq!(parsed.start(), series.start());
        assert_eq!(parsed.resolution(), series.resolution());
        for (a, b) in parsed.values().iter().zip(series.values()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn csv_parser_rejects_malformed_input() {
        assert!(parse_csv_series("").is_err());
        assert!(parse_csv_series("interval_start,kwh\n2013-03-18 00:00,1.0").is_err()); // one row
        assert!(parse_csv_series("nonsense").is_err());
        // 7-min step.
        assert!(parse_csv_series("2013-03-18 00:00,1.0\n2013-03-18 00:07,1.0\n").is_err());
        // Gap in the middle.
        let gappy = "2013-03-18 00:00,1.0\n2013-03-18 00:15,1.0\n2013-03-18 01:00,1.0\n";
        assert!(parse_csv_series(gappy).is_err());
    }

    #[test]
    fn unknown_commands_error() {
        assert!(run(&["frobnicate".into()]).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&["experiment".into()]).is_err());
        assert!(run(&["experiment".into(), "e99".into()]).is_err());
        assert!(run(&["help".into()]).is_ok());
    }

    #[test]
    fn fig5_command_runs() {
        assert!(cmd_fig5().is_ok());
    }
}
