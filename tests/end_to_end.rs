//! Full-pipeline integration: simulate → extract (all six approaches)
//! → validate invariants → aggregate → schedule → disaggregate.

use flextract::agg::{aggregate_offers, schedule_offers, AggregationConfig, ScheduleConfig};
use flextract::appliance::Catalog;
use flextract::core::{
    BasicExtractor, ExtractionConfig, ExtractionInput, ExtractionOutput, FlexibilityExtractor,
    FrequencyBasedExtractor, MultiTariffExtractor, PeakExtractor, RandomExtractor,
    ScheduleBasedExtractor,
};
use flextract::eval::GroundTruthScore;
use flextract::flexoffer::FlexOffer;
use flextract::sim::{
    simulate_household, simulate_tariff_pair, simulate_wind_production, HouseholdArchetype,
    HouseholdConfig, TariffResponse, WindFarmConfig,
};
use flextract::time::{Duration, Resolution, TimeRange, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn horizon(days: i64) -> TimeRange {
    let start: Timestamp = "2013-03-18".parse().unwrap();
    TimeRange::starting_at(start, Duration::days(days)).unwrap()
}

/// Run every approach against one simulated household and return the
/// outputs that produced offers.
fn run_all(days: i64, seed: u64) -> (Vec<ExtractionOutput>, flextract::series::TimeSeries) {
    let cfg_h = HouseholdConfig::new(seed, HouseholdArchetype::FamilyWithChildren);
    let sim = simulate_household(&cfg_h, horizon(days));
    let market = sim.series_at(Resolution::MIN_15);
    let catalog = Catalog::extended();
    let cfg = ExtractionConfig::default();
    let mut outputs = Vec::new();

    for ex in [
        &RandomExtractor::new(cfg.clone()) as &dyn FlexibilityExtractor,
        &BasicExtractor::new(cfg.clone()),
        &PeakExtractor::new(cfg.clone()),
    ] {
        let out = ex
            .extract(
                &ExtractionInput::household(&market),
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap();
        out.check_invariants(&market).unwrap();
        outputs.push(out);
    }

    let (flat, multi) = simulate_tariff_pair(
        &cfg_h,
        horizon(days).shift(Duration::days(-days)),
        horizon(days),
        TariffResponse::overnight(0.9),
    );
    let reference = flat.series_at(Resolution::MIN_15);
    let observed = multi.series_at(Resolution::MIN_15);
    let out = MultiTariffExtractor::new(cfg.clone())
        .extract(
            &ExtractionInput::household(&observed).with_reference(&reference),
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
    out.check_invariants(&observed).unwrap();
    outputs.push(out);

    for ex in [
        &FrequencyBasedExtractor::new(cfg.clone()) as &dyn FlexibilityExtractor,
        &ScheduleBasedExtractor::new(cfg),
    ] {
        let out = ex
            .extract(
                &ExtractionInput::household(&market)
                    .with_fine_series(&sim.series)
                    .with_catalog(&catalog),
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap();
        out.check_invariants(&market).unwrap();
        outputs.push(out);
    }
    (outputs, market)
}

#[test]
fn every_approach_produces_valid_offers_and_accounting() {
    let (outputs, _) = run_all(7, 3);
    assert_eq!(outputs.len(), 6);
    let names: Vec<&str> = outputs.iter().map(|o| o.approach).collect();
    assert_eq!(
        names,
        vec![
            "random",
            "basic",
            "peak",
            "multi-tariff",
            "frequency",
            "schedule"
        ]
    );
    for out in &outputs {
        for offer in &out.flex_offers {
            offer
                .validate()
                .unwrap_or_else(|e| panic!("{}: invalid offer {}: {e}", out.approach, offer.id()));
        }
        assert!(
            out.modified_series.values().iter().all(|&v| v >= -1e-9),
            "{}: negative residual",
            out.approach
        );
    }
    // Everyone except the degenerate cases extracted something.
    for out in &outputs {
        assert!(
            out.extracted_energy() > 0.0,
            "{} extracted nothing over a family week",
            out.approach
        );
    }
}

#[test]
fn appliance_level_beats_household_level_on_ground_truth() {
    // The paper's central qualitative claim, measured (§4: appliance
    // approaches are "very realistic" vs §3's "less realistic
    // assumptions").
    let cfg_h = HouseholdConfig::new(9, HouseholdArchetype::FamilyWithChildren);
    let sim = simulate_household(&cfg_h, horizon(14));
    let market = sim.series_at(Resolution::MIN_15);
    let truth = sim.flexible_series_at(Resolution::MIN_15);
    let catalog = Catalog::extended();
    let cfg = ExtractionConfig::default();

    let random = RandomExtractor::new(cfg.clone())
        .extract(
            &ExtractionInput::household(&market),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
    let freq = FrequencyBasedExtractor::new(cfg)
        .extract(
            &ExtractionInput::household(&market)
                .with_fine_series(&sim.series)
                .with_catalog(&catalog),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();

    let s_random = GroundTruthScore::score(&random.extracted_series, &truth);
    let s_freq = GroundTruthScore::score(&freq.extracted_series, &truth);
    assert!(
        s_freq.f1() > s_random.f1() * 2.0,
        "frequency F1 {} should dwarf random F1 {}",
        s_freq.f1(),
        s_random.f1()
    );
}

#[test]
fn extraction_feeds_aggregation_and_scheduling() {
    let (outputs, market) = run_all(7, 5);
    // Pool the peak-based offers (MIRABEL's choice, §6).
    let peak_out = outputs.iter().find(|o| o.approach == "peak").unwrap();
    assert!(!peak_out.flex_offers.is_empty());

    let aggregates =
        aggregate_offers(&peak_out.flex_offers, &AggregationConfig::default()).unwrap();
    assert!(!aggregates.is_empty());
    let member_total: usize = aggregates.iter().map(|a| a.member_count()).sum();
    assert_eq!(member_total, peak_out.flex_offers.len());

    let farm = WindFarmConfig {
        capacity_kw: market.total_energy() / (7.0 * 24.0),
        ..WindFarmConfig::default()
    };
    let production = simulate_wind_production(&farm, horizon(7), Resolution::MIN_15);
    let agg_offers: Vec<FlexOffer> = aggregates.iter().map(|a| a.offer.clone()).collect();
    let result = schedule_offers(
        &agg_offers,
        &peak_out.modified_series,
        &production,
        &ScheduleConfig::default(),
        &mut StdRng::seed_from_u64(5),
    )
    .unwrap();
    // Scheduling never makes the balance worse than the baseline.
    assert!(result.after.squared_imbalance <= result.before.squared_imbalance + 1e-6);

    // Disaggregate each scheduled macro offer and confirm member
    // feasibility plus exact energy conservation.
    for agg in &aggregates {
        let scheduled = result
            .scheduled
            .iter()
            .find(|s| s.offer().id() == agg.offer.id())
            .expect("every aggregate scheduled");
        let members = agg.disaggregate(scheduled).unwrap();
        assert_eq!(members.len(), agg.member_count());
        let member_energy: f64 = members.iter().map(|m| m.total_energy()).sum();
        assert!(
            (member_energy - scheduled.total_energy()).abs() < 1e-6,
            "disaggregation lost energy: {member_energy} vs {}",
            scheduled.total_energy()
        );
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let (a, _) = run_all(4, 11);
    let (b, _) = run_all(4, 11);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.flex_offers, y.flex_offers,
            "{} not deterministic",
            x.approach
        );
        assert_eq!(x.modified_series, y.modified_series);
    }
}

#[test]
fn serde_round_trips_the_whole_offer_population() {
    let (outputs, _) = run_all(4, 13);
    for out in outputs {
        let json = serde_json::to_string(&out.flex_offers).unwrap();
        let back: Vec<FlexOffer> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, out.flex_offers);
        for offer in &back {
            offer.validate().unwrap();
        }
    }
}
