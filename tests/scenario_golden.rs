//! Golden-file regression suite over the committed scenario corpus.
//!
//! Every scenario under `scenarios/` is executed and its deterministic
//! [`ScenarioReport`] JSON is compared byte-for-byte against the
//! snapshot committed under `tests/golden/<name>.json`. Run with
//! `UPDATE_GOLDEN=1` to regenerate the snapshots after an intentional
//! pipeline change; a mismatch prints a readable line diff. Stale or
//! missing snapshots fail the suite too, so the corpus and the golden
//! directory can never drift apart silently.
//!
//! `CONSUMER_THREADS=<n>` selects the intra-scenario worker count
//! (default 2, so the sharded merge path is exercised on every run);
//! reports are byte-identical at any value — CI regenerates the
//! snapshots at 1 and 8 and diffs to prove it.

use flextract::scenario::{load_dir, ScenarioRunner};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Minimal readable line diff: every differing line as `-expected` /
/// `+actual`, capped so a wildly drifted report stays scannable.
fn render_diff(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0;
    for i in 0..e.len().max(a.len()) {
        let (le, la) = (e.get(i).copied(), a.get(i).copied());
        if le == la {
            continue;
        }
        if shown == 12 {
            out.push_str("      … (more differences elided)\n");
            break;
        }
        shown += 1;
        if let Some(l) = le {
            out.push_str(&format!("      - {:>3} | {l}\n", i + 1));
        }
        if let Some(l) = la {
            out.push_str(&format!("      + {:>3} | {l}\n", i + 1));
        }
    }
    out
}

#[test]
fn corpus_reports_match_golden_snapshots() {
    let scenarios = load_dir(&repo_root().join("scenarios")).expect("committed corpus loads");
    assert!(
        scenarios.len() >= 16,
        "corpus shrank to {} scenarios",
        scenarios.len()
    );
    let golden_dir = repo_root().join("tests").join("golden");
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    // A set-but-garbled value must fail, not silently fall back: the
    // CI thread-count stability gate depends on the 1- and 8-thread
    // legs actually running at those counts.
    let consumer_threads = match std::env::var("CONSUMER_THREADS") {
        Err(_) => 2,
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CONSUMER_THREADS must be a positive integer, got `{v}`")),
    };
    let results = ScenarioRunner::with_threads(8)
        .with_consumer_threads(consumer_threads)
        .run_all(&scenarios);

    let mut failures: Vec<String> = Vec::new();
    let mut expected_files: BTreeSet<String> = BTreeSet::new();
    for (scenario, result) in scenarios.iter().zip(results) {
        let outcome = match result {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("{}: run failed: {e}", scenario.name));
                continue;
            }
        };
        let json = serde_json::to_string_pretty(&outcome.report).expect("reports serialise") + "\n";
        let file = format!("{}.json", scenario.name);
        let path = golden_dir.join(&file);
        expected_files.insert(file);
        if update {
            std::fs::create_dir_all(&golden_dir).expect("golden dir is creatable");
            std::fs::write(&path, &json).expect("snapshot is writable");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Err(_) => failures.push(format!(
                "{}: no snapshot at {} — run with UPDATE_GOLDEN=1 to create it",
                scenario.name,
                path.display()
            )),
            Ok(snapshot) if snapshot == json => {}
            Ok(snapshot) => failures.push(format!(
                "{}: report drifted from its snapshot \
                 (UPDATE_GOLDEN=1 regenerates after intentional changes):\n{}",
                scenario.name,
                render_diff(&snapshot, &json)
            )),
        }
    }

    // A snapshot with no matching scenario is drift in the other
    // direction: a scenario was renamed or deleted without its golden.
    // Update mode prunes such files so the regeneration always leaves a
    // committable green tree; check mode reports them as failures. An
    // absent golden dir is already reported per scenario above as a
    // missing snapshot, so it is not an error here.
    if let Ok(entries) = std::fs::read_dir(&golden_dir) {
        for entry in entries {
            let entry = entry.expect("golden dir entry");
            let name = entry.file_name().to_string_lossy().to_string();
            if !name.ends_with(".json") || expected_files.contains(&name) {
                continue;
            }
            if update {
                // Don't prune while runs are failing: a failed scenario
                // never registers its file, and deleting its (possibly
                // still valid) snapshot would compound the breakage.
                if failures.is_empty() {
                    std::fs::remove_file(entry.path()).expect("stale snapshot is removable");
                }
            } else {
                failures.push(format!(
                    "stale snapshot tests/golden/{name}: no scenario produces it"
                ));
            }
        }
    }

    assert!(
        failures.is_empty(),
        "golden-file regressions:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn reports_are_byte_identical_across_repeat_runs() {
    let scenarios = load_dir(&repo_root().join("scenarios")).expect("committed corpus loads");
    let scenario = scenarios
        .iter()
        .find(|s| s.name == "fig5_peak_day")
        .expect("fig5_peak_day is part of the committed corpus");
    let runner = ScenarioRunner::default();
    let a = runner.run(scenario).expect("run a");
    let b = runner.run(scenario).expect("run b");
    assert_eq!(
        serde_json::to_string_pretty(&a.report).unwrap(),
        serde_json::to_string_pretty(&b.report).unwrap(),
        "identical spec + seed must reproduce the identical report"
    );
}
