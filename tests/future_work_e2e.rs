//! End-to-end coverage of the §6 future-work implementations through
//! the facade: real-time generation on live simulated data, production
//! offers feeding the scheduler, and industrial extraction.

use flextract::agg::{schedule_offers, ScheduleConfig};
use flextract::appliance::Catalog;
use flextract::core::{
    ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor, ProductionExtractor,
    RealTimeGenerator,
};
use flextract::series::forecast::{forecast, mape, ForecastMethod};
use flextract::sim::{
    simulate_household, simulate_industrial, simulate_wind_production, HouseholdArchetype,
    HouseholdConfig, IndustrialConfig, WindFarmConfig,
};
use flextract::time::{Duration, Resolution, TimeRange, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn horizon(start: &str, days: i64) -> TimeRange {
    TimeRange::starting_at(start.parse::<Timestamp>().unwrap(), Duration::days(days)).unwrap()
}

#[test]
fn realtime_generator_emits_valid_offers_on_live_simulation() {
    let household = HouseholdConfig::new(41, HouseholdArchetype::FamilyWithChildren);
    let history = simulate_household(&household, horizon("2013-03-04", 14));
    let mut generator = RealTimeGenerator::train(
        Catalog::extended(),
        &history.series,
        ExtractionConfig::default(),
    )
    .unwrap();
    assert!(!generator.schedules().is_empty());

    // Stream two live days; everything emitted must be a valid offer
    // whose earliest start is "now" (causality).
    let live = simulate_household(&household.clone().with_seed(4242), horizon("2013-03-18", 2));
    let mut emitted = Vec::new();
    for (t, v) in live.series.iter() {
        for offer in generator.push(t, v) {
            offer.validate().unwrap();
            assert_eq!(offer.earliest_start(), t.floor_to(Resolution::MIN_15));
            assert!(offer.time_flexibility() > Duration::ZERO);
            emitted.push(offer);
        }
    }
    // A family's two days contain scheduled big appliances; at least
    // one should be caught live.
    assert!(
        !emitted.is_empty(),
        "no real-time offers over two family days"
    );
    // No two emissions of the same profile length overlap in time
    // (cooldown invariant).
    for (i, a) in emitted.iter().enumerate() {
        for b in emitted.iter().skip(i + 1) {
            if a.profile().duration() == b.profile().duration() {
                assert!(
                    b.earliest_start() >= a.earliest_start(),
                    "emissions out of order"
                );
            }
        }
    }
}

#[test]
fn production_offers_balance_against_household_demand() {
    // Forecast tomorrow's wind from a week of observations…
    let farm = WindFarmConfig {
        capacity_kw: 30.0,
        seed: 99,
        ..WindFarmConfig::default()
    };
    let observed = simulate_wind_production(&farm, horizon("2013-03-11", 7), Resolution::MIN_15);
    let fc = forecast(&observed, 96, ForecastMethod::SeasonalNaive).unwrap();
    assert_eq!(fc.start(), "2013-03-18".parse::<Timestamp>().unwrap());

    // …turn its ramps into production offers…
    let out = ProductionExtractor::renewable(ExtractionConfig::default())
        .extract(
            &ExtractionInput::household(&fc),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
    out.check_invariants(&fc).unwrap();
    if out.flex_offers.is_empty() {
        // A becalmed forecast is legitimate; nothing more to check.
        return;
    }
    // …and schedule them against a household fleet's demand (production
    // offers enter the same scheduler as demand offers — the paper's
    // "uniform treatment" point).
    let demand = simulate_household(
        &HouseholdConfig::new(51, HouseholdArchetype::SuburbanWithEv),
        horizon("2013-03-18", 1),
    )
    .series_at(Resolution::MIN_15);
    let result = schedule_offers(
        &out.flex_offers,
        &demand,
        &fc,
        &ScheduleConfig { iterations: 100 },
        &mut StdRng::seed_from_u64(8),
    )
    .unwrap();
    assert_eq!(result.scheduled.len(), out.flex_offers.len());
    for s in &result.scheduled {
        assert!(s.start() >= s.offer().earliest_start());
        assert!(s.start() <= s.offer().latest_start());
    }
}

#[test]
fn forecast_quality_is_measurable_and_sane() {
    let farm = WindFarmConfig::default();
    let observed = simulate_wind_production(&farm, horizon("2013-03-04", 14), Resolution::HOUR_1);
    let history = observed.slice(horizon("2013-03-04", 13));
    let actual_last_day = observed.slice(horizon("2013-03-17", 1));
    let fc = forecast(&history, 24, ForecastMethod::SeasonalNaive).unwrap();
    // Wind is hard; just require the MAPE to be finite and positive.
    if let Some(err) = mape(&fc, &actual_last_day, 1.0) {
        assert!(err.is_finite() && err >= 0.0);
    }
}

#[test]
fn industrial_sites_run_the_household_pipeline_unchanged() {
    let plant = IndustrialConfig::medium_plant(7);
    let sim = simulate_industrial(&plant, horizon("2013-03-18", 7));
    assert!(sim.true_flexible_share() > 0.0);

    let out = PeakExtractor::new(ExtractionConfig::default())
        .extract(
            &ExtractionInput::household(&sim.series),
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
    out.check_invariants(&sim.series).unwrap();
    // A two-shift plant has pronounced daily peaks: extraction
    // succeeds on most days.
    assert!(
        out.flex_offers.len() >= 5,
        "{} offers",
        out.flex_offers.len()
    );
    for offer in &out.flex_offers {
        offer.validate().unwrap();
        // Industrial offers are an order of magnitude bigger than
        // household ones.
        assert!(offer.total_energy().max > 10.0);
    }
}
