//! Thread-count invariance of consumer-level parallelism.
//!
//! The PR-3 contract: a [`ScenarioRunner`] report is **byte-identical**
//! at every `consumer_threads` value, because per-consumer extraction
//! is seeded by consumer index and per-shard results merge in fixed
//! index order. This suite pins that contract on real corpus scenarios
//! spanning the three workload kinds (households, industrial, mixed) —
//! cheap ones, so the matrix stays fast in debug CI runs.

use flextract::scenario::{load_dir, Scenario, ScenarioRunner};
use std::path::PathBuf;

fn corpus() -> Vec<Scenario> {
    load_dir(&PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios"))
        .expect("committed corpus loads")
}

fn report_json(scenario: &Scenario, consumer_threads: usize) -> String {
    let outcome = ScenarioRunner::default()
        .with_consumer_threads(consumer_threads)
        .run(scenario)
        .unwrap_or_else(|e| panic!("{} @ {consumer_threads} threads: {e}", scenario.name));
    serde_json::to_string_pretty(&outcome.report).expect("reports serialise")
}

#[test]
fn reports_are_byte_identical_across_consumer_thread_counts() {
    let corpus = corpus();
    // One multi-consumer scenario per workload kind.
    let picks = [
        "tariff_fleet_peak",
        "industrial_two_shift",
        "mixed_district",
    ];
    for name in picks {
        let scenario = corpus
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} is part of the committed corpus"));
        assert!(
            scenario.workload.consumers() > 1,
            "{name} must exercise the merge path"
        );
        let serial = report_json(scenario, 1);
        for threads in [2, 7] {
            let parallel = report_json(scenario, threads);
            assert_eq!(
                serial, parallel,
                "{name}: report drifted between 1 and {threads} consumer threads"
            );
        }
    }
}

#[test]
fn offer_streams_match_across_thread_counts() {
    // Beyond the report: the raw offer list (ids, order, contents) must
    // not depend on scheduling either.
    let corpus = corpus();
    let scenario = corpus
        .iter()
        .find(|s| s.name == "tariff_fleet_peak")
        .expect("tariff_fleet_peak is part of the committed corpus");
    let serial = ScenarioRunner::default()
        .with_consumer_threads(1)
        .run(scenario)
        .expect("serial run");
    let sharded = ScenarioRunner::default()
        .with_consumer_threads(5)
        .run(scenario)
        .expect("sharded run");
    assert_eq!(serial.offers, sharded.offers);
}
