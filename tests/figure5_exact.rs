//! The paper's one fully-numeric result — the Figure-5 peak-based
//! walk-through — verified end-to-end through the public facade API.

use flextract::core::{ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor};
use flextract::eval::{fig5_day, FIG5_EXPECTED};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn figure_5_numbers_reproduce_exactly() {
    let day = fig5_day();
    assert!((day.total_energy() - FIG5_EXPECTED.day_total_kwh).abs() < 1e-9);

    let out = PeakExtractor::new(ExtractionConfig::default())
        .extract(
            &ExtractionInput::household(&day),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
    out.check_invariants(&day).unwrap();

    let report = &out.diagnostics.peak_reports[0];
    // "the flexible part of the energy of the day shown in the figure is
    //  39.02 * 0.05 = 1.951 kWh"
    assert!((report.min_peak_energy_kwh - 1.951).abs() < 1e-9);
    // Eight annotated peaks with the printed sizes.
    assert_eq!(report.peaks.len(), 8);
    for (peak, expect) in report.peaks.iter().zip(FIG5_EXPECTED.peak_sizes_kwh) {
        assert!(
            (peak.size_kwh - expect).abs() < 1e-9,
            "peak {} size {} vs paper {expect}",
            peak.number,
            peak.size_kwh
        );
    }
    // "the peaks 1, 2, 3, 4, 5, and 8 have to be discarded"
    for p in &report.peaks {
        let should_survive = FIG5_EXPECTED.survivors.contains(&p.number);
        assert_eq!(p.survived_filter, should_survive, "peak {}", p.number);
    }
    // "peak 6 – 29 %, peak 7 – 71 %"
    let survivors: Vec<_> = report.peaks.iter().filter(|p| p.survived_filter).collect();
    for (p, expect_pct) in survivors.iter().zip(FIG5_EXPECTED.probabilities_pct) {
        assert_eq!((p.probability * 100.0).round() as u32, expect_pct);
    }
    // One flex-offer per consumer per day, positioned on the selected peak.
    assert_eq!(out.flex_offers.len(), 1);
    let selected = report.selected.unwrap();
    assert!(FIG5_EXPECTED.survivors.contains(&selected));
    let sel_peak = &report.peaks[selected - 1];
    assert_eq!(out.flex_offers[0].earliest_start(), sel_peak.start);
}

#[test]
fn selection_frequencies_match_the_paper_probabilities() {
    // Across many seeds the 2.22-kWh peak is chosen ~29 % of the time
    // and the 5.47-kWh peak ~71 % — the paper's roulette selection.
    let day = fig5_day();
    let extractor = PeakExtractor::new(ExtractionConfig::default());
    let mut chose_six = 0u32;
    let n = 2000;
    for seed in 0..n {
        let out = extractor
            .extract(
                &ExtractionInput::household(&day),
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap();
        if out.diagnostics.peak_reports[0].selected == Some(6) {
            chose_six += 1;
        }
    }
    let p6 = f64::from(chose_six) / n as f64;
    assert!((p6 - 0.2887).abs() < 0.03, "peak-6 selection rate {p6}");
}
