//! End-to-end smoke test for the `flextract` command-line binary.
//!
//! Drives the compiled executable exactly as a user would: simulate a
//! tiny fleet into a scratch directory, then run peak extraction on one
//! of the emitted series files (both the CSV and the binary `.fxt`
//! codec path), and check the failure modes exit non-zero.

use std::path::PathBuf;
use std::process::{Command, Output};

fn flextract(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flextract"))
        .args(args)
        .output()
        .expect("failed to spawn the flextract binary")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("flextract_cli_smoke_{tag}_{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir is removable");
    }
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

#[test]
fn simulate_then_extract_peak_round_trip() {
    let dir = scratch_dir("roundtrip");
    let out_dir = dir.join("data");
    let out_flag = out_dir.to_str().unwrap();

    // 1. Simulate a tiny fleet.
    let sim = flextract(&[
        "simulate",
        "--households",
        "2",
        "--days",
        "2",
        "--seed",
        "7",
        "--out",
        out_flag,
    ]);
    assert!(
        sim.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&sim.stderr)
    );
    let stdout = String::from_utf8_lossy(&sim.stdout);
    assert!(
        stdout.contains("simulated 2 households"),
        "stdout: {stdout}"
    );
    for name in [
        "household_0.csv",
        "household_0.fxt",
        "household_1.csv",
        "household_1.fxt",
        "fleet_total.csv",
    ] {
        assert!(out_dir.join(name).is_file(), "missing output file {name}");
    }

    // 2. Extract flex-offers from the CSV with the peak approach and
    //    write them as JSON.
    let offers_path = dir.join("offers.json");
    let extract = flextract(&[
        "extract",
        "--approach",
        "peak",
        "--input",
        out_dir.join("household_0.csv").to_str().unwrap(),
        "--share",
        "0.05",
        "--seed",
        "7",
        "--out",
        offers_path.to_str().unwrap(),
    ]);
    assert!(
        extract.status.success(),
        "extract failed: {}",
        String::from_utf8_lossy(&extract.stderr)
    );
    let stdout = String::from_utf8_lossy(&extract.stdout);
    assert!(stdout.contains("flex-offers"), "stdout: {stdout}");
    let json = std::fs::read_to_string(&offers_path).expect("offers JSON was written");
    assert!(
        json.trim_start().starts_with('['),
        "offers JSON is an array"
    );

    // 3. The binary .fxt codec path decodes to the same extraction.
    let extract_fxt = flextract(&[
        "extract",
        "--approach",
        "peak",
        "--input",
        out_dir.join("household_0.fxt").to_str().unwrap(),
        "--share",
        "0.05",
        "--seed",
        "7",
    ]);
    assert!(
        extract_fxt.status.success(),
        "fxt extract failed: {}",
        String::from_utf8_lossy(&extract_fxt.stderr)
    );
    let line_csv = String::from_utf8_lossy(&extract.stdout);
    let line_fxt = String::from_utf8_lossy(&extract_fxt.stdout);
    assert_eq!(
        line_csv.lines().next(),
        line_fxt.lines().next(),
        "CSV and FXT inputs must yield the same extraction summary"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig5_and_experiment_commands_run() {
    let fig5 = flextract(&["fig5"]);
    assert!(fig5.status.success());
    assert!(String::from_utf8_lossy(&fig5.stdout).contains("Figure-5 day"));

    let exp = flextract(&[
        "experiment",
        "e6",
        "--households",
        "2",
        "--days",
        "2",
        "--seed",
        "3",
    ]);
    assert!(
        exp.status.success(),
        "experiment e6 failed: {}",
        String::from_utf8_lossy(&exp.stderr)
    );
    assert!(!exp.stdout.is_empty(), "experiment e6 printed nothing");
}

#[test]
fn bad_invocations_exit_nonzero_with_usage() {
    for args in [
        &[] as &[&str],
        &["frobnicate"],
        &["extract"],
        &["extract", "--input", "/definitely/not/a/file.csv"],
        &["simulate"], // missing --out
        &["simulate", "--households", "0", "--out", "/tmp/unused"],
        &["simulate", "--days", "0", "--out", "/tmp/unused"],
        &["experiment", "e99"],
        &["experiment", "e6", "--households", "0"],
    ] {
        let out = flextract(args);
        assert!(!out.status.success(), "expected failure for args {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error:"),
            "stderr for {args:?} should explain: {stderr}"
        );
    }
}

#[test]
fn scenario_list_and_run_round_trip() {
    // `list` reads the committed corpus (cargo test runs from the
    // package root, where `scenarios/` lives).
    let list = flextract(&["scenario", "list"]);
    assert!(
        list.status.success(),
        "scenario list failed: {}",
        String::from_utf8_lossy(&list.stderr)
    );
    let stdout = String::from_utf8_lossy(&list.stdout);
    assert!(stdout.contains("fig5_peak_day"), "stdout: {stdout}");
    assert!(stdout.contains("stress_10k_households"), "stdout: {stdout}");

    // `run --name` executes one scenario end to end.
    let run = flextract(&["scenario", "run", "--name", "fig5_peak_day", "--json"]);
    assert!(
        run.status.success(),
        "scenario run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    // With --json, stdout is pure JSON (pipeable into jq); the human
    // summary goes to stderr.
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        stdout.trim_start().starts_with('['),
        "--json stdout must be a JSON array: {stdout}"
    );
    assert!(
        stdout.contains("\"offers\""),
        "--json emits the report: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("fig5_peak_day:"), "stderr: {stderr}");

    // Empty corpus directories are an error, not a silent no-op.
    let empty = scratch_dir("scenario_empty");
    let out = flextract(&["scenario", "run", "--all", "--dir", empty.to_str().unwrap()]);
    assert!(
        !out.status.success(),
        "empty corpus must not look like success"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("nothing to run"));
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn scenario_thread_flags_are_validated_at_the_cli_layer() {
    // Zero is rejected with a clear message for BOTH thread flags —
    // consistently at the CLI, not silently clamped inside the runner.
    for flag in ["--threads", "--consumer-threads"] {
        let out = flextract(&["scenario", "run", "--name", "fig5_peak_day", flag, "0"]);
        assert!(!out.status.success(), "{flag} 0 must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("{flag} must be at least 1")),
            "stderr for {flag} 0: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "no backtrace: {stderr}");
    }

    // Values beyond what the corpus/fleet can use still run, but the
    // clamp is announced on stderr. fig5_peak_day has one consumer and
    // is one scenario, so both flags overflow at 9.
    let out = flextract(&[
        "scenario",
        "run",
        "--name",
        "fig5_peak_day",
        "--threads",
        "9",
        "--consumer-threads",
        "9",
    ]);
    assert!(
        out.status.success(),
        "oversized thread counts must clamp, not fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--threads 9 exceeds") && stderr.contains("clamping to 1"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("--consumer-threads 9 exceeds"),
        "stderr: {stderr}"
    );

    // Default thread counts must stay silent even for a one-scenario,
    // one-consumer run (the clamp warning is for explicit flags only).
    let out = flextract(&["scenario", "run", "--name", "fig5_peak_day"]);
    assert!(out.status.success());
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("warning"),
        "defaults must not warn"
    );

    // A real multi-consumer parallel run succeeds and reports the same
    // summary as the serial one (thread-count invariance end to end).
    let serial = flextract(&["scenario", "run", "--name", "mixed_district"]);
    let parallel = flextract(&[
        "scenario",
        "run",
        "--name",
        "mixed_district",
        "--consumer-threads",
        "4",
    ]);
    assert!(serial.status.success() && parallel.status.success());
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout).split(" [").next(),
        String::from_utf8_lossy(&parallel.stdout).split(" [").next(),
        "summaries must match modulo wall time"
    );
}

#[test]
fn scenario_invalid_specs_fail_with_a_message_not_a_backtrace() {
    let dir = scratch_dir("scenario_bad");

    // A syntactically broken spec file.
    std::fs::write(dir.join("broken.json"), "{ this is not json").unwrap();
    let out = flextract(&["scenario", "run", "--all", "--dir", dir.to_str().unwrap()]);
    assert!(!out.status.success(), "broken spec must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
    assert!(stderr.contains("broken.json"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "no backtrace: {stderr}");

    // A broken *unrelated* file must not block running a valid one by
    // name: `--name` loads only its own spec file.
    std::fs::copy(
        "scenarios/fig5_peak_day.json",
        dir.join("fig5_peak_day.json"),
    )
    .unwrap();
    let out = flextract(&[
        "scenario",
        "run",
        "--name",
        "fig5_peak_day",
        "--dir",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "valid --name run blocked by unrelated broken spec: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(dir.join("fig5_peak_day.json")).unwrap();

    // A well-formed spec with an out-of-domain field.
    std::fs::remove_file(dir.join("broken.json")).unwrap();
    std::fs::write(
        dir.join("bad_days.json"),
        r#"{
  "name": "bad_days",
  "description": "days out of domain",
  "workload": {
    "Households": {
      "households": 1,
      "archetype_mix": [["Couple", 1.0]],
      "tariff_sensitivity": 0.0
    }
  },
  "start": "2013-03-18",
  "days": 0,
  "resolution_min": 15,
  "extractor": "Basic",
  "flexible_share": 0.05,
  "aggregation": "None",
  "res_capacity_share": 0.0,
  "seed": 1
}"#,
    )
    .unwrap();
    let out = flextract(&["scenario", "run", "--all", "--dir", dir.to_str().unwrap()]);
    assert!(!out.status.success(), "invalid spec must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
    assert!(stderr.contains("days"), "names the field: {stderr}");
    assert!(!stderr.contains("panicked"), "no backtrace: {stderr}");

    // Selection errors: unknown name, missing selector.
    let out = flextract(&["scenario", "run", "--name", "no_such_scenario"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no_such_scenario"));
    let out = flextract(&["scenario", "run"]);
    assert!(!out.status.success());
    let out = flextract(&["scenario", "frobnicate"]);
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_export_inspect_ingest_round_trip() {
    let dir = scratch_dir("dataset");
    let ds_dir = dir.join("metered");
    let ds_flag = ds_dir.to_str().unwrap();

    // 1. Export the committed source fleet with a degradation that
    //    guarantees gaps, in binary form.
    let export = flextract(&[
        "dataset",
        "export",
        "--scenario",
        "datasets/sources/src_gap_heavy.json",
        "--out",
        ds_flag,
        "--codec",
        "binary",
        "--resolution-min",
        "15",
        "--gap-rate",
        "0.1",
        "--seed",
        "11",
    ]);
    assert!(
        export.status.success(),
        "dataset export failed: {}",
        String::from_utf8_lossy(&export.stderr)
    );
    let stdout = String::from_utf8_lossy(&export.stdout);
    assert!(stdout.contains("exported `src_gap_heavy`"), "{stdout}");
    assert!(ds_dir.join("manifest.json").is_file());
    assert!(ds_dir.join("consumer_0.fxm").is_file());

    // 2. Inspect summarises the manifest.
    let inspect = flextract(&["dataset", "inspect", "--dataset", ds_flag]);
    assert!(
        inspect.status.success(),
        "dataset inspect failed: {}",
        String::from_utf8_lossy(&inspect.stderr)
    );
    let stdout = String::from_utf8_lossy(&inspect.stdout);
    assert!(stdout.contains("2 consumers"), "{stdout}");
    assert!(stdout.contains("carries ground truth"), "{stdout}");

    // 3. Ingest cleans every consumer and reports the repairs.
    let ingest = flextract(&[
        "dataset",
        "ingest",
        "--dataset",
        ds_flag,
        "--fill",
        "previous",
        "--screen-anomalies",
    ]);
    assert!(
        ingest.status.success(),
        "dataset ingest failed: {}",
        String::from_utf8_lossy(&ingest.stderr)
    );
    let stdout = String::from_utf8_lossy(&ingest.stdout);
    assert!(stdout.contains("gap(s) filled"), "{stdout}");

    // 4. A single consumer can be ingested by index.
    let one = flextract(&["dataset", "ingest", "--dataset", ds_flag, "--consumer", "1"]);
    assert!(one.status.success());
    assert_eq!(String::from_utf8_lossy(&one.stdout).lines().count(), 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_malformed_csv_and_unaligned_timestamps_exit_nonzero() {
    let dir = scratch_dir("dataset_bad");
    let ds_dir = dir.join("metered");
    let ds_flag = ds_dir.to_str().unwrap();
    // Export as CSV explicitly (the default codec is FXM2 binary) so
    // the test can corrupt a text row below.
    let export = flextract(&[
        "dataset",
        "export",
        "--scenario",
        "datasets/sources/src_household_1min.json",
        "--out",
        ds_flag,
        "--resolution-min",
        "15",
        "--codec",
        "csv",
    ]);
    assert!(export.status.success());

    let consumer = ds_dir.join("consumer_0.csv");
    let pristine = std::fs::read_to_string(&consumer).unwrap();

    // A non-numeric kwh value must exit non-zero naming file, row and
    // column.
    let mut lines: Vec<String> = pristine.lines().map(String::from).collect();
    lines[17] = lines[17].split(',').next().unwrap().to_string() + ",abc";
    std::fs::write(&consumer, lines.join("\n") + "\n").unwrap();
    let bad = flextract(&["dataset", "ingest", "--dataset", ds_flag]);
    assert!(!bad.status.success(), "malformed CSV must fail");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("consumer_0.csv"), "{stderr}");
    assert!(stderr.contains("row 18"), "{stderr}");
    assert!(stderr.contains("`kwh`"), "{stderr}");

    // An off-grid (unaligned) timestamp must exit non-zero too.
    let mut lines: Vec<String> = pristine.lines().map(String::from).collect();
    let kwh = lines[17].split(',').nth(1).unwrap().to_string();
    lines[17] = format!("2013-03-18 04:07,{kwh}");
    std::fs::write(&consumer, lines.join("\n") + "\n").unwrap();
    let bad = flextract(&["dataset", "ingest", "--dataset", ds_flag]);
    assert!(!bad.status.success(), "unaligned timestamp must fail");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("off-grid"), "{stderr}");
    assert!(stderr.contains("row 18"), "{stderr}");

    // Scenario-level: a dataset-backed scenario pointing at the broken
    // dataset fails with the same context, not a panic.
    let spec = format!(
        r#"{{
  "name": "broken_ds",
  "description": "points at a corrupted dataset",
  "workload": {{
    "Dataset": {{
      "path": "{}",
      "consumers": 3,
      "cleaning": {{ "fill": "Linear", "screen_anomalies": false }},
      "disaggregate": false
    }}
  }},
  "start": "2013-03-18",
  "days": 1,
  "resolution_min": 15,
  "extractor": "Peak",
  "flexible_share": 0.05,
  "aggregation": "None",
  "res_capacity_share": 0.0,
  "seed": 1
}}"#,
        ds_flag.replace('\\', "/")
    );
    std::fs::write(dir.join("broken_ds.json"), spec).unwrap();
    let run = flextract(&[
        "scenario",
        "run",
        "--dir",
        dir.to_str().unwrap(),
        "--name",
        "broken_ds",
    ]);
    assert!(!run.status.success(), "broken dataset must fail the run");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("consumer_0.csv"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_bad_invocations_exit_nonzero() {
    for args in [
        &["dataset"] as &[&str],
        &["dataset", "frobnicate"],
        &["dataset", "export"],
        &[
            "dataset",
            "export",
            "--scenario",
            "/no/such/spec.json",
            "--out",
            "/tmp/unused",
        ],
        &[
            "dataset",
            "export",
            "--scenario",
            "datasets/sources/src_gap_heavy.json",
            "--out",
            "/tmp/unused_codec",
            "--codec",
            "bogus",
        ],
        &["dataset", "inspect"],
        &[
            "dataset",
            "inspect",
            "--dataset",
            "/definitely/not/a/dataset",
        ],
        &[
            "dataset",
            "ingest",
            "--dataset",
            "/definitely/not/a/dataset",
        ],
        &[
            "dataset",
            "ingest",
            "--dataset",
            "datasets/ds_gap_heavy",
            "--fill",
            "bogus",
        ],
        &[
            "dataset",
            "ingest",
            "--dataset",
            "datasets/ds_gap_heavy",
            "--consumer",
            "99",
        ],
    ] {
        let out = flextract(args);
        assert!(!out.status.success(), "expected failure for args {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error:"),
            "stderr for {args:?} should explain: {stderr}"
        );
    }
}

#[test]
fn query_dataset_and_offers_round_trip() {
    let dir = scratch_dir("query");
    let ds_dir = dir.join("metered");
    let ds_flag = ds_dir.to_str().unwrap();

    // An FXM2 dataset (the default codec) with guaranteed gaps.
    let export = flextract(&[
        "dataset",
        "export",
        "--scenario",
        "datasets/sources/src_gap_heavy.json",
        "--out",
        ds_flag,
        "--resolution-min",
        "15",
        "--gap-rate",
        "0.1",
        "--seed",
        "11",
    ]);
    assert!(
        export.status.success(),
        "dataset export failed: {}",
        String::from_utf8_lossy(&export.stderr)
    );

    // A whole-dataset stats query answers from chunk statistics.
    let q = flextract(&["query", "--dataset", ds_flag]);
    assert!(
        q.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&q.stderr)
    );
    let stdout = String::from_utf8_lossy(&q.stdout);
    assert!(stdout.contains("consumer"), "{stdout}");
    assert!(
        stdout.contains("100 % skipped"),
        "FXM2 full-scan stats must skip every decode: {stdout}"
    );

    // A time-sliced gap query with JSON output.
    let q = flextract(&[
        "query",
        "--dataset",
        ds_flag,
        "--from",
        "2013-03-18 06:00",
        "--to",
        "2013-03-18 18:00",
        "--where",
        "gaps",
        "--json",
    ]);
    assert!(
        q.status.success(),
        "sliced query failed: {}",
        String::from_utf8_lossy(&q.stderr)
    );
    let stdout = String::from_utf8_lossy(&q.stdout);
    assert!(
        stdout.trim_start().starts_with('['),
        "--json emits an array: {stdout}"
    );
    assert!(stdout.contains("\"chunks_decoded\""), "{stdout}");

    // Peak queries locate the argmax with a timestamp.
    let q = flextract(&["query", "--dataset", ds_flag, "--agg", "peak"]);
    assert!(q.status.success());
    assert!(
        String::from_utf8_lossy(&q.stdout).contains("peak"),
        "peak row expected"
    );

    // Each aggregate selects its own column set in table mode.
    let q = flextract(&["query", "--dataset", ds_flag, "--agg", "gaps"]);
    assert!(q.status.success());
    let stdout = String::from_utf8_lossy(&q.stdout);
    assert!(stdout.contains("gap %"), "{stdout}");
    assert!(
        !stdout.contains("mean"),
        "gaps view hides the stats columns: {stdout}"
    );
    let q = flextract(&["query", "--dataset", ds_flag, "--agg", "sum"]);
    assert!(q.status.success());
    let stdout = String::from_utf8_lossy(&q.stdout);
    assert!(
        stdout.contains("sum kWh") && !stdout.contains("gap %"),
        "{stdout}"
    );

    // Offer-set queries: extract offers to JSON, then query them.
    let sim_dir = dir.join("sim");
    let sim = flextract(&[
        "simulate",
        "--households",
        "1",
        "--days",
        "2",
        "--seed",
        "7",
        "--out",
        sim_dir.to_str().unwrap(),
    ]);
    assert!(sim.status.success());
    let offers_path = dir.join("offers.json");
    let extract = flextract(&[
        "extract",
        "--input",
        sim_dir.join("household_0.csv").to_str().unwrap(),
        "--out",
        offers_path.to_str().unwrap(),
    ]);
    assert!(extract.status.success());
    let q = flextract(&[
        "query",
        "--offers",
        offers_path.to_str().unwrap(),
        "--from",
        "2013-03-18",
        "--to",
        "2013-03-19",
    ]);
    assert!(
        q.status.success(),
        "offers query failed: {}",
        String::from_utf8_lossy(&q.stderr)
    );
    let stdout = String::from_utf8_lossy(&q.stdout);
    assert!(stdout.contains("overlap the query window"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_queries_exit_nonzero_naming_the_bad_field() {
    // Each case must fail AND name the offending flag, so the user
    // can fix the query instead of guessing.
    for (args, field) in [
        (&["query"] as &[&str], "--dataset"),
        (
            &[
                "query",
                "--dataset",
                "datasets/ds_household_1min",
                "--agg",
                "bogus",
            ],
            "--agg",
        ),
        (
            &[
                "query",
                "--dataset",
                "datasets/ds_household_1min",
                "--where",
                "frobnicate",
            ],
            "--where",
        ),
        (
            &[
                "query",
                "--dataset",
                "datasets/ds_household_1min",
                "--where",
                "min-below:xyz",
            ],
            "--where",
        ),
        (
            &[
                "query",
                "--dataset",
                "datasets/ds_household_1min",
                "--from",
                "not-a-time",
            ],
            "--from",
        ),
        (
            &[
                "query",
                "--dataset",
                "datasets/ds_household_1min",
                "--from",
                "2013-03-19",
                "--to",
                "2013-03-18",
            ],
            "--to",
        ),
        (
            // Out-of-range indices surface the store's typed error,
            // which names the valid range and the dataset directory.
            &[
                "query",
                "--dataset",
                "datasets/ds_household_1min",
                "--consumer",
                "99",
            ],
            "valid range 0..",
        ),
        (
            &[
                "query",
                "--dataset",
                "datasets/ds_household_1min",
                "--resolution-min",
                "7",
            ],
            "--resolution-min",
        ),
        (
            &[
                "query",
                "--dataset",
                "datasets/ds_household_1min",
                "--where",
                "gaps",
                "--resolution-min",
                "15",
            ],
            "--where",
        ),
        (
            &["query", "--offers", "/no/such/offers.json"],
            "/no/such/offers.json",
        ),
        (
            &[
                "query",
                "--offers",
                "x.json",
                "--dataset",
                "datasets/ds_household_1min",
            ],
            "not both",
        ),
    ] {
        let out = flextract(args);
        assert!(!out.status.success(), "expected failure for args {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error:") && stderr.contains(field),
            "stderr for {args:?} should name {field}: {stderr}"
        );
    }
}

#[test]
fn dataset_backed_scenario_runs_from_the_cli() {
    let run = flextract(&["scenario", "run", "--name", "ds_degraded_15min", "--json"]);
    assert!(
        run.status.success(),
        "dataset-backed scenario failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("\"ingestion\""), "{stdout}");
    assert!(stdout.contains("\"fidelity\""), "{stdout}");
    assert!(stdout.contains("\"gaps_filled\": 7"), "{stdout}");
}

#[test]
fn sharded_dataset_lifecycle_round_trip() {
    let dir = scratch_dir("sharded");
    let ds_dir = dir.join("fleet");
    let ds_flag = ds_dir.to_str().unwrap();

    // A 5-consumer source spec so capacity 2 yields 3 shards.
    let spec_path = dir.join("src_five.json");
    std::fs::write(
        &spec_path,
        r#"{
  "name": "src_five",
  "description": "five households for the sharded lifecycle test",
  "workload": {
    "Households": {
      "households": 5,
      "archetype_mix": [["Couple", 1.0]],
      "tariff_sensitivity": 0.0
    }
  },
  "start": "2013-03-18",
  "days": 1,
  "resolution_min": 15,
  "extractor": "Basic",
  "flexible_share": 0.05,
  "aggregation": "None",
  "res_capacity_share": 0.0,
  "seed": 5
}"#,
    )
    .unwrap();

    // 1. A sharded export writes root.json + shards/NNNN/ directories.
    let export = flextract(&[
        "dataset",
        "export",
        "--scenario",
        spec_path.to_str().unwrap(),
        "--out",
        ds_flag,
        "--resolution-min",
        "15",
        "--gap-rate",
        "0.05",
        "--seed",
        "11",
        "--shard-capacity",
        "2",
    ]);
    assert!(
        export.status.success(),
        "sharded export failed: {}",
        String::from_utf8_lossy(&export.stderr)
    );
    let stdout = String::from_utf8_lossy(&export.stdout);
    assert!(stdout.contains("sharded at 2 consumers/shard"), "{stdout}");
    assert!(ds_dir.join("root.json").is_file());
    assert!(ds_dir.join("shards/0000/manifest.json").is_file());
    assert!(!ds_dir.join("manifest.json").is_file());

    // A zero capacity is rejected at the CLI layer.
    let bad = flextract(&[
        "dataset",
        "export",
        "--scenario",
        spec_path.to_str().unwrap(),
        "--out",
        ds_flag,
        "--shard-capacity",
        "0",
    ]);
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("--shard-capacity must be at least 1"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );

    // 2. Inspect answers from the root roll-ups without opening shards.
    let inspect = flextract(&["dataset", "inspect", "--dataset", ds_flag]);
    assert!(
        inspect.status.success(),
        "{}",
        String::from_utf8_lossy(&inspect.stderr)
    );
    let stdout = String::from_utf8_lossy(&inspect.stdout);
    assert!(stdout.contains("5 consumers"), "{stdout}");
    assert!(stdout.contains("3 shard(s)"), "{stdout}");
    assert!(stdout.contains("no shard was opened"), "{stdout}");

    // `--consumer N` routes through the owning shard on any layout.
    let one = flextract(&[
        "dataset",
        "inspect",
        "--dataset",
        ds_flag,
        "--consumer",
        "3",
    ]);
    assert!(
        one.status.success(),
        "{}",
        String::from_utf8_lossy(&one.stderr)
    );
    assert!(String::from_utf8_lossy(&one.stdout).contains("[3]"));

    // 3. Out-of-range indices exit non-zero naming the valid range AND
    //    the dataset directory — on inspect and on query alike.
    for args in [
        &[
            "dataset",
            "inspect",
            "--dataset",
            ds_flag,
            "--consumer",
            "99",
        ] as &[&str],
        &["query", "--dataset", ds_flag, "--consumer", "99"],
    ] {
        let out = flextract(args);
        assert!(!out.status.success(), "expected failure for {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("valid range 0..5"), "{args:?}: {stderr}");
        assert!(stderr.contains(ds_flag), "{args:?}: {stderr}");
    }

    // 4. A fleet query without predicates answers from shard stats
    //    alone, and the report is byte-identical at any thread count.
    let fleet = flextract(&["query", "--dataset", ds_flag]);
    assert!(
        fleet.status.success(),
        "{}",
        String::from_utf8_lossy(&fleet.stderr)
    );
    let stdout = String::from_utf8_lossy(&fleet.stdout).to_string();
    assert!(stdout.contains("fleet query"), "{stdout}");
    assert!(stdout.contains("opened 0/3 shard(s)"), "{stdout}");
    assert!(stdout.contains("3 stats-only"), "{stdout}");
    for threads in ["1", "2", "8"] {
        let again = flextract(&["query", "--dataset", ds_flag, "--threads", threads]);
        assert!(again.status.success());
        assert_eq!(
            stdout,
            String::from_utf8_lossy(&again.stdout),
            "fleet query must be byte-identical at --threads {threads}"
        );
    }

    // An unsatisfiable predicate prunes every shard from the roll-ups.
    let pruned = flextract(&["query", "--dataset", ds_flag, "--where", "max-above:999999"]);
    assert!(pruned.status.success());
    let stdout = String::from_utf8_lossy(&pruned.stdout);
    assert!(stdout.contains("3 pruned"), "{stdout}");

    // Fleet mode keeps no per-interval values: peak needs --consumer.
    let peak = flextract(&["query", "--dataset", ds_flag, "--agg", "peak"]);
    assert!(!peak.status.success());
    assert!(
        String::from_utf8_lossy(&peak.stderr).contains("--consumer"),
        "{}",
        String::from_utf8_lossy(&peak.stderr)
    );

    // A single-consumer query routes to the owning shard.
    let single = flextract(&["query", "--dataset", ds_flag, "--consumer", "4", "--json"]);
    assert!(
        single.status.success(),
        "{}",
        String::from_utf8_lossy(&single.stderr)
    );

    // 5. Compaction of a freshly-exported store is a no-op in shape and
    //    leaves every query answer byte-identical.
    let before = flextract(&["query", "--dataset", ds_flag, "--json"]);
    let compacted = flextract(&["dataset", "compact", "--dataset", ds_flag]);
    assert!(
        compacted.status.success(),
        "{}",
        String::from_utf8_lossy(&compacted.stderr)
    );
    let stdout = String::from_utf8_lossy(&compacted.stdout);
    assert!(stdout.contains("compacted"), "{stdout}");
    assert!(stdout.contains("3 shard(s) → 3 shard(s)"), "{stdout}");
    let after = flextract(&["query", "--dataset", ds_flag, "--json"]);
    assert_eq!(
        String::from_utf8_lossy(&before.stdout),
        String::from_utf8_lossy(&after.stdout),
        "compaction must not change any query answer"
    );

    // Compacting a legacy single-manifest dataset is a typed error.
    let legacy = flextract(&["dataset", "compact", "--dataset", "datasets/ds_gap_heavy"]);
    assert!(!legacy.status.success());
    assert!(
        String::from_utf8_lossy(&legacy.stderr).contains("nothing to compact"),
        "{}",
        String::from_utf8_lossy(&legacy.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fxm3_export_inspect_and_corruption_round_trip() {
    let dir = scratch_dir("fxm3");
    let ds_dir = dir.join("metered");
    let ds_flag = ds_dir.to_str().unwrap();

    // 1. An explicit `--codec fxm3` export (also the default) with a
    //    quantized register feed — the workload the XOR codec is for.
    let export = flextract(&[
        "dataset",
        "export",
        "--scenario",
        "datasets/sources/src_gap_heavy.json",
        "--out",
        ds_flag,
        "--codec",
        "fxm3",
        "--resolution-min",
        "15",
        "--gap-rate",
        "0.1",
        "--quantize-kwh",
        "0.001",
        "--seed",
        "11",
    ]);
    assert!(
        export.status.success(),
        "fxm3 export failed: {}",
        String::from_utf8_lossy(&export.stderr)
    );
    assert!(ds_dir.join("consumer_0.fxm").is_file());

    // 2. Inspect reports per-consumer stats from the chunk headers
    //    alone — no payload decode — plus the on-disk footprint and the
    //    sniffed codec of each series file.
    let inspect = flextract(&["dataset", "inspect", "--dataset", ds_flag]);
    assert!(
        inspect.status.success(),
        "inspect failed: {}",
        String::from_utf8_lossy(&inspect.stderr)
    );
    let stdout = String::from_utf8_lossy(&inspect.stdout);
    assert!(stdout.contains("B on disk, fxm3]"), "{stdout}");

    // 3. A full-scan stats query answers without decoding a single
    //    payload byte: every chunk is answered from its stat header.
    let q = flextract(&["query", "--dataset", ds_flag]);
    assert!(
        q.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&q.stderr)
    );
    let stdout = String::from_utf8_lossy(&q.stdout);
    assert!(stdout.contains("100 % skipped"), "{stdout}");
    assert!(
        stdout.contains("decoded 0 B of payload"),
        "stats-only scans must not touch compressed payloads: {stdout}"
    );

    // 4. Corrupt one bit of the first chunk's gap bitmap (absolute
    //    offset 60: 28-byte file header + 32-byte chunk stat header).
    //    The bitmap popcount no longer matches the recorded gap count,
    //    so any payload decode must exit non-zero naming the file and
    //    the chunk's byte offset — never a panic, never silent data.
    let victim = ds_dir.join("consumer_0.fxm");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[60] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();
    let bad = flextract(&["dataset", "ingest", "--dataset", ds_flag]);
    assert!(!bad.status.success(), "corrupt chunk must fail the decode");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("consumer_0.fxm"), "{stderr}");
    assert!(stderr.contains("chunk at byte offset"), "{stderr}");
    assert!(!stderr.contains("panicked"), "no backtrace: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_prints_usage() {
    let out = flextract(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn analyze_passes_on_the_committed_tree() {
    let out = flextract(&["analyze"]);
    assert!(
        out.status.success(),
        "the committed tree must be lint-clean: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 finding(s)"), "{stdout}");

    let json = flextract(&["analyze", "--json"]);
    assert!(json.status.success());
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.contains("\"total\": 0"), "{stdout}");
    assert!(stdout.contains("\"files_scanned\""), "{stdout}");

    // --sarif writes a well-formed 2.1.0 log alongside the exit status.
    let dir = scratch_dir("analyze_sarif");
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    let sarif_path = dir.join("findings.sarif");
    let sarif = flextract(&["analyze", "--sarif", sarif_path.to_str().unwrap()]);
    assert!(sarif.status.success());
    let log = std::fs::read_to_string(&sarif_path).expect("SARIF file must be written");
    assert!(log.contains("\"version\": \"2.1.0\""), "{log}");
    assert!(log.contains("flextract-analyze"), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_fails_with_exit_1_and_witness_on_a_seeded_violation() {
    let dir = scratch_dir("analyze");
    let src = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("fixture tree is creatable");
    // A panic sink on a public entry-type method: the reachability pass
    // must flag it with a witness path even though no lexical lint
    // covers `.unwrap()` any more.
    std::fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         pub struct Frame;\n\
         impl Frame {\n\
         \x20   pub fn head(&self, xs: &[f64]) -> f64 {\n\
         \x20       xs.first().copied().unwrap()\n\
         \x20   }\n\
         }\n",
    )
    .expect("fixture file is writable");

    let out = flextract(&["analyze", "--root", dir.to_str().unwrap(), "--no-cache"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "findings exit with status 1: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/demo/src/lib.rs:5:28"),
        "finding must name file:line:col: {stdout}"
    );
    assert!(stdout.contains("[panic-reachability]"), "{stdout}");
    assert!(
        stdout.contains("via: flextract_demo::Frame::head"),
        "finding must carry the witness path: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error:") && stderr.contains("1 unsuppressed finding"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_internal_errors_exit_2_naming_the_path() {
    let dir = scratch_dir("analyze_internal");
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    // A malformed allowlist is an internal error, not a finding: the
    // gate must exit 2 (so CI can tell "tree is dirty" from "the
    // analyzer itself broke") and the message must name the file.
    let config = dir.join("broken.toml");
    std::fs::write(&config, "lint = \"x\"\n").expect("config is writable");
    let out = flextract(&["analyze", "--config", config.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "internal errors exit with status 2: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("broken.toml"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
