//! Regeneration gate for the committed corpus datasets.
//!
//! Every dataset under `datasets/` (except `sources/`, which holds the
//! export-source scenario specs) must be exactly reproducible from its
//! own provenance record: the manifest names the source scenario, the
//! degradation, the seed and the codec, so `export_dataset` can re-run
//! the export and every file must come back byte-identical. Run with
//! `UPDATE_GOLDEN=1` to regenerate the committed datasets in place
//! after an intentional simulator or exporter change (then regenerate
//! the scenario goldens too — dataset bytes feed the reports).

use flextract::dataset::{Dataset, MANIFEST_FILE, ROOT_FILE};
use flextract::scenario::{export_dataset, load_file, ExportOptions};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// All regular files under `dir` (recursively, so sharded layouts are
/// compared shard by shard), keyed by path relative to `dir`.
fn dir_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, files: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("dataset dir is readable") {
            let entry = entry.expect("dataset dir entry");
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, files);
            } else if path.is_file() {
                let rel = path
                    .strip_prefix(root)
                    .expect("walked path sits under the dataset dir")
                    .to_string_lossy()
                    .replace('\\', "/");
                files.insert(rel, std::fs::read(&path).expect("dataset file is readable"));
            }
        }
    }
    let mut files = BTreeMap::new();
    walk(dir, dir, &mut files);
    files
}

#[test]
fn committed_datasets_regenerate_byte_identically() {
    let root = repo_root();
    let datasets_dir = root.join("datasets");
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");

    let mut dataset_dirs: Vec<PathBuf> = std::fs::read_dir(&datasets_dir)
        .expect("datasets/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "sources"))
        .collect();
    dataset_dirs.sort();
    assert!(
        dataset_dirs.len() >= 3,
        "committed dataset corpus shrank to {} datasets",
        dataset_dirs.len()
    );

    let mut failures = Vec::new();
    for dir in dataset_dirs {
        let name = dir.file_name().unwrap().to_string_lossy().to_string();
        let ds = Dataset::open(&dir).expect("committed dataset opens");
        let source = ds
            .source_scenario()
            .unwrap_or_else(|| panic!("{name}: committed datasets must record their source"))
            .to_string();
        let spec_path = datasets_dir.join("sources").join(format!("{source}.json"));
        let scenario = load_file(&spec_path)
            .unwrap_or_else(|e| panic!("{name}: source spec {} : {e}", spec_path.display()));
        let options = ExportOptions {
            degradation: ds
                .degradation()
                .cloned()
                .expect("exported manifests record the degradation"),
            codec: ds.codec(),
            seed: ds.seed(),
            include_truth: ds
                .consumer_entry(0)
                .expect("committed datasets are non-empty")
                .truth_total
                .is_some(),
            shard_capacity: ds.root().map(|r| r.shard_capacity),
        };
        if update {
            // Remove before re-exporting: a sharded re-export over a
            // live store deliberately allocates fresh shard ids (crash
            // safety), which would differ from a fresh export's names.
            std::fs::remove_dir_all(&dir).expect("committed dataset dir is removable");
            export_dataset(&scenario, &dir, &options).expect("regeneration succeeds");
            continue;
        }
        let fresh_dir = std::env::temp_dir().join(format!(
            "flextract_dataset_golden_{name}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&fresh_dir);
        export_dataset(&scenario, &fresh_dir, &options).expect("regeneration succeeds");
        let committed = dir_files(&dir);
        let fresh = dir_files(&fresh_dir);
        let committed_names: Vec<&String> = committed.keys().collect();
        let fresh_names: Vec<&String> = fresh.keys().collect();
        if committed_names != fresh_names {
            failures.push(format!(
                "{name}: file sets differ (committed {committed_names:?} vs fresh {fresh_names:?})"
            ));
        } else {
            for (file, bytes) in &committed {
                if fresh[file] != *bytes {
                    failures.push(format!(
                        "{name}/{file}: drifted from its provenance \
                         (UPDATE_GOLDEN=1 regenerates after intentional changes)"
                    ));
                }
            }
        }
        std::fs::remove_dir_all(&fresh_dir).ok();
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn committed_manifests_are_internally_consistent() {
    let root = repo_root();
    for entry in std::fs::read_dir(root.join("datasets")).expect("datasets/ exists") {
        let path = entry.expect("entry").path();
        if !path.is_dir() || path.file_name().is_some_and(|n| n == "sources") {
            continue;
        }
        let ds = Dataset::open(&path).expect("committed dataset opens");
        assert!(path.join(MANIFEST_FILE).is_file() || path.join(ROOT_FILE).is_file());
        // Every consumer loads cleanly and sits on the declared grid.
        for idx in 0..ds.len() {
            let record = ds
                .consumer(idx)
                .unwrap_or_else(|e| panic!("{}: consumer {idx}: {e}", path.display()));
            assert_eq!(
                record.measured.len(),
                ds.intervals(),
                "{}: consumer {idx} off-grid",
                path.display()
            );
        }
    }
}
